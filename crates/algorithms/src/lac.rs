//! Linear Approximate Compaction (Section 6.2): given `n` cells of which at
//! most `h` hold an item, insert the items into an array of size `O(h)`.
//!
//! Two algorithms:
//!
//! * [`lac_dart`] — the randomized dart-throwing scheme, an adaptation of
//!   the QRQW compaction algorithm of Gibbons–Matias–Ramachandran that the
//!   paper's Section 8 upper bound refers to. Live items throw a dart into a
//!   geometrically shrinking fresh segment, claim the cell if their write
//!   wins (detected by read-back), and retry otherwise. The destination
//!   array is the concatenation of the segments, total size `≤ 8h + O(log h)
//!   = O(h)`. Expected round count is `O(log log n)`-ish in the high-load
//!   regime with a `O(log n)` worst-case tail; each round costs
//!   `O(g + κ)` with `κ` the realized dart collision count. (The full GMR
//!   algorithm sharpens the tail to `O(√log n)` deterministic time; we
//!   implement the simple variant and report measured costs against the
//!   paper's `O(√(g log n) + g log log n)` claim in EXPERIMENTS.md.)
//! * [`lac_prefix`] — deterministic exact compaction by prefix sums,
//!   computing in rounds: `Θ(log n / log(n/p))` rounds. This is the
//!   "simple algorithm based on computing prefix sums" the paper names as
//!   the best known rounds-respecting compaction (Section 8), and the
//!   rounds lower bound of Corollary 6.3 says no rounds-respecting
//!   algorithm can do much better.
//!
//! Items are encoded as *origins*: output cell value `i + 1` means the item
//! originally in input cell `i`. Empty cells are 0 everywhere.

use parbounds_models::{
    Addr, FaultPlan, ModelError, PhaseEnv, Program, QsmMachine, Result, RunResult, Status, Word,
};

use crate::util::{Layout, ReduceOp, TreeShape};

/// Outcome of a compaction: where the items landed, plus the execution.
#[derive(Debug)]
pub struct LacOutcome {
    /// Base address of the destination array.
    pub out_base: Addr,
    /// Size of the destination array.
    pub out_size: usize,
    /// The execution record.
    pub run: RunResult,
}

impl LacOutcome {
    /// The destination array contents (0 = empty, `i+1` = item from input
    /// cell `i`).
    pub fn dest(&self) -> Vec<Word> {
        self.run.memory.slice(self.out_base, self.out_size)
    }

    /// Checks that every item of `input` (non-zero cells) appears exactly
    /// once in the destination and nothing else does.
    pub fn verify(&self, input: &[Word]) -> bool {
        let mut seen = vec![false; input.len()];
        for v in self.dest() {
            if v == 0 {
                continue;
            }
            let origin = (v - 1) as usize;
            if origin >= input.len() || input[origin] == 0 || seen[origin] {
                return false;
            }
            seen[origin] = true;
        }
        input.iter().enumerate().all(|(i, &v)| (v == 0) != seen[i])
    }
}

/// Dart-throwing segment schedule: geometric sizes `4h, 2h, h, …, 8`
/// followed by `h + 1` fresh 8-cell tail segments. Segments are *never*
/// reused, so a claimed cell can never be overwritten by a later dart; and
/// since in every round at least one live item retires (some write wins the
/// arbitration and its writer claims the cell), `h` tail segments suffice
/// for guaranteed termination. Total destination size `≤ 16h + O(1) = O(h)`.
fn segments(h: usize) -> Vec<usize> {
    let mut sizes = Vec::new();
    let mut s = (4 * h).max(8);
    while s > 8 {
        sizes.push(s);
        s /= 2;
    }
    sizes.extend(std::iter::repeat_n(8, h + 2));
    sizes
}

struct DartProgram {
    n: usize,
    seed: u64,
    /// (base, size) of each segment.
    segs: Vec<(Addr, usize)>,
    out_base: Addr,
    out_size: usize,
}

#[derive(Default)]
struct DartProc {
    /// 0 while unknown / empty; otherwise this processor carries an item.
    has_item: bool,
    /// Dart target of the in-flight round.
    target: Addr,
}

impl DartProgram {
    fn new(n: usize, h: usize, seed: u64, layout: &mut Layout) -> Self {
        let sizes = segments(h);
        let out_size: usize = sizes.iter().sum();
        let out_base = layout.alloc(out_size);
        let mut segs = Vec::with_capacity(sizes.len());
        let mut at = out_base;
        for s in sizes {
            segs.push((at, s));
            at += s;
        }
        DartProgram {
            n,
            seed,
            segs,
            out_base,
            out_size,
        }
    }

    fn slot(&self, pid: usize, round: usize) -> Addr {
        // Fault-free, round < segs.len() by the ≥1-retirement-per-round
        // argument (see `segments`). Injected stalls can desynchronize
        // rounds enough to run off the schedule; late darts then reuse the
        // final segment (bounded by the machine's phase limit) rather than
        // panicking.
        let round = round.min(self.segs.len() - 1);
        let (base, size) = self.segs[round];
        let mut z = self
            .seed
            .wrapping_add((pid as u64).wrapping_mul(0x9e3779b97f4a7c15))
            .wrapping_add((round as u64).wrapping_mul(0xd1b54a32d192ed03));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^= z >> 31;
        base + (z % size as u64) as usize
    }
}

impl Program for DartProgram {
    type Proc = DartProc;

    fn num_procs(&self) -> usize {
        self.n
    }

    fn create(&self, _pid: usize) -> DartProc {
        DartProc::default()
    }

    fn phase(&self, pid: usize, st: &mut DartProc, env: &mut PhaseEnv<'_>) -> Status {
        let t = env.phase();
        // Phase 0: read own input cell. Phase 1: drop out if empty.
        if t == 0 {
            env.read(pid);
            return Status::Active;
        }
        if t == 1 {
            st.has_item = env.delivered()[0].1 != 0;
            if !st.has_item {
                return Status::Done;
            }
            // Throw the first dart.
            st.target = self.slot(pid, 0);
            env.write(st.target, pid as Word + 1);
            return Status::Active;
        }
        // From here, alternating read-back (even t) / re-throw (odd t).
        // Round r threw at phase 2r+1 and reads back at phase 2r+2.
        if t % 2 == 0 {
            env.read(st.target);
            Status::Active
        } else {
            let won = env.delivered()[0].1 == pid as Word + 1;
            if won {
                return Status::Done;
            }
            let round = (t - 1) / 2;
            st.target = self.slot(pid, round);
            env.write(st.target, pid as Word + 1);
            Status::Active
        }
    }
}

/// Randomized dart-throwing LAC. `input` has items in its non-zero cells
/// (at most `h` of them); they are placed into a fresh array of size
/// `O(h)` (at most `16h + 32`).
/// ```
/// use parbounds_algo::{lac::lac_dart, workloads};
/// use parbounds_models::QsmMachine;
///
/// let machine = QsmMachine::qsm(4);
/// let items = workloads::sparse_items(256, 32, 1);
/// let out = lac_dart(&machine, &items, 32, 7).unwrap();
/// assert!(out.verify(&items)); // every item placed exactly once
/// assert!(out.out_size <= 16 * 32 + 32); // O(h) destination
/// ```
pub fn lac_dart(machine: &QsmMachine, input: &[Word], h: usize, seed: u64) -> Result<LacOutcome> {
    assert!(h >= 1, "h must be at least 1");
    let count = input.iter().filter(|&&v| v != 0).count();
    assert!(count <= h, "input has {count} items but h = {h}");
    if input.is_empty() {
        return lac_dart(machine, &[0], h, seed);
    }
    let mut layout = Layout::new(input.len());
    let prog = DartProgram::new(input.len(), h, seed, &mut layout);
    let (out_base, out_size) = (prog.out_base, prog.out_size);
    let run = machine.run(&prog, input)?;
    Ok(LacOutcome {
        out_base,
        out_size,
        run,
    })
}

/// Outcome of [`lac_dart_retry`]: the verified compaction plus the cost of
/// getting there under faults.
#[derive(Debug)]
pub struct LacRetryOutcome {
    /// The verified-correct compaction of the successful attempt.
    pub outcome: LacOutcome,
    /// Attempts consumed (1 = first try succeeded).
    pub attempts: usize,
    /// Summed model time of every attempt that ran to completion.
    pub total_time: u64,
    /// Model time of the fault-free execution of the same instance.
    pub baseline_time: u64,
}

impl LacRetryOutcome {
    /// Measured cost of fault tolerance: total attempted time over the
    /// fault-free baseline (1.0 = no degradation).
    pub fn inflation(&self) -> f64 {
        self.total_time as f64 / self.baseline_time.max(1) as f64
    }
}

/// A fault plan whose errors a Las Vegas retry loop may recover from by
/// reseeding: injected aborts and budget overruns. Model-rule violations
/// (read/write conflicts, bad processors, bad configs, memory overruns)
/// indicate program bugs and are never retried.
pub(crate) fn retryable(err: &ModelError) -> bool {
    matches!(
        err,
        ModelError::FaultAborted { .. }
            | ModelError::CostBudgetExceeded { .. }
            | ModelError::PhaseLimitExceeded { .. }
    )
}

/// Dart-throwing LAC hardened into a Las Vegas algorithm under fault
/// injection: run [`lac_dart`] on `machine` carrying `plan`, *verify* the
/// output, and retry with a reseeded plan and fresh dart seed until a
/// verified-correct compaction is produced or `max_attempts` runs out
/// (then [`ModelError::FaultAborted`]).
///
/// Because every returned outcome is verified, the result is correct under
/// any winner policy, stall schedule or message fault rate — faults only
/// inflate the cost, which [`LacRetryOutcome::inflation`] measures against
/// the fault-free baseline.
pub fn lac_dart_retry(
    machine: &QsmMachine,
    input: &[Word],
    h: usize,
    seed: u64,
    plan: &FaultPlan,
    max_attempts: usize,
) -> Result<LacRetryOutcome> {
    assert!(max_attempts >= 1, "need at least one attempt");
    let baseline = lac_dart(&machine.clone().without_faults(), input, h, seed)?;
    let baseline_time = baseline.run.time();

    let mut total_time = 0u64;
    for attempt in 0..max_attempts {
        let k = attempt as u64;
        let faulted = machine
            .clone()
            .with_faults(plan.clone().with_seed(plan.seed().wrapping_add(k)));
        match lac_dart(
            &faulted,
            input,
            h,
            seed.wrapping_add(k.wrapping_mul(0x9e37_79b9)),
        ) {
            Ok(out) => {
                total_time += out.run.time();
                if out.verify(input) {
                    return Ok(LacRetryOutcome {
                        outcome: out,
                        attempts: attempt + 1,
                        total_time,
                        baseline_time,
                    });
                }
            }
            Err(e) if retryable(&e) => {
                // The abort forfeits the attempt; what it spent before
                // aborting is bounded by the plan's budgets.
                if let Some(b) = plan.cost_budget() {
                    total_time += b;
                }
            }
            Err(e) => return Err(e),
        }
    }
    Err(ModelError::FaultAborted {
        phase: 0,
        reason: format!("LAC not verified after {max_attempts} attempts under faults"),
    })
}

// ---------------------------------------------------------------------------
// Deterministic exact compaction via prefix sums (computes in rounds).
// ---------------------------------------------------------------------------

struct CompactProgram {
    n: usize,
    p: usize,
    b: usize,
    shape: TreeShape,
    partials: Vec<Addr>,
    offsets: Vec<Addr>,
    out: Addr,
}

#[derive(Default)]
struct CompactProc {
    flags: Vec<bool>,
    child_sums: Vec<Vec<Word>>,
}

impl CompactProgram {
    fn new(n: usize, p: usize, layout: &mut Layout) -> Self {
        assert!(n > 0, "compaction of an empty input");
        assert!(p >= 1 && p <= n, "need 1 <= p <= n (got p={p}, n={n})");
        let b = n.div_ceil(p);
        let f = b.max(2);
        let shape = TreeShape::new(p, f);
        let mut partials = Vec::with_capacity(shape.widths.len());
        for &w in &shape.widths {
            partials.push(layout.alloc(w));
        }
        let mut offsets = Vec::with_capacity(shape.depth());
        for &w in &shape.widths[..shape.depth()] {
            offsets.push(layout.alloc(w));
        }
        let out = layout.alloc(n);
        CompactProgram {
            n,
            p,
            b,
            shape,
            partials,
            offsets,
            out,
        }
    }

    fn block(&self, i: usize) -> (usize, usize) {
        ((i * self.b).min(self.n), ((i + 1) * self.b).min(self.n))
    }

    fn scatter(&self, pid: usize, st: &CompactProc, offset: Word, env: &mut PhaseEnv<'_>) {
        let (lo, _) = self.block(pid);
        let mut rank = offset;
        for (j, &flag) in st.flags.iter().enumerate() {
            if flag {
                env.write(self.out + rank as usize, (lo + j) as Word + 1);
                rank += 1;
            }
        }
    }
}

impl Program for CompactProgram {
    type Proc = CompactProc;

    fn num_procs(&self) -> usize {
        self.p
    }

    fn create(&self, _pid: usize) -> CompactProc {
        CompactProc::default()
    }

    fn phase(&self, pid: usize, st: &mut CompactProc, env: &mut PhaseEnv<'_>) -> Status {
        let d = self.shape.depth();
        let t = env.phase();
        let op = ReduceOp::Sum;
        match t {
            0 => {
                let (lo, hi) = self.block(pid);
                for a in lo..hi {
                    env.read(a);
                }
                Status::Active
            }
            1 => {
                st.flags = env.delivered().iter().map(|&(_, v)| v != 0).collect();
                let count = st.flags.iter().filter(|&&f| f).count() as Word;
                env.write(self.partials[0] + pid, count);
                if d == 0 {
                    self.scatter(pid, st, 0, env);
                    return Status::Done;
                }
                Status::Active
            }
            t if t < 2 * d + 2 => {
                let l = t / 2;
                if pid < self.shape.widths[l] {
                    if t % 2 == 0 {
                        for m in 0..self.shape.children_of(l, pid) {
                            env.read(self.partials[l - 1] + pid * self.shape.k + m);
                        }
                    } else {
                        let sums: Vec<Word> = env.delivered().iter().map(|&(_, v)| v).collect();
                        env.write(self.partials[l] + pid, op.fold(&sums));
                        while st.child_sums.len() < l {
                            st.child_sums.push(Vec::new());
                        }
                        st.child_sums[l - 1] = sums;
                    }
                }
                Status::Active
            }
            t if t < 4 * d + 2 => {
                let step = t - (2 * d + 2);
                let l = d - step / 2;
                if pid < self.shape.widths[l] {
                    if step.is_multiple_of(2) {
                        if l < d {
                            env.read(self.offsets[l] + pid);
                        }
                    } else {
                        let own = if l < d { env.delivered()[0].1 } else { 0 };
                        let mut acc = own;
                        for m in 0..self.shape.children_of(l, pid) {
                            env.write(self.offsets[l - 1] + pid * self.shape.k + m, acc);
                            acc += st.child_sums[l - 1][m];
                        }
                    }
                }
                Status::Active
            }
            t if t == 4 * d + 2 => {
                env.read(self.offsets[0] + pid);
                Status::Active
            }
            _ => {
                let offset = env.delivered()[0].1;
                self.scatter(pid, st, offset, env);
                Status::Done
            }
        }
    }
}

/// Deterministic exact compaction with `p` processors via prefix sums,
/// computing in rounds. Destination size = `n` (only the first
/// `count(items)` cells are filled — exact compaction is *stronger* than
/// LAC's `O(h)` requirement).
pub fn lac_prefix(machine: &QsmMachine, input: &[Word], p: usize) -> Result<LacOutcome> {
    let mut layout = Layout::new(input.len());
    let prog = CompactProgram::new(input.len(), p, &mut layout);
    let (out, n) = (prog.out, prog.n);
    let run = machine.run(&prog, input)?;
    Ok(LacOutcome {
        out_base: out,
        out_size: n,
        run,
    })
}

/// Declared cost envelope of [`lac_dart`] in the `h = Θ(n/lg n)` regime the
/// suite sweeps: the paper's `O(√(g·lg n) + g·lg lg n)` QSM claim
/// (Section 6.2 / Section 8).
pub fn cost_contract() -> parbounds_models::CostContract {
    parbounds_models::CostContract::new("lac-dart", "QSM", "O(√(g·lg n) + g·lg lg n)", |p| {
        (p.g * p.lg_n()).sqrt() + p.g * p.lg_n().log2().max(1.0)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use parbounds_models::QsmMachine;

    fn sparse_input(n: usize, items_at: &[usize]) -> Vec<Word> {
        let mut v = vec![0; n];
        for &i in items_at {
            v[i] = 1;
        }
        v
    }

    fn pseudo_items(n: usize, h: usize, seed: u64) -> Vec<Word> {
        let mut v = vec![0 as Word; n];
        let mut placed = 0;
        let mut z = seed;
        while placed < h {
            z = z
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let i = (z >> 33) as usize % n;
            if v[i] == 0 {
                v[i] = 1;
                placed += 1;
            }
        }
        v
    }

    #[test]
    fn retry_lac_fault_free_is_single_attempt() {
        let m = QsmMachine::qsm(2);
        let input = pseudo_items(256, 32, 9);
        let out = lac_dart_retry(&m, &input, 32, 42, &FaultPlan::new(0), 4).unwrap();
        assert_eq!(out.attempts, 1);
        assert!(out.outcome.verify(&input));
        assert_eq!(out.total_time, out.baseline_time);
        assert!((out.inflation() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn retry_lac_terminates_under_adversarial_winners_and_stalls() {
        use parbounds_models::WinnerPolicy;
        let m = QsmMachine::qsm(2);
        let input = pseudo_items(256, 32, 9);
        let plan = FaultPlan::new(5)
            .with_winner(WinnerPolicy::MinValue)
            .with_stall(3, 2)
            .with_stall(7, 4)
            .with_phase_budget(4096);
        let out = lac_dart_retry(&m, &input, 32, 42, &plan, 8).unwrap();
        assert!(out.outcome.verify(&input));
        assert!(out.inflation() >= 1.0);
    }

    #[test]
    fn retry_lac_reports_typed_error_when_attempts_exhaust() {
        // A crash at phase 0 aborts every attempt; the wrapper must give a
        // typed FaultAborted, never a panic or a wrong Ok.
        let m = QsmMachine::qsm(2);
        let input = pseudo_items(64, 8, 3);
        let plan = FaultPlan::new(1).with_crash(0, 0);
        let err = lac_dart_retry(&m, &input, 8, 7, &plan, 3).unwrap_err();
        assert!(matches!(err, ModelError::FaultAborted { .. }));
    }

    #[test]
    fn dart_places_every_item_exactly_once() {
        let m = QsmMachine::qsm(2);
        for (n, h) in [(64usize, 8usize), (256, 32), (1024, 128)] {
            let input = pseudo_items(n, h, n as u64);
            let out = lac_dart(&m, &input, h, 42).unwrap();
            assert!(out.verify(&input), "n={n} h={h}");
            assert!(
                out.out_size <= 16 * h + 32,
                "out_size {} not O(h)",
                out.out_size
            );
        }
    }

    #[test]
    fn dart_handles_no_items_and_full_load() {
        let m = QsmMachine::qsm(2);
        let empty = vec![0; 32];
        let out = lac_dart(&m, &empty, 4, 1).unwrap();
        assert!(out.verify(&empty));
        assert!(out.dest().iter().all(|&v| v == 0));

        let h = 16;
        let input = sparse_input(16, &(0..16).collect::<Vec<_>>());
        let out = lac_dart(&m, &input, h, 7).unwrap();
        assert!(out.verify(&input));
    }

    #[test]
    fn dart_is_seed_deterministic() {
        let m = QsmMachine::qsm(1);
        let input = pseudo_items(128, 16, 5);
        let a = lac_dart(&m, &input, 16, 9).unwrap();
        let b = lac_dart(&m, &input, 16, 9).unwrap();
        assert_eq!(a.dest(), b.dest());
    }

    #[test]
    #[should_panic(expected = "items but h")]
    fn dart_rejects_overfull_input() {
        let m = QsmMachine::qsm(1);
        let input = sparse_input(8, &[0, 1, 2, 3]);
        let _ = lac_dart(&m, &input, 3, 0);
    }

    #[test]
    fn dart_round_count_is_small() {
        // With load factor <= 1/4 per segment, the expected number of dart
        // rounds is O(log log n)-flavoured; assert a generous cap.
        let m = QsmMachine::qrqw();
        let n = 4096;
        let h = 512;
        let input = pseudo_items(n, h, 3);
        let out = lac_dart(&m, &input, h, 11).unwrap();
        assert!(out.verify(&input));
        let phases = out.run.ledger.num_phases();
        assert!(phases <= 2 + 2 * 20, "took {phases} phases");
    }

    #[test]
    fn prefix_compaction_is_exact_and_ordered() {
        let m = QsmMachine::qsm(2);
        let input = sparse_input(40, &[3, 7, 8, 21, 39]);
        for p in [1usize, 4, 8, 40] {
            let out = lac_prefix(&m, &input, p).unwrap();
            assert!(out.verify(&input), "p={p}");
            // Exact compaction preserves order and packs at the front.
            let dest = out.dest();
            assert_eq!(&dest[..5], &[4, 8, 9, 22, 40]);
            assert!(dest[5..].iter().all(|&v| v == 0));
        }
    }

    #[test]
    fn prefix_compaction_respects_rounds() {
        let n = 1024;
        let p = 64;
        let g = 2;
        let m = QsmMachine::qsm(g);
        let input = pseudo_items(n, 100, 13);
        let out = lac_prefix(&m, &input, p).unwrap();
        assert!(out.verify(&input));
        let budget = parbounds_models::round_budget_qsm(n as u64, p as u64, g, 2);
        assert!(
            out.run.ledger.is_round_respecting(budget),
            "max phase {} > {budget}",
            out.run.ledger.max_phase_cost()
        );
    }

    #[test]
    fn dart_contention_stays_moderate() {
        // Load factor 1/4 keeps realized dart contention far below h.
        let m = QsmMachine::qrqw();
        let n = 2048;
        let h = 256;
        let input = pseudo_items(n, h, 17);
        let out = lac_dart(&m, &input, h, 23).unwrap();
        assert!(
            out.run.ledger.max_contention() <= 16,
            "contention {}",
            out.run.ledger.max_contention()
        );
    }
}

// ---------------------------------------------------------------------------
// Accelerated dart-throwing: the O(g·log log n) round schedule.
// ---------------------------------------------------------------------------

/// Segment schedule with *doubly-geometric* live-count collapse: round `t`
/// uses a fresh segment of size `≈ 4·√(h·est_t)`, so the load factor is
/// `λ_t ≈ √(est_t/h)/4` and the expected survivor count obeys
/// `est_{t+1} ≈ est_t·λ_t` — i.e. `x_{t+1} = x_t^{3/2}/4` for `x = est/h`,
/// which collapses in `O(log log h)` rounds while the segment sizes sum to
/// `O(h)`. (This is the schedule that realizes the paper's `g·log log n`
/// LAC term; the plain geometric schedule of [`lac_dart`] only halves per
/// round.) A `h + 2`-long tail of 8-cell segments again guarantees
/// termination outright.
fn accel_segments(h: usize) -> Vec<usize> {
    let mut sizes = Vec::new();
    let mut est = h as f64;
    while est >= 1.0 && sizes.len() < 64 {
        let seg = (4.0 * (h as f64 * est).sqrt()).ceil() as usize;
        let seg = seg.max(8);
        sizes.push(seg);
        let lambda = est / seg as f64;
        // Safety factor 4 on the expected survivors for w.h.p. slack.
        est = (est * lambda * 4.0).min(est * 0.75);
        if est < 1.0 {
            break;
        }
    }
    sizes.extend(std::iter::repeat_n(8, h + 2));
    sizes
}

/// Accelerated randomized LAC: same claim protocol as [`lac_dart`], with
/// the doubly-geometric segment schedule above — expected `O(log log n)`
/// dart rounds of cost `O(g + κ)`, destination size `O(h)`.
pub fn lac_dart_accel(
    machine: &QsmMachine,
    input: &[Word],
    h: usize,
    seed: u64,
) -> Result<LacOutcome> {
    assert!(h >= 1, "h must be at least 1");
    let count = input.iter().filter(|&&v| v != 0).count();
    assert!(count <= h, "input has {count} items but h = {h}");
    if input.is_empty() {
        return lac_dart_accel(machine, &[0], h, seed);
    }
    let sizes = accel_segments(h);
    let out_size: usize = sizes.iter().sum();
    let mut layout = Layout::new(input.len());
    let out_base = layout.alloc(out_size);
    let mut segs = Vec::with_capacity(sizes.len());
    let mut at = out_base;
    for s in sizes {
        segs.push((at, s));
        at += s;
    }
    let prog = DartProgram {
        n: input.len(),
        seed,
        segs,
        out_base,
        out_size,
    };
    let run = machine.run(&prog, input)?;
    Ok(LacOutcome {
        out_base,
        out_size,
        run,
    })
}

#[cfg(test)]
mod accel_tests {
    use super::*;
    use parbounds_models::QsmMachine;

    #[test]
    fn accel_schedule_space_is_linear_in_h() {
        for h in [8usize, 64, 1024, 1 << 14] {
            let total: usize = accel_segments(h).iter().sum();
            assert!(total <= 40 * h + 64, "h={h}: total {total}");
            // The non-tail prefix alone is small.
            let prefix: usize = accel_segments(h).iter().take_while(|&&s| s > 8).sum();
            assert!(prefix <= 24 * h + 64, "h={h}: prefix {prefix}");
        }
    }

    #[test]
    fn accel_places_every_item() {
        let m = QsmMachine::qsm(2);
        for (n, h) in [(128usize, 16usize), (1024, 128), (4096, 512)] {
            let input = crate::workloads::sparse_items(n, h, n as u64);
            let out = lac_dart_accel(&m, &input, h, 5).unwrap();
            assert!(out.verify(&input), "n={n} h={h}");
        }
    }

    #[test]
    fn accel_uses_fewer_rounds_than_geometric_at_scale() {
        let m = QsmMachine::qrqw();
        let n = 1 << 14;
        let h = n / 8;
        let input = crate::workloads::sparse_items(n, h, 3);
        let accel = lac_dart_accel(&m, &input, h, 9).unwrap();
        let plain = lac_dart(&m, &input, h, 9).unwrap();
        assert!(accel.verify(&input) && plain.verify(&input));
        assert!(
            accel.run.phases() <= plain.run.phases(),
            "accel {} > plain {}",
            accel.run.phases(),
            plain.run.phases()
        );
        // The accelerated round count is log log flavoured: single digits
        // of dart rounds at n = 2^14.
        assert!(
            accel.run.phases() <= 2 + 2 * 9,
            "phases {}",
            accel.run.phases()
        );
    }

    #[test]
    fn accel_matches_the_g_loglog_shape() {
        // measured / (g·log log n) flat-ish across the sweep (plus the
        // initial contention term the paper's sqrt covers).
        let mut ratios = Vec::new();
        for n in [1usize << 10, 1 << 14] {
            for g in [2u64, 8] {
                let m = QsmMachine::qsm(g);
                let h = n / 8;
                let input = crate::workloads::sparse_items(n, h, 1);
                let out = lac_dart_accel(&m, &input, h, 2).unwrap();
                assert!(out.verify(&input));
                let loglog = ((n as f64).log2()).log2();
                ratios.push(out.run.time() as f64 / (g as f64 * loglog));
            }
        }
        let max = ratios.iter().cloned().fold(f64::MIN, f64::max);
        let min = ratios.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max / min <= 4.0, "spread {min}..{max}");
    }
}
