//! Rounds-respecting reductions: OR and Parity computed by `p`-processor
//! algorithms whose every phase fits the round budget of Section 2.3.
//!
//! Two constructions:
//!
//! * [`reduce_in_rounds`] — read-tree with fan-in `⌈n/p⌉`: a phase moves at
//!   most `n/p` words per processor (cost `g·n/p`), giving
//!   `Θ(log n / log(n/p))` rounds for any associative operator. This matches
//!   the tight rounds bounds for OR and Parity on the s-QSM and BSP
//!   (sub-table 4).
//! * [`or_in_rounds_qsm`] — write-combining with fan-in `g·n/p`: on a plain
//!   QSM a round of budget `g·n/p` can absorb *contention* `κ = g·n/p`
//!   (contention is charged raw, not through the gap), so OR finishes in
//!   `Θ(log n / log(g·n/p))` rounds — the tight QSM entry of sub-table 4.

use parbounds_models::{PhaseEnv, Program, QsmMachine, Result, Status, Word};

use crate::util::{Layout, ReduceOp, TreeShape};
use crate::Outcome;

struct RoundsReduceProgram {
    n: usize,
    p: usize,
    b: usize,
    op: ReduceOp,
    shape: TreeShape,
    partials: Vec<usize>,
    out: usize,
}

#[derive(Default)]
struct RoundsProc {
    value: Word,
}

impl RoundsReduceProgram {
    fn new(n: usize, p: usize, op: ReduceOp, layout: &mut Layout) -> Self {
        assert!(n > 0, "reduction of an empty input");
        assert!(p >= 1 && p <= n, "need 1 <= p <= n (got p={p}, n={n})");
        let b = n.div_ceil(p);
        let f = b.max(2);
        let shape = TreeShape::new(p, f);
        let mut partials = Vec::with_capacity(shape.widths.len());
        for &w in &shape.widths {
            partials.push(layout.alloc(w));
        }
        let out = layout.alloc(1);
        RoundsReduceProgram {
            n,
            p,
            b,
            op,
            shape,
            partials,
            out,
        }
    }
}

impl Program for RoundsReduceProgram {
    type Proc = RoundsProc;

    fn num_procs(&self) -> usize {
        self.p
    }

    fn create(&self, _pid: usize) -> RoundsProc {
        RoundsProc::default()
    }

    fn phase(&self, pid: usize, st: &mut RoundsProc, env: &mut PhaseEnv<'_>) -> Status {
        let d = self.shape.depth();
        let t = env.phase();
        match t {
            0 => {
                let lo = (pid * self.b).min(self.n);
                let hi = ((pid + 1) * self.b).min(self.n);
                for a in lo..hi {
                    env.read(a);
                }
                Status::Active
            }
            1 => {
                st.value = self
                    .op
                    .fold(&env.delivered().iter().map(|&(_, v)| v).collect::<Vec<_>>());
                env.write(self.partials[0] + pid, st.value);
                if d == 0 {
                    env.write(self.out, st.value);
                    return Status::Done;
                }
                Status::Active
            }
            t if t < 2 * d + 2 => {
                let l = t / 2;
                if pid >= self.shape.widths[l] {
                    return if t % 2 == 1 && l == d {
                        Status::Done
                    } else {
                        Status::Active
                    };
                }
                if t % 2 == 0 {
                    let children = self.shape.children_of(l, pid);
                    for m in 0..children {
                        env.read(self.partials[l - 1] + pid * self.shape.k + m);
                    }
                    Status::Active
                } else {
                    let v = self
                        .op
                        .fold(&env.delivered().iter().map(|&(_, x)| x).collect::<Vec<_>>());
                    env.write(self.partials[l] + pid, v);
                    if l == d {
                        env.write(self.out, v);
                        Status::Done
                    } else {
                        Status::Active
                    }
                }
            }
            _ => unreachable!("all processors finish by phase 2·depth+1"),
        }
    }
}

/// Reduces `input` under `op` with `p` processors, computing in rounds
/// (fan-in `⌈n/p⌉` read tree). Rounds: `2 + 2·⌈log_{max(2,n/p)} p⌉`.
pub fn reduce_in_rounds(
    machine: &QsmMachine,
    input: &[Word],
    p: usize,
    op: ReduceOp,
) -> Result<Outcome> {
    let mut layout = Layout::new(input.len());
    let prog = RoundsReduceProgram::new(input.len(), p, op, &mut layout);
    let out = prog.out;
    let run = machine.run(&prog, input)?;
    let value = run.memory.get(out);
    Ok(Outcome { value, run })
}

/// Parity in rounds: [`reduce_in_rounds`] with XOR.
pub fn parity_in_rounds(machine: &QsmMachine, bits: &[Word], p: usize) -> Result<Outcome> {
    reduce_in_rounds(machine, bits, p, ReduceOp::Xor)
}

/// Rounds taken by [`reduce_in_rounds`].
pub fn reduce_rounds_count(n: usize, p: usize) -> usize {
    let b = n.div_ceil(p).max(2);
    let d = TreeShape::new(p, b).depth();
    2 + 2 * d
}

// ---------------------------------------------------------------------------
// OR with write-combining at round granularity (QSM-tight).
// ---------------------------------------------------------------------------

struct OrRoundsProgram {
    n: usize,
    p: usize,
    b: usize,
    /// Combining fan-in over the p block-ORs: `g·⌈n/p⌉` capped at p.
    k: usize,
    depth: usize,
    level_bases: Vec<usize>,
    out: usize,
}

impl OrRoundsProgram {
    fn new(n: usize, p: usize, g: u64, layout: &mut Layout) -> Self {
        assert!(
            n > 0 && p >= 1 && p <= n,
            "need 1 <= p <= n (got p={p}, n={n})"
        );
        let b = n.div_ceil(p);
        let k = ((g as usize).saturating_mul(b)).clamp(2, p.max(2));
        let depth = crate::util::ceil_log(p, k) as usize;
        let mut level_bases = Vec::with_capacity(depth);
        let mut width = p;
        for _ in 0..depth {
            width = width.div_ceil(k);
            level_bases.push(layout.alloc(width));
        }
        let out = layout.alloc(1);
        OrRoundsProgram {
            n,
            p,
            b,
            k,
            depth,
            level_bases,
            out,
        }
    }

    fn rep_level(&self, i: usize) -> usize {
        if i == 0 {
            return self.depth;
        }
        let mut m = 0;
        let mut stride = self.k;
        while m < self.depth && i.is_multiple_of(stride) {
            m += 1;
            stride = stride.saturating_mul(self.k);
        }
        m
    }
}

impl Program for OrRoundsProgram {
    type Proc = RoundsProc;

    fn num_procs(&self) -> usize {
        self.p
    }

    fn create(&self, _pid: usize) -> RoundsProc {
        RoundsProc::default()
    }

    fn phase(&self, pid: usize, st: &mut RoundsProc, env: &mut PhaseEnv<'_>) -> Status {
        let t = env.phase();
        if t == 0 {
            // Read the local block (one round: g·b).
            let lo = (pid * self.b).min(self.n);
            let hi = ((pid + 1) * self.b).min(self.n);
            for a in lo..hi {
                env.read(a);
            }
            return Status::Active;
        }
        if t % 2 == 1 {
            let round = t.div_ceil(2);
            if round == 1 {
                st.value = Word::from(env.delivered().iter().any(|&(_, v)| v != 0));
            } else if let Some(&(_, v)) = env.delivered().first() {
                st.value = Word::from(v != 0);
            }
            if round > self.depth {
                debug_assert_eq!(pid, 0);
                env.write(self.out, st.value);
                return Status::Done;
            }
            let stride = self.k.pow(round as u32 - 1);
            debug_assert_eq!(pid % stride, 0);
            if st.value != 0 {
                env.write(self.level_bases[round - 1] + pid / (stride * self.k), 1);
            }
            if self.rep_level(pid) >= round {
                Status::Active
            } else {
                Status::Done
            }
        } else {
            let round = t / 2;
            let stride = self.k.pow(round as u32);
            env.read(self.level_bases[round - 1] + pid / stride);
            Status::Active
        }
    }
}

/// OR of `bits` with `p` processors on a QSM, write-combining with fan-in
/// `g·n/p`: `Θ(log n / log(g·n/p))` rounds — the tight sub-table 4 bound.
pub fn or_in_rounds_qsm(machine: &QsmMachine, bits: &[Word], p: usize) -> Result<Outcome> {
    let mut layout = Layout::new(bits.len());
    let prog = OrRoundsProgram::new(bits.len(), p, machine.g(), &mut layout);
    let out = prog.out;
    let run = machine.run(&prog, bits)?;
    let value = run.memory.get(out);
    Ok(Outcome { value, run })
}

/// Rounds taken by [`or_in_rounds_qsm`]: `2 + 2·⌈log_{g·n/p} p⌉`.
pub fn or_rounds_count(n: usize, p: usize, g: u64) -> usize {
    let b = n.div_ceil(p);
    let k = ((g as usize).saturating_mul(b)).clamp(2, p.max(2));
    2 + 2 * crate::util::ceil_log(p, k) as usize
}

/// Declared envelope of [`or_in_rounds_qsm`] measured in *rounds*:
/// `O(1 + lg p / lg(g·n/p))` phases — the tight sub-table 4 shape.
pub fn cost_contract() -> parbounds_models::CostContract {
    parbounds_models::CostContract::new("or-rounds", "QSM", "O(1 + lg p / lg(g·n/p))", |p| {
        1.0 + p.p.max(2.0).log2() / (p.g * p.n / p.p).max(2.0).log2()
    })
    .with_metric(parbounds_models::ContractMetric::Phases)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parbounds_models::{round_budget_qsm, QsmMachine};

    fn bits(n: usize, ones_at: &[usize]) -> Vec<Word> {
        let mut v = vec![0; n];
        for &i in ones_at {
            v[i] = 1;
        }
        v
    }

    #[test]
    fn reduce_in_rounds_is_correct() {
        let m = QsmMachine::qsm(2);
        let input: Vec<Word> = (0..200).map(|i| (i * 7 + 3) % 5).collect();
        for p in [1usize, 4, 20, 200] {
            assert_eq!(
                reduce_in_rounds(&m, &input, p, ReduceOp::Sum)
                    .unwrap()
                    .value,
                input.iter().sum::<Word>(),
                "p={p}"
            );
            assert_eq!(
                parity_in_rounds(&m, &input, p).unwrap().value,
                input.iter().sum::<Word>() % 2
            );
        }
    }

    #[test]
    fn reduce_phase_count_matches_formula() {
        let m = QsmMachine::qsm(1);
        for (n, p) in [(256usize, 16usize), (4096, 64), (100, 100), (64, 1)] {
            let input = bits(n, &[n / 2]);
            let out = reduce_in_rounds(&m, &input, p, ReduceOp::Or).unwrap();
            assert_eq!(
                out.run.ledger.num_phases(),
                reduce_rounds_count(n, p),
                "n={n} p={p}"
            );
        }
    }

    #[test]
    fn reduce_respects_round_budget() {
        for (n, p, g) in [(1024usize, 32usize, 2u64), (4096, 256, 4), (512, 512, 1)] {
            let m = QsmMachine::sqsm(g);
            let out = reduce_in_rounds(&m, &bits(n, &[1]), p, ReduceOp::Xor).unwrap();
            let budget = round_budget_qsm(n as u64, p as u64, g, 2);
            assert!(
                out.run.ledger.is_round_respecting(budget),
                "max phase {} > {budget}",
                out.run.ledger.max_phase_cost()
            );
        }
    }

    #[test]
    fn or_in_rounds_correct_and_fits_budget() {
        let n = 4096;
        let p = 256;
        let g = 4;
        let m = QsmMachine::qsm(g);
        for ones in [vec![], vec![0], vec![n - 1], vec![7, 99, 2048]] {
            let input = bits(n, &ones);
            let out = or_in_rounds_qsm(&m, &input, p).unwrap();
            assert_eq!(out.value, Word::from(!ones.is_empty()), "{ones:?}");
            let budget = round_budget_qsm(n as u64, p as u64, g, 2);
            assert!(out.run.ledger.is_round_respecting(budget));
        }
    }

    #[test]
    fn qsm_or_uses_fewer_rounds_than_read_tree_when_g_large() {
        // Fan-in g·n/p beats fan-in n/p: log n/log(gn/p) < log n/log(n/p).
        let n = 1 << 16;
        let p = 1 << 12; // n/p = 16
        let g = 16;
        assert!(or_rounds_count(n, p, g) < reduce_rounds_count(n, p));
    }

    #[test]
    fn or_rounds_phase_count_matches_formula() {
        let n = 1 << 12;
        let p = 1 << 8;
        let g = 4;
        let m = QsmMachine::qsm(g);
        let out = or_in_rounds_qsm(&m, &bits(n, &[5]), p).unwrap();
        assert_eq!(out.run.ledger.num_phases(), or_rounds_count(n, p, g));
    }

    #[test]
    fn single_processor_or() {
        let m = QsmMachine::qsm(2);
        let out = or_in_rounds_qsm(&m, &bits(16, &[3]), 1).unwrap();
        assert_eq!(out.value, 1);
    }
}
