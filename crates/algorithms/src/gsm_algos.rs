//! Algorithms on the GSM lower-bound model itself — demonstrating *why*
//! the GSM is strictly stronger than the QSM family (Section 2.2) and that
//! the paper's GSM lower bounds are tight on their own model.
//!
//! The strong-queuing rule merges **all** concurrently written information
//! into a cell, so a fan-in-`β` combine costs a single big-step: `β`
//! children *write* their partial values into the parent's cell (κ = β,
//! one big-step), and the parent recovers all of them with *one* read.
//! With the initial γ-packing giving the leaves fan-in γ for free, the
//! fan-in-β tree computes Parity/OR/Sum in
//!
//! ```text
//! Θ(μ · log(n/γ) / log β)   =   Θ(μ · log(n/γ) / log μ)  at β = μ
//! ```
//!
//! — exactly matching the Theorem 3.1 lower bound
//! `Ω(μ·log(n/γ)/log μ)`. The same computation on a QSM pays `g·k` to
//! gather `k` values, which is the entire content of the QSM/GSM
//! separation the paper exploits.

use parbounds_models::{Addr, GsmEnv, GsmMachine, GsmProgram, GsmRunResult, Result, Status, Word};

use crate::util::{ceil_log, Layout, ReduceOp, TreeShape};

/// Outcome of a GSM reduction.
#[derive(Debug)]
pub struct GsmOutcome {
    /// The reduced value.
    pub value: Word,
    /// The execution record.
    pub run: GsmRunResult,
}

struct GsmTreeProgram {
    op: ReduceOp,
    shape: TreeShape,
    /// Base of the level-`l` merge cells (level 1 upward; level 0 reads the
    /// γ-packed input cells directly).
    level_bases: Vec<Addr>,
    /// `(level, node)` per processor; level 0 processors own input cells.
    proc_nodes: Vec<(usize, usize)>,
    out: Addr,
}

impl GsmTreeProgram {
    fn new(num_cells: usize, k: usize, op: ReduceOp, layout: &mut Layout) -> Self {
        let shape = TreeShape::new(num_cells, k);
        let mut level_bases = Vec::with_capacity(shape.depth() + 1);
        for &w in &shape.widths[1..] {
            level_bases.push(layout.alloc(w));
        }
        let out = layout.alloc(1);
        // One processor per node at every level, including the leaves.
        let mut proc_nodes = Vec::new();
        for (level, &w) in shape.widths.iter().enumerate() {
            for node in 0..w {
                proc_nodes.push((level, node));
            }
        }
        GsmTreeProgram {
            op,
            shape,
            level_bases,
            proc_nodes,
            out,
        }
    }
}

impl GsmProgram for GsmTreeProgram {
    type Proc = Word;

    fn num_procs(&self) -> usize {
        self.proc_nodes.len()
    }

    fn create(&self, _pid: usize) -> Word {
        0
    }

    /// Schedule: phase 2l = level-l processors read their cell; phase
    /// 2l+1 = they write the combined value into their level-(l+1) parent
    /// cell (strong queuing merges the whole sibling group in one
    /// big-step).
    fn phase(&self, pid: usize, st: &mut Word, env: &mut GsmEnv<'_>) -> Status {
        let (level, node) = self.proc_nodes[pid];
        let read_phase = 2 * level;
        let t = env.phase();
        if t < read_phase {
            return Status::Active;
        }
        if t == read_phase {
            let addr = if level == 0 {
                node
            } else {
                self.level_bases[level - 1] + node
            };
            env.read(addr);
            return Status::Active;
        }
        debug_assert_eq!(t, read_phase + 1);
        let contents = env.delivered()[0].1.as_slice();
        *st = contents
            .iter()
            .fold(self.op.identity(), |a, &b| self.op.apply(a, b));
        let dest = if level == self.shape.depth() {
            self.out
        } else {
            self.level_bases[level] + node / self.shape.k
        };
        env.write(dest, *st);
        Status::Done
    }
}

/// Reduces `input` under `op` on the GSM with a fan-in-`k` strong-queuing
/// tree. Inputs arrive γ-packed (the machine's initial placement), so the
/// tree has `⌈n/γ⌉` leaves.
pub fn gsm_tree_reduce(
    machine: &GsmMachine,
    input: &[Word],
    k: usize,
    op: ReduceOp,
) -> Result<GsmOutcome> {
    assert!(k >= 2, "fan-in must be >= 2");
    let num_cells = machine.input_cells(input.len()).max(1);
    let mut layout = Layout::new(num_cells);
    let prog = GsmTreeProgram::new(num_cells, k, op, &mut layout);
    let out = prog.out;
    let run = machine.run(&prog, input)?;
    let value = run.memory.get(out).last().copied().unwrap_or(op.identity());
    Ok(GsmOutcome { value, run })
}

/// The natural GSM fan-in: `β` (a big-step absorbs β contention).
pub fn gsm_default_fanin(machine: &GsmMachine) -> usize {
    (machine.beta() as usize).max(2)
}

/// Parity on the GSM at the natural fan-in — `Θ(μ·log(n/γ)/log β)`,
/// matching the Theorem 3.1 lower bound at `β = μ`.
/// ```
/// use parbounds_algo::gsm_algos::gsm_parity;
/// use parbounds_models::GsmMachine;
///
/// let machine = GsmMachine::new(1, 8, 1); // beta = 8: fan-in-8 merges
/// let out = gsm_parity(&machine, &[1, 1, 1, 0, 0, 1]).unwrap();
/// assert_eq!(out.value, 0);
/// ```
pub fn gsm_parity(machine: &GsmMachine, bits: &[Word]) -> Result<GsmOutcome> {
    let out = gsm_tree_reduce(machine, bits, gsm_default_fanin(machine), ReduceOp::Xor)?;
    Ok(GsmOutcome {
        value: out.value & 1,
        run: out.run,
    })
}

/// OR on the GSM at the natural fan-in.
pub fn gsm_or(machine: &GsmMachine, bits: &[Word]) -> Result<GsmOutcome> {
    gsm_tree_reduce(machine, bits, gsm_default_fanin(machine), ReduceOp::Or)
}

/// Closed-form cost of [`gsm_tree_reduce`]: per level one merge big-step
/// (κ ≤ k ≤ β ⇒ 1) plus one read big-step, `μ` each — `2μ·(depth+1)`.
/// Holds when `k ≤ β` and `γ ≤ α·…` (one read per processor per phase).
pub fn gsm_tree_cost(machine: &GsmMachine, n: usize, k: usize) -> u64 {
    let cells = machine.input_cells(n).max(1);
    let depth = ceil_log(cells, k) as u64;
    let write_steps = (k as u64).div_ceil(machine.beta());
    machine.mu() * (depth + 1) * (1 + write_steps)
}

/// Declared cost envelope of [`gsm_parity`] at the default fan-in `β`:
/// `Θ(μ·lg(n/γ)/lg β)` GSM time — matching the Theorem 3.1 lower bound.
/// (`ContractParams::gsm` carries `μ` in `g`, `β` in `l`, `γ` in `p`.)
pub fn cost_contract() -> parbounds_models::CostContract {
    parbounds_models::CostContract::new("gsm-parity", "GSM", "Θ(μ·lg(n/γ)/lg β)", |p| {
        p.g * (1.0 + (p.n / p.p).max(2.0).log2() / p.l.max(2.0).log2())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::random_bits;

    #[test]
    fn gsm_parity_is_correct() {
        for n in [1usize, 7, 64, 500] {
            for (alpha, beta, gamma) in [(1u64, 1u64, 1u64), (1, 4, 1), (2, 4, 8)] {
                let m = GsmMachine::new(alpha, beta, gamma);
                let bits = random_bits(n, n as u64 + beta);
                let expected = bits.iter().sum::<Word>() % 2;
                let out = gsm_parity(&m, &bits).unwrap();
                assert_eq!(out.value, expected, "n={n} α={alpha} β={beta} γ={gamma}");
            }
        }
    }

    #[test]
    fn gsm_or_and_sum_are_correct() {
        let m = GsmMachine::new(1, 4, 2);
        let bits = random_bits(200, 3);
        assert_eq!(
            gsm_or(&m, &bits).unwrap().value,
            Word::from(bits.iter().any(|&b| b != 0))
        );
        let nums: Vec<Word> = (1..=100).collect();
        assert_eq!(
            gsm_tree_reduce(&m, &nums, 4, ReduceOp::Sum).unwrap().value,
            5050
        );
    }

    #[test]
    fn cost_matches_closed_form_when_fanin_within_beta() {
        for n in [16usize, 100, 512] {
            for beta in [2u64, 4, 8] {
                let m = GsmMachine::new(1, beta, 1);
                let bits = random_bits(n, 5);
                let out = gsm_parity(&m, &bits).unwrap();
                assert_eq!(
                    out.run.time(),
                    gsm_tree_cost(&m, n, beta as usize),
                    "n={n} beta={beta}"
                );
            }
        }
    }

    #[test]
    fn gamma_packing_shrinks_the_tree() {
        // With gamma = 16, a 256-bit input is a 16-leaf tree.
        let m = GsmMachine::new(1, 2, 16);
        let bits = random_bits(256, 9);
        let out = gsm_parity(&m, &bits).unwrap();
        assert_eq!(out.value, bits.iter().sum::<Word>() % 2);
        // depth over 16 cells at fan-in 2 = 4; cost 2μ(depth+1) = 10·μ.
        assert_eq!(out.run.time(), 2 * m.mu() * 5);
    }

    #[test]
    fn gsm_meets_its_own_lower_bound_shape() {
        // Theorem 3.1: Ω(μ·log(n/γ)/log μ). At β = μ the tree achieves
        // O(μ·log(n/γ)/log β): the ratio measured/formula is a constant
        // across n and β.
        let mut ratios = Vec::new();
        for n in [1usize << 8, 1 << 12, 1 << 14] {
            for beta in [2u64, 4, 16] {
                let m = GsmMachine::new(1, beta, 1);
                let bits = random_bits(n, 2);
                let t = gsm_parity(&m, &bits).unwrap().run.time() as f64;
                let mu = m.mu() as f64;
                let formula = mu * (n as f64).log2() / (beta as f64).log2();
                ratios.push(t / formula);
            }
        }
        let max = ratios.iter().cloned().fold(f64::MIN, f64::max);
        let min = ratios.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max / min < 3.0, "ratio spread {max}/{min}");
    }

    #[test]
    fn gsm_beats_qsm_at_equal_gap() {
        // The separation: GSM(1, β=g) parity is Θ(g·log n/log g); the QSM
        // at gap g needs Θ(g·log n/log log g). Measured at g = 16 the GSM
        // tree must win.
        let n = 1 << 12;
        let g = 16u64;
        let bits = random_bits(n, 4);
        let gsm = GsmMachine::new(1, g, 1);
        let gsm_t = gsm_parity(&gsm, &bits).unwrap().run.time();
        let qsm = parbounds_models::QsmMachine::qsm(g);
        let k = crate::parity::parity_helper_default_k(&qsm);
        let qsm_t = crate::parity::parity_pattern_helper(&qsm, &bits, k)
            .unwrap()
            .run
            .time();
        assert!(gsm_t < qsm_t, "GSM {gsm_t} !< QSM {qsm_t}");
    }

    #[test]
    fn single_cell_input() {
        let m = GsmMachine::new(1, 1, 8);
        let out = gsm_parity(&m, &[1, 0, 1, 1]).unwrap();
        assert_eq!(out.value, 1);
    }
}

// ---------------------------------------------------------------------------
// GSM rounds algorithms (Section 2.3: a GSM round is a phase of
// O(μ·n/(λ·p)) time).
// ---------------------------------------------------------------------------

/// Reduces `input` under `op` on the GSM with `p` processors, *computing in
/// rounds*: each processor folds its own block of `⌈n/(γp)⌉` cells reading
/// one cell per big-step (a phase of `≤ μ·n/(λp)` time), then a fan-in-β
/// merge tree over the `p` partials finishes in `Θ(log p / log β)` further
/// rounds — matching the Theorem 7.3 GSM rounds bound
/// `Ω(log(n/γ)/log(μn/λp))` whenever `β = Θ(μn/λp)`.
pub fn gsm_reduce_in_rounds(
    machine: &GsmMachine,
    input: &[Word],
    p: usize,
    op: ReduceOp,
) -> Result<GsmOutcome> {
    let cells = machine.input_cells(input.len()).max(1);
    assert!(
        p >= 1 && p <= cells,
        "need 1 <= p <= input cells (got p={p}, cells={cells})"
    );
    let block = cells.div_ceil(p);
    let k = (machine.beta() as usize).max(2).min(p.max(2));

    struct Prog {
        cells: usize,
        p: usize,
        block: usize,
        op: ReduceOp,
        k: usize,
        depth: usize,
        partials: Addr,
        levels: Vec<Addr>,
        out: Addr,
    }
    struct St {
        value: Word,
    }
    impl GsmProgram for Prog {
        type Proc = St;
        fn num_procs(&self) -> usize {
            self.p
        }
        fn create(&self, _pid: usize) -> St {
            St { value: 0 }
        }
        fn phase(&self, pid: usize, st: &mut St, env: &mut GsmEnv<'_>) -> Status {
            let t = env.phase();
            let lo = (pid * self.block).min(self.cells);
            let hi = ((pid + 1) * self.block).min(self.cells);
            // Phase 0: read the whole local block (one round: ≤ block ≤
            // n/(γp) reads, each cell carrying γ inputs).
            if t == 0 {
                for a in lo..hi {
                    env.read(a);
                }
                return Status::Active;
            }
            if t == 1 {
                st.value = env
                    .delivered()
                    .iter()
                    .flat_map(|(_, c)| c.iter())
                    .fold(self.op.identity(), |a, &b| self.op.apply(a, b));
                // Write the partial into the level-0 merge cell (strong
                // queuing groups k partials per cell).
                if self.depth == 0 {
                    env.write(self.out, st.value);
                    return Status::Done;
                }
                env.write(self.partials + pid / self.k, st.value);
                return if pid.is_multiple_of(self.k) {
                    Status::Active
                } else {
                    Status::Done
                };
            }
            // Merge levels: level l occupies phases 2l and 2l+1 (l >= 1).
            let l = t / 2;
            let width = {
                // width of level l = ceil(p / k^l)
                let mut w = self.p;
                for _ in 0..l {
                    w = w.div_ceil(self.k);
                }
                w
            };
            let stride = self.k.pow(l as u32);
            if !pid.is_multiple_of(stride) {
                unreachable!("non-representatives retire at their write");
            }
            if t % 2 == 0 {
                env.read(self.levels[l - 1] + pid / stride);
                Status::Active
            } else {
                let merged = env.delivered()[0]
                    .1
                    .iter()
                    .fold(self.op.identity(), |a, &b| self.op.apply(a, b));
                st.value = merged;
                if width == 1 {
                    env.write(self.out, st.value);
                    return Status::Done;
                }
                let next_stride = stride * self.k;
                env.write(self.levels[l] + pid / next_stride, st.value);
                if pid.is_multiple_of(next_stride) {
                    Status::Active
                } else {
                    Status::Done
                }
            }
        }
    }

    let depth = ceil_log(p, k) as usize;
    let mut layout = Layout::new(cells);
    let mut levels = Vec::with_capacity(depth.max(1));
    let mut w = p;
    for _ in 0..depth.max(1) {
        w = w.div_ceil(k);
        levels.push(layout.alloc(w.max(1)));
    }
    let out = layout.alloc(1);
    let prog = Prog {
        cells,
        p,
        block,
        op,
        k,
        depth,
        partials: levels[0],
        levels,
        out,
    };
    let run = machine.run(&prog, input)?;
    let value = run.memory.get(out).last().copied().unwrap_or(op.identity());
    Ok(GsmOutcome { value, run })
}

/// Rounds taken by [`gsm_reduce_in_rounds`]: `2 + 2·⌈log_β p⌉`-ish.
pub fn gsm_reduce_rounds_count(machine: &GsmMachine, n: usize, p: usize) -> usize {
    let cells = machine.input_cells(n).max(1);
    let k = (machine.beta() as usize).max(2).min(p.max(2));
    let depth = ceil_log(p.min(cells), k) as usize;
    if depth == 0 {
        2
    } else {
        2 + 2 * depth
    }
}

#[cfg(test)]
mod rounds_tests {
    use super::*;
    use crate::workloads::random_bits;
    use parbounds_models::round_budget_gsm;

    #[test]
    fn gsm_rounds_reduction_is_correct() {
        for n in [32usize, 200, 1024] {
            for (beta, gamma) in [(1u64, 1u64), (4, 1), (4, 4)] {
                let m = GsmMachine::new(1, beta, gamma);
                let cells = m.input_cells(n);
                for p in [1usize, 4, cells.min(16), cells] {
                    let bits = random_bits(n, n as u64 + p as u64);
                    let out = gsm_reduce_in_rounds(&m, &bits, p, ReduceOp::Xor).unwrap();
                    assert_eq!(
                        out.value,
                        bits.iter().sum::<Word>() % 2,
                        "n={n} p={p} β={beta} γ={gamma}"
                    );
                }
            }
        }
    }

    #[test]
    fn gsm_rounds_respect_the_budget() {
        let n = 1 << 12;
        let (alpha, beta, gamma) = (1u64, 4u64, 4u64);
        let m = GsmMachine::new(alpha, beta, gamma);
        let p = 64;
        let bits = random_bits(n, 3);
        let out = gsm_reduce_in_rounds(&m, &bits, p, ReduceOp::Or).unwrap();
        let budget = round_budget_gsm(n as u64, p as u64, alpha, beta, 2);
        assert!(
            out.run.ledger.is_round_respecting(budget),
            "max phase {} > {budget}",
            out.run.ledger.max_phase_cost()
        );
    }

    #[test]
    fn gsm_rounds_count_matches_formula_shape() {
        let m = GsmMachine::new(1, 4, 1);
        let n = 1 << 12;
        for p in [4usize, 64, 1024] {
            let bits = random_bits(n, 9);
            let out = gsm_reduce_in_rounds(&m, &bits, p, ReduceOp::Xor).unwrap();
            assert_eq!(
                out.run.ledger.num_phases(),
                gsm_reduce_rounds_count(&m, n, p),
                "p={p}"
            );
        }
    }

    #[test]
    fn gsm_rounds_sit_above_theorem_7_3() {
        // Ω(log(n/γ)/log(μn/λp)) rounds; the measured counts must dominate.
        // (The formula is inlined — this crate does not depend on
        // parbounds-tables.)
        fn lower(n: f64, gamma: f64, mu: f64, lambda: f64, p: f64) -> f64 {
            let r = (n / gamma).max(2.0);
            r.log2() / ((mu * n / (lambda * p)).max(2.0)).log2()
        }
        let m = GsmMachine::new(1, 2, 1);
        let n = 1 << 14;
        for p in [16usize, 256, 4096] {
            let bits = random_bits(n, 1);
            let out = gsm_reduce_in_rounds(&m, &bits, p, ReduceOp::Or).unwrap();
            let lb = lower(n as f64, 1.0, 2.0, 1.0, p as f64);
            assert!(
                out.run.ledger.num_phases() as f64 >= lb,
                "p={p}: {} < {lb}",
                out.run.ledger.num_phases()
            );
        }
    }
}
