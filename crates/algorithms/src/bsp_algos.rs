//! BSP algorithms: the fan-in-(L/g) reduction tree behind the paper's
//! `O(L·log n / log(L/g))` Parity/OR/broadcast upper bounds (Section 8),
//! prefix sums, broadcast, and two sorters (odd-even transposition as the
//! deterministic baseline, sample sort as the rounds-respecting one).
//!
//! On a BSP every superstep costs at least `L`, so the right tree fan-in is
//! the one that makes the communication term match: `k = max(2, L/g)`
//! receives cost `g·k ≤ L`, giving depth `log p / log(L/g)` supersteps of
//! cost `L` each — the Table 1 (sub-table 3) upper-bound shape.

use parbounds_models::{
    BspMachine, BspProgram, BspRunResult, BspTrace, CostLedger, FaultPlan, Result, Status,
    Superstep, Word,
};

use crate::util::{ceil_log, ReduceOp};

/// Outcome of a BSP scalar algorithm.
#[derive(Debug)]
pub struct BspOutcome {
    /// The computed value (held by component 0 at termination).
    pub value: Word,
    /// Per-superstep cost ledger.
    pub ledger: CostLedger,
    /// Message trace, when run on a machine built
    /// [`BspMachine::with_tracing`].
    pub trace: Option<BspTrace>,
}

impl BspOutcome {
    /// Total BSP time.
    pub fn time(&self) -> u64 {
        self.ledger.total_time()
    }

    /// Supersteps executed.
    pub fn supersteps(&self) -> usize {
        self.ledger.num_phases()
    }
}

/// The fan-in used by the reduction/broadcast trees: `max(2, L/g)`.
pub fn bsp_fanin(machine: &BspMachine) -> usize {
    ((machine.l() / machine.g()) as usize).max(2)
}

struct ReduceProg {
    op: ReduceOp,
    k: usize,
    depth: usize,
}

struct ReduceState {
    value: Word,
}

impl BspProgram for ReduceProg {
    type Proc = ReduceState;

    fn create(&self, _pid: usize, local: &[Word]) -> ReduceState {
        ReduceState {
            value: self.op.fold(local),
        }
    }

    fn superstep(&self, pid: usize, st: &mut ReduceState, ctx: &mut Superstep<'_>) -> Status {
        // Round r (0-based): components aligned to k^r send to their group
        // leader aligned to k^(r+1).
        let r = ctx.step();
        for m in ctx.inbox() {
            st.value = self.op.apply(st.value, m.value);
        }
        ctx.local_ops(ctx.inbox().len() as u64);
        if r >= self.depth {
            return Status::Done;
        }
        let stride = self.k.pow(r as u32);
        if !pid.is_multiple_of(stride) {
            return Status::Done;
        }
        let leader_stride = stride * self.k;
        if !pid.is_multiple_of(leader_stride) {
            ctx.send(pid - pid % leader_stride, 0, st.value);
            return Status::Done;
        }
        Status::Active
    }
}

/// Reduces `input` under `op` on the BSP with a fan-in-`k` tree.
/// The result lands at component 0.
pub fn bsp_reduce(
    machine: &BspMachine,
    input: &[Word],
    k: usize,
    op: ReduceOp,
) -> Result<BspOutcome> {
    assert!(k >= 2, "fan-in must be >= 2");
    let depth = ceil_log(machine.p(), k) as usize;
    let prog = ReduceProg { op, k, depth };
    let res = machine.run(&prog, input)?;
    Ok(BspOutcome {
        value: res.states[0].value,
        ledger: res.ledger,
        trace: res.trace,
    })
}

/// Parity on the BSP: fan-in `max(2, L/g)` — `O(g·n/p + L·log p/log(L/g))`.
/// ```
/// use parbounds_algo::bsp_algos::bsp_parity;
/// use parbounds_models::BspMachine;
///
/// let machine = BspMachine::new(8, 2, 16).unwrap();
/// let out = bsp_parity(&machine, &[1; 100]).unwrap();
/// assert_eq!(out.value, 0); // 100 ones
/// ```
pub fn bsp_parity(machine: &BspMachine, bits: &[Word]) -> Result<BspOutcome> {
    bsp_reduce(machine, bits, bsp_fanin(machine), ReduceOp::Xor)
}

/// OR on the BSP, same structure.
pub fn bsp_or(machine: &BspMachine, bits: &[Word]) -> Result<BspOutcome> {
    bsp_reduce(machine, bits, bsp_fanin(machine), ReduceOp::Or)
}

struct BroadcastProg {
    k: usize,
    depth: usize,
    p: usize,
    payload: Word,
}

impl BspProgram for BroadcastProg {
    type Proc = Word;

    fn create(&self, pid: usize, _local: &[Word]) -> Word {
        if pid == 0 {
            self.payload
        } else {
            Word::MIN // not yet received
        }
    }

    fn superstep(&self, pid: usize, st: &mut Word, ctx: &mut Superstep<'_>) -> Status {
        let r = ctx.step();
        if let Some(m) = ctx.inbox().first() {
            *st = m.value;
        }
        if r >= self.depth {
            return Status::Done;
        }
        // Reverse of the reduction tree: at round r, holders aligned to
        // k^(depth-r) forward to the sub-leaders aligned to k^(depth-r-1);
        // destinations beyond the machine (ragged trees) are skipped.
        let stride = self.k.pow((self.depth - r) as u32);
        let child_stride = self.k.pow((self.depth - r - 1) as u32);
        if pid.is_multiple_of(stride) && *st != Word::MIN {
            for c in 1..self.k {
                let dest = pid + c * child_stride;
                if dest < self.p {
                    ctx.send(dest, 0, *st);
                }
            }
        }
        Status::Active
    }
}

/// Broadcasts `payload` from component 0 to all components with a fan-out
/// `max(2, L/g)` tree: `O(L·log p / log(L/g))` — matching the broadcast
/// lower bound of Adler et al. the paper cites. Returns every component's
/// received value plus the ledger.
pub fn bsp_broadcast(machine: &BspMachine, payload: Word) -> Result<(Vec<Word>, CostLedger)> {
    let k = bsp_fanin(machine);
    let depth = ceil_log(machine.p(), k) as usize;
    let prog = BroadcastProg {
        k,
        depth,
        p: machine.p(),
        payload,
    };
    let res: BspRunResult<Word> = machine.run(&prog, &[])?;
    Ok((res.states, res.ledger))
}

// ---------------------------------------------------------------------------
// Prefix sums.
// ---------------------------------------------------------------------------

struct BspPrefixProg {
    k: usize,
    depth: usize,
    op: ReduceOp,
}

struct BspPrefixState {
    local: Vec<Word>,
    /// Partial sums received from tree children per up-sweep round.
    child_sums: Vec<Vec<(usize, Word)>>,
    subtotal: Word,
    offset: Word,
    prefixes: Vec<Word>,
}

impl BspProgram for BspPrefixProg {
    type Proc = BspPrefixState;

    fn create(&self, _pid: usize, local: &[Word]) -> BspPrefixState {
        BspPrefixState {
            local: local.to_vec(),
            child_sums: vec![Vec::new(); self.depth],
            subtotal: self.op.fold(local),
            offset: self.op.identity(),
            prefixes: Vec::new(),
        }
    }

    fn superstep(&self, pid: usize, st: &mut BspPrefixState, ctx: &mut Superstep<'_>) -> Status {
        let step = ctx.step();
        // Up-sweep rounds 0..depth: senders aligned to k^r send their
        // subtotal to the k^(r+1)-aligned leader; leaders accumulate in
        // child order at the matching down-sweep round.
        if step < self.depth {
            let r = step;
            if r > 0 {
                for m in ctx.inbox() {
                    st.child_sums[r - 1].push((m.src, m.value));
                }
            }
            let stride = self.k.pow(r as u32);
            if pid.is_multiple_of(stride) {
                // Fold in the children received this round before passing up.
                if r > 0 {
                    let mut kids = std::mem::take(&mut st.child_sums[r - 1]);
                    kids.sort_unstable();
                    for &(_, v) in &kids {
                        st.subtotal = self.op.apply(st.subtotal, v);
                    }
                    st.child_sums[r - 1] = kids;
                }
                let leader_stride = stride * self.k;
                if !pid.is_multiple_of(leader_stride) {
                    ctx.send(pid - pid % leader_stride, 0, st.subtotal);
                }
            }
            return Status::Active;
        }
        // Down-sweep rounds: leaders distribute exclusive offsets back to
        // the children they heard from, level by level (reverse order).
        let d = step - self.depth;
        if d < self.depth {
            let r = self.depth - 1 - d; // matching up-sweep level
            if d == 0 {
                // The last up-sweep round's child messages arrive here.
                let mut kids: Vec<(usize, Word)> = ctx
                    .inbox()
                    .iter()
                    .filter(|m| m.tag == 0)
                    .map(|m| (m.src, m.value))
                    .collect();
                kids.sort_unstable();
                st.child_sums[self.depth - 1] = kids;
            }
            if let Some(m) = ctx.inbox().iter().find(|m| m.tag == 1) {
                st.offset = m.value;
            }
            let stride = self.k.pow(r as u32 + 1);
            if pid.is_multiple_of(stride) {
                // This node led level r. Its elements come first (its own
                // level-r subtree), then each child subtree in id order:
                // child j's offset = own offset + own level-r subtree total
                // + totals of earlier children.
                let own_level_r: Word = st.local.iter().sum::<Word>()
                    + st.child_sums[..r]
                        .iter()
                        .flat_map(|kids| kids.iter().map(|&(_, v)| v))
                        .sum::<Word>();
                let mut running = st.offset + own_level_r;
                for &(kid, kv) in &st.child_sums[r] {
                    ctx.send(kid, 1, running);
                    running += kv;
                }
            }
            return Status::Active;
        }
        // Final: compute local inclusive prefixes.
        if let Some(m) = ctx.inbox().iter().find(|m| m.tag == 1) {
            st.offset = m.value;
        }
        let mut acc = st.offset;
        st.prefixes = st
            .local
            .iter()
            .map(|&v| {
                acc += v;
                acc
            })
            .collect();
        Status::Done
    }
}

/// Inclusive prefix **sums** on the BSP with a fan-in-`k` double sweep:
/// `2·⌈log_k p⌉ + 1` supersteps, each routing an O(k)-relation — the BSP
/// twin of [`crate::prefix::prefix_in_rounds`] (Sum only; the down-sweep
/// subtracts child totals, which needs an invertible operator).
pub fn bsp_prefix_sums(machine: &BspMachine, input: &[Word], k: usize) -> Result<BspSortOutcome> {
    assert!(k >= 2);
    let depth = ceil_log(machine.p(), k) as usize;
    let prog = BspPrefixProg {
        k,
        depth,
        op: ReduceOp::Sum,
    };
    let res = machine.run(&prog, input)?;
    let blocks = res.states.into_iter().map(|s| s.prefixes).collect();
    Ok(BspSortOutcome {
        blocks,
        ledger: res.ledger,
    })
}

// ---------------------------------------------------------------------------
// Sorting.
// ---------------------------------------------------------------------------

/// Outcome of a BSP sort: the globally sorted data, block per component.
#[derive(Debug)]
pub struct BspSortOutcome {
    /// `blocks[i]` = sorted block held by component `i`; concatenation is
    /// the globally sorted sequence.
    pub blocks: Vec<Vec<Word>>,
    /// Per-superstep ledger.
    pub ledger: CostLedger,
}

impl BspSortOutcome {
    /// The full sorted sequence.
    pub fn concat(&self) -> Vec<Word> {
        self.blocks.concat()
    }

    /// Checks the result is a sorted permutation of `input`.
    pub fn verify(&self, input: &[Word]) -> bool {
        let got = self.concat();
        if got.windows(2).any(|w| w[0] > w[1]) {
            return false;
        }
        let mut expect = input.to_vec();
        expect.sort_unstable();
        got == expect
    }
}

struct OddEvenProg {
    p: usize,
    /// Equal block size all components pad to (the p-round correctness of
    /// block odd-even transposition requires equal blocks); the padding
    /// sentinel `Word::MAX` sorts to the tail and is stripped afterwards.
    pad_to: usize,
}

struct OddEvenState {
    data: Vec<Word>,
    /// Data sent to the neighbour this round, awaiting merge.
    kept_low: bool,
}

impl BspProgram for OddEvenProg {
    type Proc = OddEvenState;

    fn create(&self, _pid: usize, local: &[Word]) -> OddEvenState {
        let mut data = local.to_vec();
        data.resize(self.pad_to, Word::MAX);
        data.sort_unstable();
        OddEvenState {
            data,
            kept_low: true,
        }
    }

    fn superstep(&self, pid: usize, st: &mut OddEvenState, ctx: &mut Superstep<'_>) -> Status {
        // Merge whatever arrived, keep our half.
        if !ctx.inbox().is_empty() {
            let mut merged: Vec<Word> = st
                .data
                .iter()
                .copied()
                .chain(ctx.inbox().iter().map(|m| m.value))
                .collect();
            merged.sort_unstable();
            let own = st.data.len();
            st.data = if st.kept_low {
                merged[..own].to_vec()
            } else {
                merged[merged.len() - own..].to_vec()
            };
            let c = merged.len() as u64;
            ctx.local_ops(c * (64 - c.leading_zeros()) as u64);
        }
        let round = ctx.step();
        if round >= self.p {
            return Status::Done;
        }
        // Odd-even pairing: at even rounds pair (0,1)(2,3)…; odd rounds
        // pair (1,2)(3,4)….
        let partner = if (pid + round).is_multiple_of(2) {
            pid + 1
        } else {
            pid.wrapping_sub(1)
        };
        if partner < self.p {
            st.kept_low = partner > pid;
            for &v in &st.data {
                ctx.send(partner, 0, v);
            }
        }
        Status::Active
    }
}

/// Deterministic odd-even transposition sort: `p` supersteps of cost
/// `max(O(n/p·log(n/p)), g·n/p, L)` — the simple baseline.
pub fn bsp_sort_odd_even(machine: &BspMachine, input: &[Word]) -> Result<BspSortOutcome> {
    assert!(
        input.iter().all(|&v| v < Word::MAX),
        "Word::MAX is reserved as the padding sentinel"
    );
    let prog = OddEvenProg {
        p: machine.p(),
        pad_to: input.len().div_ceil(machine.p()),
    };
    let res = machine.run(&prog, input)?;
    let blocks = res
        .states
        .into_iter()
        .map(|s| s.data.into_iter().filter(|&v| v < Word::MAX).collect())
        .collect();
    Ok(BspSortOutcome {
        blocks,
        ledger: res.ledger,
    })
}

struct SampleSortProg {
    p: usize,
    oversample: usize,
}

struct SampleState {
    data: Vec<Word>,
    splitters: Vec<Word>,
    received: Vec<Word>,
}

impl BspProgram for SampleSortProg {
    type Proc = SampleState;

    fn create(&self, _pid: usize, local: &[Word]) -> SampleState {
        let mut data = local.to_vec();
        data.sort_unstable();
        SampleState {
            data,
            splitters: Vec::new(),
            received: Vec::new(),
        }
    }

    fn superstep(&self, pid: usize, st: &mut SampleState, ctx: &mut Superstep<'_>) -> Status {
        match ctx.step() {
            // Send an evenly spaced local sample to component 0.
            0 => {
                let s = self.oversample;
                for j in 0..s {
                    if st.data.is_empty() {
                        break;
                    }
                    let idx = (j * st.data.len()) / s;
                    ctx.send(0, 0, st.data[idx]);
                }
                Status::Active
            }
            // Component 0 picks p-1 splitters and sends them to everyone.
            1 => {
                if pid == 0 {
                    let mut sample: Vec<Word> = ctx.inbox().iter().map(|m| m.value).collect();
                    sample.sort_unstable();
                    let c = sample.len() as u64;
                    ctx.local_ops(c * (64 - c.leading_zeros().min(63)) as u64);
                    if !sample.is_empty() {
                        for d in 0..self.p {
                            for j in 1..self.p {
                                let idx = (j * sample.len()) / self.p;
                                ctx.send(d, j as Word, sample[idx.min(sample.len() - 1)]);
                            }
                        }
                    }
                }
                Status::Active
            }
            // Partition local data by splitters; route to buckets.
            2 => {
                st.splitters = ctx.inbox().iter().map(|m| m.value).collect();
                for &v in &st.data {
                    let dest = st.splitters.partition_point(|&s| s <= v);
                    ctx.send(dest, 0, v);
                }
                Status::Active
            }
            // Sort the received bucket.
            _ => {
                st.received = ctx.inbox().iter().map(|m| m.value).collect();
                st.received.sort_unstable();
                let c = st.received.len().max(1) as u64;
                ctx.local_ops(c * (64 - c.leading_zeros()) as u64);
                Status::Done
            }
        }
    }
}

/// Randomized-flavoured sample sort: O(1) supersteps; with `p² ≲ n` and a
/// reasonable oversampling factor every superstep routes an `O(n/p)`-ish
/// relation, so the computation runs in `O(1)` *rounds* (Section 2.3).
pub fn bsp_sort_sample(
    machine: &BspMachine,
    input: &[Word],
    oversample: usize,
) -> Result<BspSortOutcome> {
    assert!(oversample >= 1);
    let prog = SampleSortProg {
        p: machine.p(),
        oversample,
    };
    let res = machine.run(&prog, input)?;
    let blocks = res.states.into_iter().map(|s| s.received).collect();
    Ok(BspSortOutcome {
        blocks,
        ledger: res.ledger,
    })
}

/// Closed-form supersteps of [`bsp_reduce`]: `⌈log_k p⌉ + 1`.
pub fn bsp_reduce_supersteps(p: usize, k: usize) -> usize {
    ceil_log(p, k) as usize + 1
}

/// Declared cost envelope of [`bsp_parity`] at the default fan-in
/// `max(2, L/g)`: `O(g·n/p + L·lg p / lg(L/g))` BSP time (Section 8,
/// sub-table 3).
pub fn cost_contract() -> parbounds_models::CostContract {
    parbounds_models::CostContract::new("bsp-parity", "BSP", "O(g·n/p + L·lg p / lg(L/g))", |p| {
        p.g * p.n / p.p + p.l * (1.0 + p.p.max(2.0).log2() / (p.l / p.g).max(2.0).log2())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{random_bits, uniform_values};

    fn machine(p: usize, g: u64, l: u64) -> BspMachine {
        BspMachine::new(p, g, l).unwrap()
    }

    #[test]
    fn reduce_sums_correctly() {
        let input: Vec<Word> = (1..=100).collect();
        for p in [1usize, 3, 8, 16] {
            let m = machine(p, 2, 8);
            let out = bsp_reduce(&m, &input, 4, ReduceOp::Sum).unwrap();
            assert_eq!(out.value, 5050, "p={p}");
        }
    }

    #[test]
    fn parity_and_or_on_bsp() {
        let bits = random_bits(257, 3);
        let expected_parity = bits.iter().sum::<Word>() % 2;
        let m = machine(8, 2, 16);
        assert_eq!(bsp_parity(&m, &bits).unwrap().value, expected_parity);
        assert_eq!(bsp_or(&m, &bits).unwrap().value, 1);
        assert_eq!(bsp_or(&m, &vec![0; 64]).unwrap().value, 0);
    }

    #[test]
    fn reduce_superstep_count_matches_formula() {
        for (p, k) in [(16usize, 4usize), (16, 2), (27, 3), (1, 2)] {
            let m = machine(p, 1, 4);
            let out = bsp_reduce(&m, &vec![1; 64.max(p)], k, ReduceOp::Sum).unwrap();
            assert_eq!(out.supersteps(), bsp_reduce_supersteps(p, k), "p={p} k={k}");
        }
    }

    #[test]
    fn fanin_l_over_g_keeps_superstep_cost_at_l_dominated() {
        // k = L/g: communication g·(k-1) < L, so supersteps cost L except
        // the first (local fold of n/p words can exceed L).
        let p = 64;
        let g = 2;
        let l = 16;
        let m = machine(p, g, l);
        let bits = random_bits(p, 7); // n/p = 1: w small
        let out = bsp_parity(&m, &bits).unwrap();
        assert_eq!(bsp_fanin(&m), 8);
        assert!(out.ledger.phases().iter().all(|ph| ph.cost == l));
    }

    #[test]
    fn broadcast_reaches_everyone() {
        for p in [1usize, 2, 7, 16, 40] {
            let m = machine(p, 2, 8);
            let (values, ledger) = bsp_broadcast(&m, 1234).unwrap();
            assert_eq!(values, vec![1234; p], "p={p}");
            assert!(ledger.num_phases() <= ceil_log(p, 4) as usize + 2);
        }
    }

    #[test]
    fn bsp_prefix_sums_equal_sequential_scan() {
        for n in [1usize, 5, 64, 300] {
            for p in [1usize, 3, 8, 16] {
                for k in [2usize, 4] {
                    let m = machine(p, 2, 8);
                    let input: Vec<Word> = (0..n as Word).map(|i| (i * 7 + 1) % 13).collect();
                    let out = bsp_prefix_sums(&m, &input, k).unwrap();
                    let mut acc = 0;
                    let expect: Vec<Word> = input
                        .iter()
                        .map(|&v| {
                            acc += v;
                            acc
                        })
                        .collect();
                    assert_eq!(out.concat(), expect, "n={n} p={p} k={k}");
                }
            }
        }
    }

    #[test]
    fn bsp_prefix_superstep_count() {
        let m = machine(16, 2, 8);
        let input: Vec<Word> = (0..160).collect();
        let out = bsp_prefix_sums(&m, &input, 4).unwrap();
        // 2·ceil(log_4 16) + 1 = 5 supersteps.
        assert_eq!(out.ledger.num_phases(), 5);
    }

    #[test]
    fn odd_even_sorts() {
        let input = uniform_values(80, 5);
        for p in [1usize, 4, 8] {
            let m = machine(p, 2, 8);
            let out = bsp_sort_odd_even(&m, &input).unwrap();
            assert!(out.verify(&input), "p={p}");
        }
    }

    #[test]
    fn sample_sort_sorts() {
        let input = uniform_values(512, 11);
        for p in [2usize, 4, 8] {
            let m = machine(p, 2, 8);
            let out = bsp_sort_sample(&m, &input, 8).unwrap();
            assert!(out.verify(&input), "p={p}");
        }
    }

    #[test]
    fn sample_sort_uses_constant_supersteps() {
        let m = machine(8, 2, 8);
        let input = uniform_values(1024, 2);
        let out = bsp_sort_sample(&m, &input, 8).unwrap();
        assert!(out.verify(&input));
        assert_eq!(out.ledger.num_phases(), 4);
    }

    #[test]
    fn bsp_lac_places_every_item() {
        let input = crate::workloads::sparse_items(512, 64, 9);
        for p in [2usize, 4, 16] {
            let m = machine(p, 2, 8);
            let out = bsp_lac_dart(&m, &input, 64, 5).unwrap();
            assert!(out.verify(&input), "p={p}");
            assert!(out.out_size <= 16 * 64 + 32);
        }
    }

    #[test]
    fn bsp_lac_handles_empty_and_full() {
        let m = machine(4, 2, 8);
        let empty = vec![0; 64];
        let out = bsp_lac_dart(&m, &empty, 4, 1).unwrap();
        assert!(out.verify(&empty));
        assert!(out.placed.is_empty());

        let full = vec![1; 32];
        let out = bsp_lac_dart(&m, &full, 32, 2).unwrap();
        assert!(out.verify(&full));
    }

    #[test]
    fn bsp_lac_superstep_count_is_moderate() {
        let input = crate::workloads::sparse_items(2048, 256, 3);
        let m = machine(8, 2, 16);
        let out = bsp_lac_dart(&m, &input, 256, 7).unwrap();
        assert!(out.verify(&input));
        // 2 supersteps per dart round plus the terminate round.
        assert!(
            out.ledger.num_phases() <= 2 * 24 + 4,
            "{}",
            out.ledger.num_phases()
        );
    }

    #[test]
    fn bsp_lac_ragged_partition_origins_are_correct() {
        // n not divisible by p exercises the ceil/floor offset logic.
        let mut input = vec![0 as Word; 13];
        for i in [0usize, 5, 6, 11, 12] {
            input[i] = 1;
        }
        let m = machine(4, 1, 2);
        let out = bsp_lac_dart(&m, &input, 5, 11).unwrap();
        assert!(out.verify(&input), "{:?}", out.placed);
    }

    #[test]
    fn odd_even_handles_duplicates_and_tiny_inputs() {
        let m = machine(4, 1, 2);
        let input = vec![3, 3, 3, 1, 1];
        let out = bsp_sort_odd_even(&m, &input).unwrap();
        assert!(out.verify(&input));
    }
}

// ---------------------------------------------------------------------------
// LAC on the BSP by message dart-throwing.
// ---------------------------------------------------------------------------

/// Outcome of the BSP compaction.
#[derive(Debug)]
pub struct BspLacOutcome {
    /// `(slot, origin)` pairs: item from global input cell `origin` landed
    /// in destination slot `slot`.
    pub placed: Vec<(usize, usize)>,
    /// Destination array size.
    pub out_size: usize,
    /// Per-superstep ledger.
    pub ledger: CostLedger,
}

impl BspLacOutcome {
    /// Checks every input item landed exactly once in a distinct slot.
    pub fn verify(&self, input: &[Word]) -> bool {
        let mut seen_slot = std::collections::HashSet::new();
        let mut seen_origin = std::collections::HashSet::new();
        for &(slot, origin) in &self.placed {
            if slot >= self.out_size
                || origin >= input.len()
                || input[origin] == 0
                || !seen_slot.insert(slot)
                || !seen_origin.insert(origin)
            {
                return false;
            }
        }
        input
            .iter()
            .enumerate()
            .all(|(i, &v)| (v == 0) != seen_origin.contains(&i))
    }
}

fn lac_segments(h: usize) -> Vec<usize> {
    let mut sizes = Vec::new();
    let mut s = (4 * h).max(8);
    while s > 8 {
        sizes.push(s);
        s /= 2;
    }
    sizes.extend(std::iter::repeat_n(8, h + 2));
    sizes
}

struct BspDartProg {
    p: usize,
    n: usize,
    seed: u64,
    /// Liveness-aggregation tree fan-in (`max(2, L/g)`).
    k: usize,
    /// (global base, size) of each dart segment.
    segs: Vec<(usize, usize)>,
}

struct BspDartState {
    /// Live items: global origin indices.
    live: Vec<usize>,
    /// Slots this component owns that are claimed: (slot, origin).
    owned: Vec<(usize, usize)>,
    /// Last reported live total of each aggregation-tree child, plus a
    /// floor of 1 until the child's first report arrives (prevents a
    /// premature all-quiet verdict while reports are still in flight).
    child_live: std::collections::HashMap<usize, u64>,
}

impl BspDartProg {
    fn slot(&self, origin: usize, round: usize) -> usize {
        // Fault-free the schedule is never exhausted (some claim wins every
        // round); injected message faults can push rounds past it, in which
        // case late darts reuse the final segment (bounded by the machine's
        // superstep limit) rather than panicking.
        let round = round.min(self.segs.len() - 1);
        let (base, size) = self.segs[round];
        let mut z = self
            .seed
            .wrapping_add((origin as u64).wrapping_mul(0x9e3779b97f4a7c15))
            .wrapping_add((round as u64).wrapping_mul(0xd1b54a32d192ed03));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z ^= z >> 31;
        base + (z % size as u64) as usize
    }

    /// Global input offset of component `pid` under the BSP's uniform
    /// ceil/floor partition (the first `n mod p` components get ⌈n/p⌉).
    fn offset(&self, pid: usize) -> usize {
        let base = self.n / self.p;
        let extra = self.n % self.p;
        pid * base + pid.min(extra)
    }

    fn children(&self, pid: usize) -> impl Iterator<Item = usize> + use<'_> {
        (1..=self.k)
            .map(move |c| pid * self.k + c)
            .filter(|&c| c < self.p)
    }

    fn parent(&self, pid: usize) -> Option<usize> {
        (pid > 0).then(|| (pid - 1) / self.k)
    }
}

/// Message tags of the protocol. Claims carry their slot in the tag
/// (`slot + TAG_CLAIM_BASE`); control traffic uses the two low tags.
const TAG_REPORT: Word = 0; // pipelined subtree live-count (value) / TERMINATE (value = -1)
const TAG_ACCEPT: Word = 1;
const TAG_CLAIM_BASE: Word = 2;

impl BspProgram for BspDartProg {
    type Proc = BspDartState;

    fn create(&self, pid: usize, local: &[Word]) -> BspDartState {
        let off = self.offset(pid);
        let live = local
            .iter()
            .enumerate()
            .filter(|&(_, &v)| v != 0)
            .map(|(j, _)| off + j)
            .collect();
        // Until a child reports, assume it may be live.
        let child_live = self.children(pid).map(|c| (c, 1u64)).collect();
        BspDartState {
            live,
            owned: Vec::new(),
            child_live,
        }
    }

    fn superstep(&self, pid: usize, st: &mut BspDartState, ctx: &mut Superstep<'_>) -> Status {
        // TERMINATE wave: forward to children and stop. It is only emitted
        // once the (delayed, monotone-decreasing) global live count hit 0,
        // so no claim can still be in flight toward us.
        if ctx
            .inbox()
            .iter()
            .any(|m| m.tag == TAG_REPORT && m.value < 0)
        {
            for c in self.children(pid) {
                ctx.send(c, TAG_REPORT, -1);
            }
            return Status::Done;
        }
        let step = ctx.step();
        if step % 2 == 0 {
            // Claim superstep: retire ACCEPTed items, throw fresh darts.
            let accepted: std::collections::HashSet<usize> = ctx
                .inbox()
                .iter()
                .filter(|m| m.tag == TAG_ACCEPT)
                .map(|m| m.value as usize)
                .collect();
            st.live.retain(|o| !accepted.contains(o));
            for m in ctx.inbox() {
                if m.tag == TAG_REPORT {
                    st.child_live.insert(m.src, m.value as u64);
                }
            }
            let round = step / 2;
            for &origin in &st.live {
                let slot = self.slot(origin, round);
                ctx.send(slot % self.p, slot as Word + TAG_CLAIM_BASE, origin as Word);
            }
            Status::Active
        } else {
            // Arbitrate superstep: first claim per slot wins (deterministic
            // inbox order); also advance the liveness-aggregation pipeline.
            let mut taken: std::collections::HashSet<Word> = st
                .owned
                .iter()
                .map(|&(s, _)| s as Word + TAG_CLAIM_BASE)
                .collect();
            let mut accepts = Vec::new();
            for m in ctx.inbox() {
                if m.tag == TAG_REPORT {
                    st.child_live.insert(m.src, m.value as u64);
                } else if m.tag >= TAG_CLAIM_BASE && taken.insert(m.tag) {
                    st.owned
                        .push(((m.tag - TAG_CLAIM_BASE) as usize, m.value as usize));
                    accepts.push((m.src, m.value));
                }
            }
            ctx.local_ops(ctx.inbox().len() as u64);
            for (src, origin) in accepts {
                ctx.send(src, TAG_ACCEPT, origin);
            }
            let subtree = st.live.len() as u64 + st.child_live.values().sum::<u64>();
            match self.parent(pid) {
                Some(parent) => ctx.send(parent, TAG_REPORT, subtree as Word),
                None => {
                    if subtree == 0 {
                        // Root saw the whole (delayed) machine quiet: start
                        // the terminate wave and stop.
                        for c in self.children(pid) {
                            ctx.send(c, TAG_REPORT, -1);
                        }
                        return Status::Done;
                    }
                }
            }
            Status::Active
        }
    }
}

/// LAC on the BSP: live items claim random slots of geometrically fresh
/// segments by point-to-point messages; slot owners arbitrate (first claim
/// in deterministic inbox order wins) and ACK winners. Each round is 2
/// supersteps of cost `max(w, g·h, L)` with `h` the realized claim traffic
/// — the message-passing twin of [`crate::lac::lac_dart`].
pub fn bsp_lac_dart(
    machine: &BspMachine,
    input: &[Word],
    h: usize,
    seed: u64,
) -> Result<BspLacOutcome> {
    assert!(h >= 1);
    let count = input.iter().filter(|&&v| v != 0).count();
    assert!(count <= h, "input has {count} items but h = {h}");
    let sizes = lac_segments(h);
    let out_size: usize = sizes.iter().sum();
    let mut segs = Vec::with_capacity(sizes.len());
    let mut at = 0;
    for s in sizes {
        segs.push((at, s));
        at += s;
    }
    let p = machine.p();
    let k = bsp_fanin(machine);
    let prog = BspDartProg {
        p,
        n: input.len(),
        seed,
        k,
        segs,
    };
    let res = machine.run(&prog, input)?;
    let mut placed = Vec::new();
    for st in &res.states {
        placed.extend(st.owned.iter().copied());
    }
    placed.sort_unstable();
    Ok(BspLacOutcome {
        placed,
        out_size,
        ledger: res.ledger,
    })
}

// ---------------------------------------------------------------------------
// Padded sort on the BSP.
// ---------------------------------------------------------------------------

/// Outcome of the BSP padded sort: per-component padded regions whose
/// concatenation is globally sorted with NULL (0) padding; values stored
/// as `v + 1`.
#[derive(Debug)]
pub struct BspPaddedOutcome {
    /// `regions[i]` = component `i`'s padded region.
    pub regions: Vec<Vec<Word>>,
    /// Whether some component overflowed its region.
    pub overflow: bool,
    /// Per-superstep ledger.
    pub ledger: CostLedger,
}

impl BspPaddedOutcome {
    /// The padded output array.
    pub fn output(&self) -> Vec<Word> {
        self.regions.concat()
    }

    /// The sorted values (NULLs stripped).
    pub fn values(&self) -> Vec<Word> {
        self.output()
            .into_iter()
            .filter(|&v| v != 0)
            .map(|v| v - 1)
            .collect()
    }

    /// Padded-sort contract: sorted, same multiset, no overflow.
    pub fn verify(&self, input: &[Word]) -> bool {
        if self.overflow {
            return false;
        }
        let got = self.values();
        if got.windows(2).any(|w| w[0] > w[1]) {
            return false;
        }
        let mut expect = input.to_vec();
        expect.sort_unstable();
        let mut sorted_got = got.clone();
        sorted_got.sort_unstable();
        sorted_got == expect
    }
}

/// Padded sort of uniform `[0,1)` fixed-point values on the BSP: each value's
/// destination component is `⌊v·p/FIXED_ONE⌋` (uniformity makes this an
/// `O(n/p)`-relation w.h.p.), one routing superstep, one local sort into a
/// region of `⌈n/p⌉ + pad` cells. Three supersteps total — the BSP excels
/// here precisely because message delivery *is* compaction (the Section 2.2
/// remark on why the BSP can beat the QSM at array-filling).
pub fn bsp_padded_sort(machine: &BspMachine, values: &[Word]) -> Result<BspPaddedOutcome> {
    use crate::workloads::FIXED_ONE;
    assert!(!values.is_empty());
    assert!(
        values.iter().all(|&v| (0..FIXED_ONE).contains(&v)),
        "values must be in [0,1)"
    );
    let n = values.len();
    let p = machine.p();
    let expect = n.div_ceil(p);
    let pad = 4 * ((expect as f64 * (n.max(2) as f64).ln()).sqrt().ceil() as usize) + 8;
    let cap = expect + pad;

    struct Prog {
        p: usize,
        cap: usize,
    }
    struct St {
        local: Vec<Word>,
        region: Vec<Word>,
        overflow: bool,
    }
    impl BspProgram for Prog {
        type Proc = St;
        fn create(&self, _pid: usize, local: &[Word]) -> St {
            St {
                local: local.to_vec(),
                region: Vec::new(),
                overflow: false,
            }
        }
        fn superstep(&self, _pid: usize, st: &mut St, ctx: &mut Superstep<'_>) -> Status {
            use crate::workloads::FIXED_ONE;
            match ctx.step() {
                // Route every value to its range owner.
                0 => {
                    for &v in &st.local {
                        let dest = ((v as i128 * self.p as i128) / FIXED_ONE as i128) as usize;
                        ctx.send(dest.min(self.p - 1), 0, v);
                    }
                    Status::Active
                }
                // Sort the received range locally into the padded region.
                _ => {
                    let mut got: Vec<Word> = ctx.inbox().iter().map(|m| m.value).collect();
                    got.sort_unstable();
                    let c = got.len().max(1) as u64;
                    ctx.local_ops(c * (64 - c.leading_zeros()) as u64);
                    st.overflow = got.len() > self.cap;
                    st.region = got.iter().take(self.cap).map(|&v| v + 1).collect();
                    st.region.resize(self.cap, 0);
                    Status::Done
                }
            }
        }
    }

    let res = machine.run(&Prog { p, cap }, values)?;
    let overflow = res.states.iter().any(|s| s.overflow);
    let regions = res.states.into_iter().map(|s| s.region).collect();
    Ok(BspPaddedOutcome {
        regions,
        overflow,
        ledger: res.ledger,
    })
}

// ---------------------------------------------------------------------------
// Resilient (fault-tolerant) variants: ack-and-retransmit protocols wrapped
// in Las Vegas verify-and-retry loops.
// ---------------------------------------------------------------------------

/// A verified result produced under fault injection, with the measured
/// price of getting it.
#[derive(Debug)]
pub struct ResilientOutcome<T> {
    /// The verified result of the successful attempt.
    pub result: T,
    /// Attempts consumed (1 = first try succeeded).
    pub attempts: usize,
    /// Summed BSP time of every attempt that ran to completion.
    pub total_time: u64,
    /// BSP time of the fault-free non-resilient execution of the same
    /// instance.
    pub baseline_time: u64,
}

impl<T> ResilientOutcome<T> {
    /// Measured cost of fault tolerance: total attempted time over the
    /// fault-free non-resilient baseline.
    pub fn inflation(&self) -> f64 {
        self.total_time as f64 / self.baseline_time.max(1) as f64
    }
}

const AR_DATA: Word = 0;
const AR_ACK: Word = 1;
/// Retransmissions a component attempts before giving up on its parent.
const AR_MAX_SENDS: usize = 40;

/// Reduction tree with per-hop acknowledgements: children retransmit their
/// subtree value every superstep until the parent ACKs (parents re-ACK
/// duplicates, and fold each child exactly once), so dropped or duplicated
/// messages only delay the result. Give-up caps on both sides (a child
/// stops after [`AR_MAX_SENDS`] unACKed sends; a parent folds best-effort
/// after `max_wait` supersteps) guarantee termination; a wrong best-effort
/// fold is caught by the verifying wrapper.
struct AckReduceProg {
    op: ReduceOp,
    k: usize,
    p: usize,
    max_wait: usize,
}

struct AckReduceState {
    value: Word,
    child_vals: std::collections::HashMap<usize, Word>,
    n_children: usize,
    subtree: Option<Word>,
    acked: bool,
    sends: usize,
}

impl AckReduceProg {
    fn children(&self, pid: usize) -> impl Iterator<Item = usize> + use<'_> {
        (1..=self.k)
            .map(move |c| pid * self.k + c)
            .filter(|&c| c < self.p)
    }
}

impl BspProgram for AckReduceProg {
    type Proc = AckReduceState;

    fn create(&self, pid: usize, local: &[Word]) -> AckReduceState {
        AckReduceState {
            value: self.op.fold(local),
            child_vals: std::collections::HashMap::new(),
            n_children: self.children(pid).count(),
            subtree: None,
            acked: false,
            sends: 0,
        }
    }

    fn superstep(&self, pid: usize, st: &mut AckReduceState, ctx: &mut Superstep<'_>) -> Status {
        let mut ack_to: Vec<usize> = Vec::new();
        for m in ctx.inbox() {
            match m.tag {
                // Fold each child once (received-set idempotence under
                // duplication); ACK every arrival, including retransmits
                // whose earlier ACK was dropped.
                AR_DATA => {
                    st.child_vals.entry(m.src).or_insert(m.value);
                    ack_to.push(m.src);
                }
                AR_ACK => st.acked = true,
                _ => {}
            }
        }
        ctx.local_ops(ctx.inbox().len() as u64);
        ack_to.sort_unstable();
        ack_to.dedup();
        for src in ack_to {
            ctx.send(src, AR_ACK, 0);
        }

        if st.subtree.is_none()
            && (st.child_vals.len() == st.n_children || ctx.step() >= self.max_wait)
        {
            let mut v = st.value;
            for &cv in st.child_vals.values() {
                v = self.op.apply(v, cv);
            }
            st.subtree = Some(v);
        }
        let Some(subtree) = st.subtree else {
            return Status::Active;
        };
        if pid == 0 {
            return Status::Done;
        }
        if st.acked || st.sends >= AR_MAX_SENDS {
            // ACKed, or give up best-effort; either way the parent's
            // `max_wait` bound keeps the tree moving.
            return Status::Done;
        }
        ctx.send((pid - 1) / self.k, AR_DATA, subtree);
        st.sends += 1;
        Status::Active
    }
}

/// Reduction hardened into a Las Vegas algorithm under fault injection:
/// run the ack-and-retransmit tree on `machine` carrying `plan`, check the
/// result against the directly folded input, and retry with a reseeded
/// plan until it is correct or `max_attempts` runs out (then
/// [`parbounds_models::ModelError::FaultAborted`]). Message drops and
/// duplications only inflate the cost, which
/// [`ResilientOutcome::inflation`] measures against the fault-free
/// non-resilient [`bsp_reduce`].
pub fn bsp_reduce_resilient(
    machine: &BspMachine,
    input: &[Word],
    op: ReduceOp,
    plan: &FaultPlan,
    max_attempts: usize,
) -> Result<ResilientOutcome<BspOutcome>> {
    assert!(max_attempts >= 1, "need at least one attempt");
    let expected = op.fold(input);
    let k = bsp_fanin(machine);
    let baseline = bsp_reduce(&machine.clone().without_faults(), input, k, op)?;
    let baseline_time = baseline.time();
    let depth = ceil_log(machine.p(), k) as usize;
    let prog = AckReduceProg {
        op,
        k,
        p: machine.p(),
        max_wait: 2 * depth + 4 * AR_MAX_SENDS,
    };

    let mut total_time = 0u64;
    for attempt in 0..max_attempts {
        let k64 = attempt as u64;
        let faulted = machine
            .clone()
            .with_faults(plan.clone().with_seed(plan.seed().wrapping_add(k64)));
        match faulted.run(&prog, input) {
            Ok(res) => {
                total_time += res.ledger.total_time();
                let value = res.states[0].subtree.unwrap_or(res.states[0].value);
                if value == expected {
                    return Ok(ResilientOutcome {
                        result: BspOutcome {
                            value,
                            ledger: res.ledger,
                            trace: res.trace,
                        },
                        attempts: attempt + 1,
                        total_time,
                        baseline_time,
                    });
                }
            }
            Err(e) if crate::lac::retryable(&e) => {
                if let Some(b) = plan.cost_budget() {
                    total_time += b;
                }
            }
            Err(e) => return Err(e),
        }
    }
    Err(parbounds_models::ModelError::FaultAborted {
        phase: 0,
        reason: format!("reduction not verified after {max_attempts} attempts under faults"),
    })
}

const RD_ACCEPT: Word = 1;
const RD_CLAIM_BASE: Word = 2;
/// Claims an item re-sends for one dart slot before advancing its round.
const RD_RETRIES: usize = 6;
/// Dart rounds the resilient protocol runs before declaring itself done;
/// with independent per-try claim/ACCEPT loss this is exhausted with
/// negligible probability, and a still-unplaced item just fails the
/// verification and triggers an outer retry.
const RD_ROUNDS: usize = 8;

/// Drop-tolerant BSP dart-throwing: like [`bsp_lac_dart`] but with no
/// liveness-aggregation tree (whose lost reports livelock under message
/// drops). Instead every item re-claims the *same* slot for [`RD_RETRIES`]
/// consecutive rounds (owners re-ACCEPT idempotently, so lost claims and
/// lost ACCEPTs are both recovered) before moving to its next dart, and
/// the whole machine runs for a fixed horizon of `2·RD_RETRIES·RD_ROUNDS`
/// supersteps — termination is structural, not negotiated.
struct ResilientDartProg {
    p: usize,
    n: usize,
    seed: u64,
    segs: Vec<(usize, usize)>,
    horizon: usize,
}

struct ResilientDartState {
    /// (origin, current round, claims left before advancing the round).
    live: Vec<(usize, usize, usize)>,
    /// slot -> origin for slots this component owns.
    owned: std::collections::HashMap<usize, usize>,
}

impl ResilientDartProg {
    fn slot(&self, origin: usize, round: usize) -> usize {
        let round = round.min(self.segs.len() - 1);
        let (base, size) = self.segs[round];
        let mut z = self
            .seed
            .wrapping_add((origin as u64).wrapping_mul(0x9e3779b97f4a7c15))
            .wrapping_add((round as u64).wrapping_mul(0xd1b54a32d192ed03));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z ^= z >> 31;
        base + (z % size as u64) as usize
    }

    fn offset(&self, pid: usize) -> usize {
        let base = self.n / self.p;
        let extra = self.n % self.p;
        pid * base + pid.min(extra)
    }
}

impl BspProgram for ResilientDartProg {
    type Proc = ResilientDartState;

    fn create(&self, pid: usize, local: &[Word]) -> ResilientDartState {
        let off = self.offset(pid);
        let live = local
            .iter()
            .enumerate()
            .filter(|&(_, &v)| v != 0)
            .map(|(j, _)| (off + j, 0usize, RD_RETRIES))
            .collect();
        ResilientDartState {
            live,
            owned: std::collections::HashMap::new(),
        }
    }

    fn superstep(
        &self,
        _pid: usize,
        st: &mut ResilientDartState,
        ctx: &mut Superstep<'_>,
    ) -> Status {
        let step = ctx.step();
        if step % 2 == 0 {
            // Claim superstep: retire ACCEPTed items, (re-)claim for the rest.
            let accepted: std::collections::HashSet<usize> = ctx
                .inbox()
                .iter()
                .filter(|m| m.tag == RD_ACCEPT)
                .map(|m| m.value as usize)
                .collect();
            st.live.retain(|&(o, _, _)| !accepted.contains(&o));
            ctx.local_ops(ctx.inbox().len() as u64);
            if step >= self.horizon {
                return Status::Done;
            }
            for item in st.live.iter_mut() {
                if item.2 == 0 {
                    item.1 += 1;
                    item.2 = RD_RETRIES;
                }
                item.2 -= 1;
                let slot = self.slot(item.0, item.1);
                ctx.send(slot % self.p, slot as Word + RD_CLAIM_BASE, item.0 as Word);
            }
            Status::Active
        } else {
            // Arbitrate superstep: first claim per slot wins; a repeat claim
            // from the same origin (its earlier ACCEPT was dropped) is
            // re-ACCEPTed idempotently.
            let mut accepts = Vec::new();
            for m in ctx.inbox() {
                if m.tag < RD_CLAIM_BASE {
                    continue;
                }
                let slot = (m.tag - RD_CLAIM_BASE) as usize;
                let origin = m.value as usize;
                match st.owned.get(&slot) {
                    None => {
                        st.owned.insert(slot, origin);
                        accepts.push((m.src, m.value));
                    }
                    Some(&owner) if owner == origin => accepts.push((m.src, m.value)),
                    _ => {}
                }
            }
            ctx.local_ops(ctx.inbox().len() as u64);
            for (src, origin) in accepts {
                ctx.send(src, RD_ACCEPT, origin);
            }
            Status::Active
        }
    }
}

/// Dart-throwing LAC hardened into a Las Vegas algorithm under fault
/// injection: run the drop-tolerant `ResilientDartProg` on `machine`
/// carrying `plan`, *verify* the placement, and retry with a reseeded plan
/// and fresh dart seed until a verified-correct compaction is produced or
/// `max_attempts` runs out. This is the protocol behind the acceptance
/// check that LAC terminates (with measured cost inflation) under a 20%
/// message-drop rate.
pub fn bsp_lac_dart_resilient(
    machine: &BspMachine,
    input: &[Word],
    h: usize,
    seed: u64,
    plan: &FaultPlan,
    max_attempts: usize,
) -> Result<ResilientOutcome<BspLacOutcome>> {
    assert!(h >= 1);
    assert!(max_attempts >= 1, "need at least one attempt");
    let count = input.iter().filter(|&&v| v != 0).count();
    assert!(count <= h, "input has {count} items but h = {h}");
    let baseline = bsp_lac_dart(&machine.clone().without_faults(), input, h, seed)?;
    let baseline_time = baseline.ledger.total_time();

    let sizes = lac_segments(h);
    let out_size: usize = sizes.iter().sum();
    let mut segs = Vec::with_capacity(sizes.len());
    let mut at = 0;
    for s in sizes {
        segs.push((at, s));
        at += s;
    }
    let horizon = 2 * RD_RETRIES * RD_ROUNDS;

    let mut total_time = 0u64;
    for attempt in 0..max_attempts {
        let k64 = attempt as u64;
        let prog = ResilientDartProg {
            p: machine.p(),
            n: input.len(),
            seed: seed.wrapping_add(k64.wrapping_mul(0x9e37_79b9)),
            segs: segs.clone(),
            horizon,
        };
        let faulted = machine
            .clone()
            .with_faults(plan.clone().with_seed(plan.seed().wrapping_add(k64)));
        match faulted.run(&prog, input) {
            Ok(res) => {
                total_time += res.ledger.total_time();
                let mut placed = Vec::new();
                for s in &res.states {
                    placed.extend(s.owned.iter().map(|(&slot, &origin)| (slot, origin)));
                }
                placed.sort_unstable();
                let out = BspLacOutcome {
                    placed,
                    out_size,
                    ledger: res.ledger,
                };
                if out.verify(input) {
                    return Ok(ResilientOutcome {
                        result: out,
                        attempts: attempt + 1,
                        total_time,
                        baseline_time,
                    });
                }
            }
            Err(e) if crate::lac::retryable(&e) => {
                if let Some(b) = plan.cost_budget() {
                    total_time += b;
                }
            }
            Err(e) => return Err(e),
        }
    }
    Err(parbounds_models::ModelError::FaultAborted {
        phase: 0,
        reason: format!("BSP LAC not verified after {max_attempts} attempts under faults"),
    })
}

#[cfg(test)]
mod resilient_tests {
    use super::*;
    use crate::workloads::sparse_items;
    use parbounds_models::FaultPlan;

    #[test]
    fn resilient_reduce_matches_plain_reduce_fault_free() {
        let m = BspMachine::new(8, 2, 8).unwrap();
        let input: Vec<Word> = (1..=100).collect();
        let out = bsp_reduce_resilient(&m, &input, ReduceOp::Sum, &FaultPlan::new(1), 3).unwrap();
        assert_eq!(out.result.value, 5050);
        assert_eq!(out.attempts, 1);
        assert!(out.inflation() >= 1.0);
    }

    #[test]
    fn resilient_reduce_survives_heavy_message_faults() {
        let m = BspMachine::new(16, 2, 8).unwrap();
        let input: Vec<Word> = (0..200).map(|i| i % 7).collect();
        let plan = FaultPlan::new(42).with_drop_prob(0.2).with_dup_prob(0.1);
        let out = bsp_reduce_resilient(&m, &input, ReduceOp::Sum, &plan, 8).unwrap();
        assert_eq!(out.result.value, input.iter().sum::<Word>());
        assert!(out.inflation() >= 1.0);
    }

    #[test]
    fn resilient_lac_places_everything_under_20pct_drops() {
        let m = BspMachine::new(8, 2, 8).unwrap();
        let items = sparse_items(128, 24, 3);
        let plan = FaultPlan::new(7).with_drop_prob(0.2);
        let out = bsp_lac_dart_resilient(&m, &items, 24, 11, &plan, 10).unwrap();
        assert!(out.result.verify(&items));
        assert!(out.inflation() >= 1.0);
    }

    #[test]
    fn resilient_lac_fault_free_is_single_attempt() {
        let m = BspMachine::new(4, 2, 8).unwrap();
        let items = sparse_items(64, 10, 5);
        let out = bsp_lac_dart_resilient(&m, &items, 10, 2, &FaultPlan::new(0), 3).unwrap();
        assert_eq!(out.attempts, 1);
        assert!(out.result.verify(&items));
    }
}

#[cfg(test)]
mod padded_tests {
    use super::*;
    use crate::workloads::uniform_values;

    #[test]
    fn bsp_padded_sort_sorts_uniform_values() {
        for n in [16usize, 200, 2048] {
            for p in [1usize, 4, 16] {
                let m = BspMachine::new(p, 2, 8).unwrap();
                let values = uniform_values(n, n as u64 + p as u64);
                let out = bsp_padded_sort(&m, &values).unwrap();
                assert!(out.verify(&values), "n={n} p={p}");
            }
        }
    }

    #[test]
    fn bsp_padded_sort_is_two_supersteps() {
        let m = BspMachine::new(8, 2, 8).unwrap();
        let values = uniform_values(1024, 5);
        let out = bsp_padded_sort(&m, &values).unwrap();
        assert!(out.verify(&values));
        assert_eq!(out.ledger.num_phases(), 2);
    }

    #[test]
    fn bsp_padded_output_size_is_n_plus_little_o() {
        let n = 1 << 14;
        let m = BspMachine::new(64, 2, 8).unwrap();
        let values = uniform_values(n, 7);
        let out = bsp_padded_sort(&m, &values).unwrap();
        assert!(out.verify(&values));
        let size = out.output().len();
        assert!(size < 2 * n, "output {size} not O(n)");
    }
}
