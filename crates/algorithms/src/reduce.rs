//! Fan-in-`k` *read-tree* reduction on the QSM family.
//!
//! The baseline upper-bound construction: one processor per internal tree
//! node; a node reads its ≤ k children in one phase (cost `g·k` at unit
//! contention) and writes the combined value in the next (cost `g`). With
//! fan-in 2 on the s-QSM this is the `Θ(g·log n)` Parity algorithm of
//! Section 8; the fan-in `L/g` analogue on the BSP is in
//! [`crate::bsp_algos`].
//!
//! Exact cost on a QSM/s-QSM: `Σ_levels (g·k_l + g)` where `k_l` is the
//! largest child count at level `l` — i.e. `g(k+1)·⌈log_k n⌉` for a full
//! tree. The write phases never contend, so QSM and s-QSM charge the same.

use parbounds_models::{Addr, PhaseEnv, Program, QsmMachine, Result, Status, Word};

use crate::util::{Layout, ReduceOp, TreeShape};
use crate::Outcome;

/// Tree-reduction program description.
struct TreeReduceProgram {
    op: ReduceOp,
    shape: TreeShape,
    /// Cell base address of each level (level 0 = the input cells).
    level_bases: Vec<Addr>,
    /// `(level, node)` of each processor, level ≥ 1.
    proc_nodes: Vec<(usize, usize)>,
}

/// Per-processor state: none needed — identity is derived from `pid` and
/// values flow through delivered reads.
struct ProcState;

impl TreeReduceProgram {
    fn new(n: usize, k: usize, op: ReduceOp, layout: &mut Layout) -> Self {
        let shape = TreeShape::new(n, k);
        let mut level_bases = vec![0]; // level 0 reads the input directly
        for &w in &shape.widths[1..] {
            level_bases.push(layout.alloc(w));
        }
        let mut proc_nodes = Vec::with_capacity(shape.internal_nodes().max(1));
        for (level, &w) in shape.widths.iter().enumerate().skip(1) {
            for node in 0..w {
                proc_nodes.push((level, node));
            }
        }
        if proc_nodes.is_empty() {
            // Single-leaf tree: one processor copies input to the "root".
            level_bases.push(layout.alloc(1));
            proc_nodes.push((1, 0));
        }
        TreeReduceProgram {
            op,
            shape,
            level_bases,
            proc_nodes,
        }
    }

    fn root_addr(&self) -> Addr {
        *self.level_bases.last().unwrap()
    }
}

impl Program for TreeReduceProgram {
    type Proc = ProcState;

    fn num_procs(&self) -> usize {
        self.proc_nodes.len()
    }

    fn create(&self, _pid: usize) -> ProcState {
        ProcState
    }

    fn phase(&self, pid: usize, _st: &mut ProcState, env: &mut PhaseEnv<'_>) -> Status {
        let (level, node) = self.proc_nodes[pid];
        let read_phase = 2 * (level - 1);
        let write_phase = read_phase + 1;
        let t = env.phase();
        if t < read_phase {
            Status::Active
        } else if t == read_phase {
            let children = if self.shape.depth() == 0 {
                1 // degenerate single-leaf copy
            } else {
                self.shape.children_of(level, node)
            };
            let base = self.level_bases[level - 1];
            for c in 0..children {
                env.read(base + node * self.shape.k + c);
            }
            Status::Active
        } else if t == write_phase {
            let v = env
                .delivered()
                .iter()
                .fold(self.op.identity(), |acc, &(_, x)| self.op.apply(acc, x));
            env.write(self.level_bases[level] + node, v);
            Status::Done
        } else {
            unreachable!("processor survived past its write phase")
        }
    }
}

/// Runs a fan-in-`k` read-tree reduction of `input` under `op` on `machine`.
pub fn tree_reduce(
    machine: &QsmMachine,
    input: &[Word],
    k: usize,
    op: ReduceOp,
) -> Result<Outcome> {
    let mut layout = Layout::new(input.len().max(1));
    let prog = TreeReduceProgram::new(input.len().max(1), k, op, &mut layout);
    let root = prog.root_addr();
    let run = machine.run(&prog, input)?;
    let value = run.memory.get(root);
    Ok(Outcome { value, run })
}

/// Parity of a bit vector via a fan-in-`k` read tree.
pub fn parity_read_tree(machine: &QsmMachine, bits: &[Word], k: usize) -> Result<Outcome> {
    tree_reduce(machine, bits, k, ReduceOp::Xor)
}

/// OR of a bit vector via a fan-in-`k` read tree (compare with the cheaper
/// write-combining tree in [`crate::or_tree`]).
pub fn or_read_tree(machine: &QsmMachine, bits: &[Word], k: usize) -> Result<Outcome> {
    tree_reduce(machine, bits, k, ReduceOp::Or)
}

/// Exact model time of [`tree_reduce`] on `n` inputs with fan-in `k`:
/// `Σ_l (g·k_l + g)`. Exposed so benches/tests can assert measured = model.
pub fn tree_reduce_cost(n: usize, k: usize, g: u64) -> u64 {
    let shape = TreeShape::new(n.max(1), k);
    if shape.depth() == 0 {
        return 2 * g; // one read phase + one write phase
    }
    let mut total = 0;
    for (level, &w) in shape.widths.iter().enumerate().skip(1) {
        let max_children = (0..w)
            .map(|node| shape.children_of(level, node))
            .max()
            .unwrap();
        total += g * max_children as u64 + g;
    }
    total
}

/// Declared cost envelope of the fan-in-2 read tree: `Θ(g·lg n)` s-QSM
/// time — the Section 8 Parity upper bound on the symmetric model.
pub fn cost_contract() -> parbounds_models::CostContract {
    parbounds_models::CostContract::new("parity-read-tree", "s-QSM", "Θ(g·lg n)", |p| {
        p.g * p.lg_n()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use parbounds_models::QsmMachine;

    fn bits(n: usize, seed: u64) -> Vec<Word> {
        (0..n)
            .map(|i| {
                let mut z = seed.wrapping_add((i as u64).wrapping_mul(0x9e3779b97f4a7c15));
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                (z >> 17 & 1) as Word
            })
            .collect()
    }

    #[test]
    fn parity_is_correct_across_sizes_and_fanins() {
        for n in [1usize, 2, 3, 7, 16, 33, 100] {
            for k in [2usize, 3, 8] {
                let input = bits(n, n as u64 * 31 + k as u64);
                let expected = input.iter().sum::<Word>() % 2;
                let m = QsmMachine::qsm(2);
                let out = parity_read_tree(&m, &input, k).unwrap();
                assert_eq!(out.value, expected, "n={n} k={k}");
            }
        }
    }

    #[test]
    fn or_is_correct_including_all_zero() {
        let m = QsmMachine::qsm(2);
        assert_eq!(or_read_tree(&m, &[0, 0, 0, 0, 0], 2).unwrap().value, 0);
        assert_eq!(or_read_tree(&m, &[0, 0, 0, 1, 0], 2).unwrap().value, 1);
        assert_eq!(or_read_tree(&m, &[1; 9], 3).unwrap().value, 1);
    }

    #[test]
    fn sum_and_max_reduce() {
        let m = QsmMachine::qrqw();
        let input: Vec<Word> = (1..=20).collect();
        assert_eq!(
            tree_reduce(&m, &input, 4, ReduceOp::Sum).unwrap().value,
            210
        );
        assert_eq!(tree_reduce(&m, &input, 4, ReduceOp::Max).unwrap().value, 20);
    }

    #[test]
    fn measured_cost_matches_closed_form() {
        for n in [2usize, 5, 16, 64, 100] {
            for k in [2usize, 4, 10] {
                for g in [1u64, 3, 8] {
                    let m = QsmMachine::qsm(g);
                    let out = tree_reduce(&m, &bits(n, 7), k, ReduceOp::Xor).unwrap();
                    assert_eq!(
                        out.run.time(),
                        tree_reduce_cost(n, k, g),
                        "n={n} k={k} g={g}"
                    );
                }
            }
        }
    }

    #[test]
    fn contention_is_one_throughout() {
        let m = QsmMachine::qsm(4);
        let out = tree_reduce(&m, &bits(64, 3), 4, ReduceOp::Sum).unwrap();
        assert_eq!(out.run.ledger.max_contention(), 1);
    }

    #[test]
    fn sqsm_and_qsm_cost_identical_for_contention_free_trees() {
        // With kappa = 1, the s-QSM surcharge g·kappa never binds.
        let input = bits(128, 11);
        let q = tree_reduce(&QsmMachine::qsm(4), &input, 2, ReduceOp::Xor).unwrap();
        let s = tree_reduce(&QsmMachine::sqsm(4), &input, 2, ReduceOp::Xor).unwrap();
        assert_eq!(q.run.time(), s.run.time());
        assert_eq!(q.value, s.value);
    }

    #[test]
    fn binary_tree_on_sqsm_matches_theta_g_log_n() {
        // The Section 8 tight s-QSM parity algorithm: 3g per level.
        let n = 1 << 10;
        let g = 4;
        let m = QsmMachine::sqsm(g);
        let out = parity_read_tree(&m, &bits(n, 5), 2).unwrap();
        assert_eq!(out.run.time(), 3 * g * 10);
    }

    #[test]
    fn single_element_reduction() {
        let m = QsmMachine::qsm(3);
        let out = tree_reduce(&m, &[7], 2, ReduceOp::Sum).unwrap();
        assert_eq!(out.value, 7);
        assert_eq!(out.run.time(), tree_reduce_cost(1, 2, 3));
    }

    #[test]
    fn empty_input_reduces_to_identity() {
        let m = QsmMachine::qsm(1);
        assert_eq!(tree_reduce(&m, &[], 2, ReduceOp::Sum).unwrap().value, 0);
        assert_eq!(tree_reduce(&m, &[], 2, ReduceOp::Or).unwrap().value, 0);
    }
}
