//! Broadcasting on the QSM family — the primitive whose tight bound
//! (Adler–Gibbons–Matias–Ramachandran, the paper's reference \[1\]) the
//! Section 2 discussion leans on: `Θ(g·log n/log g)` on the QSM,
//! `Θ(g·log n)` on the s-QSM.
//!
//! The construction replicates through *read contention*: in round `l`,
//! `k − 1` new processors each read one of the `k^(l-1)` current holders'
//! cells (κ = k − 1, charged raw on the QSM) and publish their own copy.
//! Choosing `k − 1 = g` balances the queue against the gap, giving
//! `O(g·log n/log g)` total; on the s-QSM contention pays `g·κ` and `k = 2`
//! is optimal again — the same structural asymmetry as the OR tree.

use parbounds_models::{Addr, PhaseEnv, Program, QsmMachine, Result, Status, Word};

use crate::util::{ceil_log, Layout};
use crate::VecOutcome;

struct BroadcastProgram {
    n: usize,
    k: usize,
    out: Addr,
}

impl BroadcastProgram {
    /// The round in which processor `i` joins the holder set: the smallest
    /// `l` with `i < k^l`.
    fn join_round(&self, i: usize) -> usize {
        if i == 0 {
            return 0;
        }
        let mut l = 0;
        let mut reach = 1usize;
        while reach <= i {
            reach = reach.saturating_mul(self.k);
            l += 1;
        }
        l
    }
}

impl Program for BroadcastProgram {
    type Proc = Word;

    fn num_procs(&self) -> usize {
        self.n
    }

    fn create(&self, _pid: usize) -> Word {
        0
    }

    fn phase(&self, pid: usize, st: &mut Word, env: &mut PhaseEnv<'_>) -> Status {
        let t = env.phase();
        let join = self.join_round(pid);
        // Round l occupies phases 2l (read) and 2l+1 (publish); round 0 is
        // processor 0 reading the source cell.
        let read_phase = 2 * join;
        if t < read_phase {
            return Status::Active;
        }
        if t == read_phase {
            if pid == 0 {
                env.read(0); // the source value
            } else {
                // Read an existing holder: holders after round join-1 are
                // the processors below k^(join-1).
                let holders = self.k.pow(join as u32 - 1);
                env.read(self.out + pid % holders);
            }
            return Status::Active;
        }
        debug_assert_eq!(t, read_phase + 1);
        *st = env.delivered()[0].1;
        env.write(self.out + pid, *st);
        Status::Done
    }
}

/// Broadcasts the word in input cell 0 to `n` output cells with a fan-out
/// `k` replication tree. Returns the `n` received copies.
/// ```
/// use parbounds_algo::broadcast::broadcast;
/// use parbounds_models::QsmMachine;
///
/// let machine = QsmMachine::qsm(4);
/// let out = broadcast(&machine, 99, 64, 5).unwrap();
/// assert_eq!(out.values, vec![99; 64]);
/// ```
pub fn broadcast(machine: &QsmMachine, value: Word, n: usize, k: usize) -> Result<VecOutcome> {
    assert!(n >= 1, "broadcast to zero processors");
    assert!(k >= 2, "fan-out must be >= 2");
    let mut layout = Layout::new(1);
    let out = layout.alloc(n);
    let prog = BroadcastProgram { n, k, out };
    let run = machine.run(&prog, &[value])?;
    let values = run.memory.slice(out, n);
    Ok(VecOutcome { values, run })
}

/// The AGMR-optimal fan-out for a machine: `g + 1` on the QSM (queue
/// absorbs g readers per round), 2 on the s-QSM.
pub fn broadcast_default_fanout(machine: &QsmMachine) -> usize {
    match machine.flavor() {
        parbounds_models::QsmFlavor::Qsm | parbounds_models::QsmFlavor::QsmUnitConcurrentReads => {
            machine.g() as usize + 1
        }
        parbounds_models::QsmFlavor::SQsm => 2,
        parbounds_models::QsmFlavor::QsmGd(d) => ((machine.g() / d.max(1)) as usize + 1).max(2),
    }
}

/// Worst-case closed-form cost: `2g + Σ_rounds (max(g, k−1) + g)`.
pub fn broadcast_cost_max(n: usize, k: usize, g: u64) -> u64 {
    let depth = ceil_log(n, k) as u64;
    2 * g + depth * (g.max(k as u64 - 1) + g)
}

/// Declared cost envelope of the fan-out-`g` broadcast tree:
/// `Θ(g·lg n / lg g)` QSM time (Section 2 discussion, Table 1).
pub fn cost_contract() -> parbounds_models::CostContract {
    parbounds_models::CostContract::new("broadcast", "QSM", "Θ(g·lg n / lg g)", |p| {
        p.g * p.lg_n() / p.g.max(2.0).log2()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_processor_receives_the_value() {
        for n in [1usize, 2, 7, 64, 100, 257] {
            for k in [2usize, 3, 9] {
                let m = QsmMachine::qsm(4);
                let out = broadcast(&m, 4242, n, k).unwrap();
                assert_eq!(out.values, vec![4242; n], "n={n} k={k}");
            }
        }
    }

    #[test]
    fn cost_is_within_the_closed_form() {
        for n in [16usize, 256, 1000] {
            for k in [2usize, 5, 17] {
                for g in [1u64, 4, 16] {
                    let m = QsmMachine::qsm(g);
                    let out = broadcast(&m, 1, n, k).unwrap();
                    assert!(
                        out.run.time() <= broadcast_cost_max(n, k, g),
                        "n={n} k={k} g={g}: {} > {}",
                        out.run.time(),
                        broadcast_cost_max(n, k, g)
                    );
                }
            }
        }
    }

    #[test]
    fn contention_is_bounded_by_fanout() {
        let m = QsmMachine::qsm(2);
        let out = broadcast(&m, 9, 256, 4).unwrap();
        assert!(out.run.ledger.max_contention() <= 3); // k - 1 readers
    }

    #[test]
    fn fanout_g_beats_binary_on_qsm() {
        let n = 1 << 12;
        let g = 16u64;
        let m = QsmMachine::qsm(g);
        let wide = broadcast(&m, 5, n, g as usize + 1).unwrap();
        let narrow = broadcast(&m, 5, n, 2).unwrap();
        assert!(
            wide.run.time() < narrow.run.time(),
            "wide {} !< narrow {}",
            wide.run.time(),
            narrow.run.time()
        );
    }

    #[test]
    fn binary_beats_wide_on_sqsm() {
        let n = 1 << 12;
        let g = 16u64;
        let m = QsmMachine::sqsm(g);
        let wide = broadcast(&m, 5, n, g as usize + 1).unwrap();
        let narrow = broadcast(&m, 5, n, 2).unwrap();
        assert!(narrow.run.time() < wide.run.time());
    }

    #[test]
    fn default_fanouts() {
        assert_eq!(broadcast_default_fanout(&QsmMachine::qsm(8)), 9);
        assert_eq!(broadcast_default_fanout(&QsmMachine::sqsm(8)), 2);
        assert_eq!(broadcast_default_fanout(&QsmMachine::qsm_gd(8, 4)), 3);
    }

    #[test]
    fn matches_agmr_theta_shape_on_qsm() {
        // measured / (g·log n/log g) flat across the sweep.
        let mut ratios = Vec::new();
        for n in [1usize << 8, 1 << 12, 1 << 14] {
            for g in [4u64, 16, 64] {
                let m = QsmMachine::qsm(g);
                let t = broadcast(&m, 1, n, g as usize + 1).unwrap().run.time() as f64;
                let formula = g as f64 * (n as f64).log2() / (g as f64).log2();
                ratios.push(t / formula);
            }
        }
        let max = ratios.iter().cloned().fold(f64::MIN, f64::max);
        let min = ratios.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max / min < 3.0, "spread {max}/{min}");
    }
}
