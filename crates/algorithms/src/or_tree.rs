//! The *write-combining* OR tree — the Section 8 QSM upper bound
//! `O((g/log g)·log n)` for computing OR.
//!
//! OR is special among the paper's problems: the QSM's arbitrary-write rule
//! *combines* it for free. Every group member holding a 1 writes `1` to the
//! group cell; whichever write wins, the cell ends up 1 exactly when the
//! group OR is 1. A fan-in-`k` round therefore costs only
//! `max(g, κ≤k) + g` on a QSM — contention is charged raw, not through the
//! gap — so picking `k = g` gives `O(g·log n / log g)` total, beating the
//! read-tree's `Θ(g·log n)`. On an s-QSM contention costs `g·κ`, the
//! advantage vanishes, and `k = 2` is optimal — exactly the asymmetry the
//! paper's sub-tables 1 and 2 record.

use parbounds_models::{Addr, PhaseEnv, Program, QsmMachine, Result, Status, Word};

use crate::util::{ceil_log, Layout};
use crate::Outcome;

struct OrTreeProgram {
    n: usize,
    k: usize,
    depth: usize,
    /// Base of the level-`l` group cells, for `l` in `1..=depth`
    /// (index `l - 1`).
    level_bases: Vec<Addr>,
    out: Addr,
}

/// Processor state: the OR of the processor's current group, once known.
struct OrProc {
    value: Word,
}

impl OrTreeProgram {
    fn new(n: usize, k: usize, layout: &mut Layout) -> Self {
        assert!(n > 0, "OR of an empty input is trivially 0; give >= 1 bits");
        assert!(k >= 2, "fan-in must be >= 2");
        let depth = ceil_log(n, k) as usize;
        let mut level_bases = Vec::with_capacity(depth);
        let mut width = n;
        for _ in 0..depth {
            width = width.div_ceil(k);
            level_bases.push(layout.alloc(width));
        }
        let out = layout.alloc(1);
        OrTreeProgram {
            n,
            k,
            depth,
            level_bases,
            out,
        }
    }

    /// Highest level at which processor `i` is a group representative:
    /// the largest `m` with `k^m | i` (capped at `depth`).
    fn rep_level(&self, i: usize) -> usize {
        if i == 0 {
            return self.depth;
        }
        let mut m = 0;
        let mut stride = self.k;
        while m < self.depth && i.is_multiple_of(stride) {
            m += 1;
            stride = stride.saturating_mul(self.k);
        }
        m
    }
}

impl Program for OrTreeProgram {
    type Proc = OrProc;

    fn num_procs(&self) -> usize {
        self.n
    }

    fn create(&self, _pid: usize) -> OrProc {
        OrProc { value: 0 }
    }

    fn phase(&self, pid: usize, st: &mut OrProc, env: &mut PhaseEnv<'_>) -> Status {
        let t = env.phase();
        // Phase 0: every processor reads its own input bit.
        if t == 0 {
            env.read(pid);
            return Status::Active;
        }
        // Odd phases 2l-1 are the round-l write phases; even phases 2l the
        // round-l representative read phases.
        if t % 2 == 1 {
            let round = t.div_ceil(2); // 1-based
                                       // Collect the value delivered by last phase's read (input read
                                       // for round 1, group-cell read otherwise).
            if let Some(&(_, v)) = env.delivered().first() {
                st.value = Word::from(v != 0);
            }
            if round > self.depth {
                // Final phase: the root representative publishes the OR.
                debug_assert_eq!(pid, 0);
                env.write(self.out, st.value);
                return Status::Done;
            }
            // Representatives of level round-1 with value 1 write to their
            // round-level group cell.
            let stride = self.k.pow(round as u32 - 1);
            debug_assert_eq!(pid % stride, 0);
            if st.value != 0 {
                let group = pid / (stride * self.k);
                env.write(self.level_bases[round - 1] + group, 1);
            }
            // Only processors that remain representatives at `round` level
            // continue.
            if self.rep_level(pid) >= round {
                Status::Active
            } else {
                Status::Done
            }
        } else {
            let round = t / 2;
            // Round-`round` representatives read their group cell.
            let stride = self.k.pow(round as u32);
            debug_assert_eq!(pid % stride, 0);
            env.read(self.level_bases[round - 1] + pid / stride);
            Status::Active
        }
    }
}

/// ```
/// use parbounds_algo::or_tree::or_write_tree;
/// use parbounds_models::QsmMachine;
///
/// let machine = QsmMachine::qsm(8);
/// let mut bits = vec![0; 256];
/// bits[77] = 1;
/// let out = or_write_tree(&machine, &bits, 8).unwrap();
/// assert_eq!(out.value, 1);
/// ```
/// Computes OR of `bits` with a write-combining fan-in-`k` tree.
pub fn or_write_tree(machine: &QsmMachine, bits: &[Word], k: usize) -> Result<Outcome> {
    if bits.is_empty() {
        return or_write_tree(machine, &[0], k);
    }
    let mut layout = Layout::new(bits.len());
    let prog = OrTreeProgram::new(bits.len(), k, &mut layout);
    let out = prog.out;
    let run = machine.run(&prog, bits)?;
    let value = run.memory.get(out);
    Ok(Outcome { value, run })
}

/// The Section 8 default: fan-in `g` on a QSM (`O(g·log n/log g)`), fan-in 2
/// otherwise.
pub fn or_default_fanin(g: u64) -> usize {
    (g as usize).max(2)
}

/// Worst-case closed-form cost of [`or_write_tree`]:
/// `g + Σ_rounds (max(g, k_r) + g) + g` where `k_r ≤ k` is the group size.
/// The realized cost can be lower on sparse inputs (fewer 1-writers means
/// less contention). Exposed for cost assertions.
pub fn or_write_tree_cost_max(n: usize, k: usize, g: u64) -> u64 {
    let depth = ceil_log(n.max(1), k) as u64;
    let mut total = g; // initial input read
    let mut width = n.max(1);
    for _ in 0..depth {
        let group = k.min(width) as u64;
        total += g.max(group) + g;
        width = width.div_ceil(k);
    }
    total + g // final publish
}

/// Declared cost envelope of the write-combining OR tree at the default
/// fan-in `k = g`: `O(g·lg n / lg g)` QSM time (Section 8, Table 1).
pub fn cost_contract() -> parbounds_models::CostContract {
    parbounds_models::CostContract::new("or-write-tree", "QSM", "O(g·lg n / lg g)", |p| {
        p.g * p.lg_n() / p.g.max(2.0).log2()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use parbounds_models::QsmMachine;

    fn one_hot(n: usize, at: usize) -> Vec<Word> {
        let mut v = vec![0; n];
        v[at] = 1;
        v
    }

    #[test]
    fn or_correct_on_all_zero_and_one_hot() {
        let m = QsmMachine::qsm(4);
        for n in [1usize, 2, 5, 16, 31, 64, 100] {
            for k in [2usize, 4, 7] {
                assert_eq!(
                    or_write_tree(&m, &vec![0; n], k).unwrap().value,
                    0,
                    "zeros n={n}"
                );
                for at in [0, n / 2, n - 1] {
                    let out = or_write_tree(&m, &one_hot(n, at), k).unwrap();
                    assert_eq!(out.value, 1, "one-hot n={n} k={k} at={at}");
                }
            }
        }
    }

    #[test]
    fn or_correct_on_dense_input() {
        let m = QsmMachine::qsm(2);
        assert_eq!(or_write_tree(&m, &[1; 50], 3).unwrap().value, 1);
    }

    #[test]
    fn exhaustive_small_inputs() {
        let m = QsmMachine::qsm(2);
        for n in 1..=6usize {
            for mask in 0..1u32 << n {
                let bits: Vec<Word> = (0..n).map(|i| Word::from(mask >> i & 1 == 1)).collect();
                let out = or_write_tree(&m, &bits, 2).unwrap();
                assert_eq!(out.value, Word::from(mask != 0), "n={n} mask={mask:b}");
            }
        }
    }

    #[test]
    fn cost_is_bounded_by_closed_form() {
        for n in [8usize, 64, 100] {
            for k in [2usize, 4, 8] {
                for g in [1u64, 4, 16] {
                    let m = QsmMachine::qsm(g);
                    let out = or_write_tree(&m, &vec![1; n], k).unwrap();
                    assert!(
                        out.run.time() <= or_write_tree_cost_max(n, k, g),
                        "n={n} k={k} g={g}: {} > {}",
                        out.run.time(),
                        or_write_tree_cost_max(n, k, g)
                    );
                }
            }
        }
    }

    #[test]
    fn dense_input_attains_worst_case_cost() {
        // All-ones input maximizes write contention at every level.
        let n = 64;
        let k = 4;
        let g = 4;
        let m = QsmMachine::qsm(g);
        let out = or_write_tree(&m, &vec![1; n], k).unwrap();
        assert_eq!(out.run.time(), or_write_tree_cost_max(n, k, g));
    }

    #[test]
    fn fanin_g_beats_read_tree_on_qsm_for_large_g() {
        // With k = g the write tree does O(g log n / log g); the fan-in-2
        // read tree does Theta(g log n).
        let n = 1 << 12;
        let g = 16;
        let m = QsmMachine::qsm(g);
        let bits = vec![1; n];
        let write = or_write_tree(&m, &bits, g as usize).unwrap();
        let read = crate::reduce::or_read_tree(&m, &bits, 2).unwrap();
        assert!(
            write.run.time() * 2 < read.run.time(),
            "write tree {} should beat read tree {}",
            write.run.time(),
            read.run.time()
        );
    }

    #[test]
    fn sqsm_prefers_small_fanin() {
        // On the s-QSM, contention is charged g*kappa, so fan-in g loses to
        // fan-in 2.
        let n = 1 << 12;
        let g = 16;
        let m = QsmMachine::sqsm(g);
        let bits = vec![1; n];
        let wide = or_write_tree(&m, &bits, g as usize).unwrap();
        let narrow = or_write_tree(&m, &bits, 2).unwrap();
        assert!(
            narrow.run.time() < wide.run.time(),
            "fan-in 2 ({}) should beat fan-in g ({}) on s-QSM",
            narrow.run.time(),
            wide.run.time()
        );
    }

    #[test]
    fn empty_input_is_zero() {
        let m = QsmMachine::qsm(1);
        assert_eq!(or_write_tree(&m, &[], 2).unwrap().value, 0);
    }

    #[test]
    fn max_write_contention_is_at_most_fanin() {
        let m = QsmMachine::qsm(2);
        let out = or_write_tree(&m, &vec![1; 81], 3).unwrap();
        assert!(out.run.ledger.max_contention() <= 3);
    }
}
