//! Pattern-helper Parity — the Section 8 upper bound that "emulates the
//! depth-2 unbounded fan-in circuit for parity".
//!
//! Parity is not write-combinable (unlike OR), so the tree trick of
//! [`crate::or_tree`] does not apply directly. Instead, each group of `k`
//! bits is handled by `2^k` *teams*, one per candidate pattern
//! `a ∈ {0,1}^k` (the minterms of the depth-2 circuit). Team `a` has `k`
//! *checkers* and one *verifier*:
//!
//! 1. checker `i` of every team reads bit `i` of the group — each bit cell
//!    is read by `2^k` checkers concurrently;
//! 2. each checker whose bit disagrees with its pattern writes a 1 into its
//!    team cell (≤ `k` writers per cell);
//! 3. each verifier reads its team cell — exactly one team (the one whose
//!    pattern equals the input) finds it untouched;
//! 4. the matching verifier alone writes `parity(a)` to the group's output
//!    cell.
//!
//! Per level a QSM charges `max(g, 2^k) + max(g, k) + 2g`: choosing
//! `k = ⌊log₂ g⌋` keeps the read contention `2^k ≤ g` below the gap and
//! yields total time `O(g·log n / log log g)` — the paper's Parity upper
//! bound. Under *unit-time concurrent reads* step 1 is free, `k` can grow
//! to `g`, and the total drops to `Θ(g·log n / log g)`, matching the
//! Theorem 3.1 lower bound (the "`Θ` with concur. reads" entry of
//! sub-table 1).

use parbounds_models::{Addr, PhaseEnv, Program, QsmFlavor, QsmMachine, Result, Status, Word};

use crate::util::Layout;
use crate::Outcome;

/// Hard cap on the group size: teams number `2^k`, so this bounds the
/// simulated processor count at `O(n·2^K)`.
pub const MAX_GROUP_BITS: usize = 12;

/// Cap used by [`parity_helper_default_k`]: `2^8·(8+1) ≈ 2300` simulated
/// helpers per group keeps default runs fast while still exhibiting the
/// `log g` denominator for every simulated gap `g ≤ 256`.
pub const DEFAULT_GROUP_BITS_CAP: usize = 8;

#[derive(Debug, Clone, Copy)]
struct ProcDesc {
    level: u32,
    group: u32,
    pattern: u32,
    /// Checker index within the group, or `u32::MAX` for the verifier.
    idx: u32,
}

struct LevelPlan {
    /// Base address of this level's value cells (level 0 = input).
    value_base: Addr,
    /// Base address of each group's `2^c` team cells.
    team_bases: Vec<Addr>,
    /// Group size `c` (equals `k` except possibly the last group).
    group_sizes: Vec<usize>,
}

struct ParityHelperProgram {
    k: usize,
    levels: Vec<LevelPlan>,
    procs: Vec<ProcDesc>,
    out: Addr,
}

impl ParityHelperProgram {
    fn new(n: usize, k: usize, layout: &mut Layout) -> Self {
        assert!(n > 0, "parity of an empty input is 0; give >= 1 bits");
        assert!(
            (2..=MAX_GROUP_BITS).contains(&k),
            "group size k must be in 2..={MAX_GROUP_BITS}, got {k}"
        );
        let mut levels = Vec::new();
        let mut procs = Vec::new();
        let mut width = n;
        let mut value_base: Addr = 0;
        let mut level = 0u32;
        while width > 1 {
            let num_groups = width.div_ceil(k);
            let mut team_bases = Vec::with_capacity(num_groups);
            let mut group_sizes = Vec::with_capacity(num_groups);
            for group in 0..num_groups {
                let c = k.min(width - group * k);
                team_bases.push(layout.alloc(1 << c));
                group_sizes.push(c);
                for pattern in 0..1u32 << c {
                    for idx in 0..c as u32 {
                        procs.push(ProcDesc {
                            level,
                            group: group as u32,
                            pattern,
                            idx,
                        });
                    }
                    procs.push(ProcDesc {
                        level,
                        group: group as u32,
                        pattern,
                        idx: u32::MAX,
                    });
                }
            }
            let next_base = layout.alloc(num_groups);
            levels.push(LevelPlan {
                value_base,
                team_bases,
                group_sizes,
            });
            value_base = next_base;
            width = num_groups;
            level += 1;
        }
        // `value_base` now addresses the single root cell.
        let out = value_base;
        if levels.is_empty() {
            // n == 1: a single courier copies the input bit to a fresh out
            // cell so the interface is uniform.
            let out = layout.alloc(1);
            levels.push(LevelPlan {
                value_base: 0,
                team_bases: vec![],
                group_sizes: vec![],
            });
            procs.push(ProcDesc {
                level: 0,
                group: 0,
                pattern: 0,
                idx: u32::MAX,
            });
            return ParityHelperProgram {
                k,
                levels,
                procs,
                out,
            };
        }
        ParityHelperProgram {
            k,
            levels,
            procs,
            out,
        }
    }

    fn is_trivial(&self) -> bool {
        self.levels[0].team_bases.is_empty()
    }
}

impl Program for ParityHelperProgram {
    type Proc = ();

    fn num_procs(&self) -> usize {
        self.procs.len()
    }

    fn create(&self, _pid: usize) {}

    fn phase(&self, pid: usize, _st: &mut (), env: &mut PhaseEnv<'_>) -> Status {
        if self.is_trivial() {
            // Courier: read input bit, write it out.
            return match env.phase() {
                0 => {
                    env.read(0);
                    Status::Active
                }
                _ => {
                    env.write(self.out, env.delivered()[0].1 & 1);
                    Status::Done
                }
            };
        }
        let d = self.procs[pid];
        let plan = &self.levels[d.level as usize];
        let base_phase = 4 * d.level as usize;
        let t = env.phase();
        if t < base_phase {
            return Status::Active;
        }
        let group = d.group as usize;
        let c = plan.group_sizes[group];
        let team_cell = plan.team_bases[group] + d.pattern as usize;
        if d.idx != u32::MAX {
            // Checker.
            match t - base_phase {
                0 => {
                    env.read(plan.value_base + group * self.k + d.idx as usize);
                    Status::Active
                }
                1 => {
                    let bit = env.delivered()[0].1 & 1;
                    let want = (d.pattern >> d.idx) & 1;
                    if bit != Word::from(want) {
                        env.write(team_cell, 1);
                    }
                    Status::Done
                }
                _ => unreachable!("checker lived past its write phase"),
            }
        } else {
            // Verifier.
            match t - base_phase {
                0 | 1 => Status::Active,
                2 => {
                    env.read(team_cell);
                    Status::Active
                }
                3 => {
                    if env.delivered()[0].1 == 0 {
                        // Our pattern matched: publish the group parity.
                        let next_base = if (d.level as usize) + 1 < self.levels.len() {
                            self.levels[d.level as usize + 1].value_base
                        } else {
                            self.out
                        };
                        let par = Word::from(d.pattern.count_ones() % 2);
                        let _ = c;
                        env.write(next_base + group, par);
                    }
                    Status::Done
                }
                _ => unreachable!("verifier lived past its publish phase"),
            }
        }
    }
}

/// ```
/// use parbounds_algo::parity::parity_pattern_helper;
/// use parbounds_models::QsmMachine;
///
/// let machine = QsmMachine::qsm(16);
/// let bits = vec![1, 0, 1, 1, 0, 0, 1, 0, 1];
/// let out = parity_pattern_helper(&machine, &bits, 4).unwrap();
/// assert_eq!(out.value, 1); // five ones
/// ```
/// Computes parity of `bits` with the pattern-helper scheme, group size `k`.
pub fn parity_pattern_helper(machine: &QsmMachine, bits: &[Word], k: usize) -> Result<Outcome> {
    if bits.is_empty() {
        return parity_pattern_helper(machine, &[0], k);
    }
    let mut layout = Layout::new(bits.len());
    let prog = ParityHelperProgram::new(bits.len(), k, &mut layout);
    let out = prog.out;
    let run = machine.run(&prog, bits)?;
    let value = run.memory.get(out);
    Ok(Outcome { value, run })
}

/// The Section 8 group-size choice for a machine: `⌊log₂ g⌋` on a plain QSM
/// (keeps read contention `2^k ≤ g`), `g` itself (capped) when concurrent
/// reads are unit-time, and 2 on an s-QSM (where contention always pays the
/// gap, see [`crate::reduce`] for the preferred s-QSM algorithm).
pub fn parity_helper_default_k(machine: &QsmMachine) -> usize {
    let g = machine.g();
    match machine.flavor() {
        QsmFlavor::Qsm => (63 - g.leading_zeros() as usize).clamp(2, DEFAULT_GROUP_BITS_CAP),
        QsmFlavor::QsmUnitConcurrentReads => (g as usize).clamp(2, DEFAULT_GROUP_BITS_CAP),
        QsmFlavor::SQsm => 2,
        // QSM(g, d): read contention costs d·κ, so keep d·2^k ≤ g.
        QsmFlavor::QsmGd(d) => {
            (63 - (g / d.max(1)).max(2).leading_zeros() as usize).clamp(2, DEFAULT_GROUP_BITS_CAP)
        }
    }
}

/// Exact per-level worst-case phase costs of the helper scheme on `machine`,
/// summed: `Σ_levels [cost(read κ=2^c) + cost(write κ≤c) + 2g]`.
pub fn parity_pattern_helper_cost_max(machine: &QsmMachine, n: usize, k: usize) -> u64 {
    let g = machine.g();
    if n <= 1 {
        return 2 * g;
    }
    let mut total = 0;
    let mut width = n;
    while width > 1 {
        let c = k.min(width) as u64;
        let read_kappa = 1u64 << c;
        let read_cost = match machine.flavor() {
            QsmFlavor::Qsm => g.max(read_kappa),
            QsmFlavor::QsmUnitConcurrentReads => g,
            QsmFlavor::SQsm => g.max(g * read_kappa),
            QsmFlavor::QsmGd(d) => g.max(d * read_kappa),
        };
        let write_cost = match machine.flavor() {
            QsmFlavor::Qsm | QsmFlavor::QsmUnitConcurrentReads => g.max(c),
            QsmFlavor::SQsm => g.max(g * c),
            QsmFlavor::QsmGd(d) => g.max(d * c),
        };
        total += read_cost + write_cost + 2 * g;
        width = width.div_ceil(k);
    }
    total
}

/// Declared cost envelope of the pattern-helper Parity algorithm at the
/// default group width: `O(g·lg n / lg lg g)` QSM time (Section 8).
pub fn cost_contract() -> parbounds_models::CostContract {
    parbounds_models::CostContract::new("parity-helper", "QSM", "O(g·lg n / lg lg g)", |p| {
        p.g * p.lg_n() / p.g.max(4.0).log2().log2().max(1.0)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use parbounds_models::QsmMachine;

    fn bits(n: usize, seed: u64) -> Vec<Word> {
        (0..n)
            .map(|i| {
                let mut z = seed.wrapping_add((i as u64).wrapping_mul(0x9e3779b97f4a7c15));
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                (z >> 23 & 1) as Word
            })
            .collect()
    }

    #[test]
    fn exhaustive_correctness_small_n() {
        let m = QsmMachine::qsm(4);
        for n in 1..=8usize {
            for mask in 0..1u32 << n {
                let input: Vec<Word> = (0..n).map(|i| Word::from(mask >> i & 1 == 1)).collect();
                let expected = Word::from(mask.count_ones() % 2 == 1);
                for k in [2usize, 3] {
                    let out = parity_pattern_helper(&m, &input, k).unwrap();
                    assert_eq!(out.value, expected, "n={n} mask={mask:b} k={k}");
                }
            }
        }
    }

    #[test]
    fn correctness_at_scale() {
        let m = QsmMachine::qsm(8);
        for n in [64usize, 100, 256, 1000] {
            for k in [2usize, 3, 4] {
                let input = bits(n, n as u64 + k as u64);
                let expected = input.iter().sum::<Word>() % 2;
                let out = parity_pattern_helper(&m, &input, k).unwrap();
                assert_eq!(out.value, expected, "n={n} k={k}");
            }
        }
    }

    #[test]
    fn cost_never_exceeds_closed_form() {
        for flavor in [
            QsmMachine::qsm(8),
            QsmMachine::qsm_unit_cr(8),
            QsmMachine::sqsm(8),
        ] {
            let n = 256;
            let k = 3;
            let out = parity_pattern_helper(&flavor, &bits(n, 1), k).unwrap();
            let bound = parity_pattern_helper_cost_max(&flavor, n, k);
            assert!(
                out.run.time() <= bound,
                "{:?}: {} > {bound}",
                flavor.flavor(),
                out.run.time()
            );
        }
    }

    #[test]
    fn read_contention_is_2_to_k_and_is_free_under_unit_cr() {
        let n = 64;
        let k = 4;
        let plain = parity_pattern_helper(&QsmMachine::qsm(4), &bits(n, 9), k).unwrap();
        let unit = parity_pattern_helper(&QsmMachine::qsm_unit_cr(4), &bits(n, 9), k).unwrap();
        // Plain QSM sees the 2^k = 16 read contention in its ledger.
        assert_eq!(plain.run.ledger.max_contention(), 16);
        // Same phases, but the unit-CR machine charges less overall.
        assert!(unit.run.time() < plain.run.time());
    }

    #[test]
    fn choosing_k_log_g_keeps_level_cost_at_g() {
        // With k = log2(g), every phase of a level costs at most g (reads:
        // 2^k = g; writes: k <= g; publishes: g).
        let g = 16u64;
        let k = 4; // log2(16)
        let m = QsmMachine::qsm(g);
        let out = parity_pattern_helper(&m, &bits(256, 2), k).unwrap();
        assert_eq!(out.run.ledger.max_phase_cost(), g);
    }

    #[test]
    fn default_k_choices() {
        assert_eq!(parity_helper_default_k(&QsmMachine::qsm(16)), 4);
        assert_eq!(parity_helper_default_k(&QsmMachine::qsm(2)), 2);
        assert_eq!(parity_helper_default_k(&QsmMachine::qsm_unit_cr(6)), 6);
        assert_eq!(
            parity_helper_default_k(&QsmMachine::qsm_unit_cr(1 << 20)),
            DEFAULT_GROUP_BITS_CAP
        );
        assert_eq!(parity_helper_default_k(&QsmMachine::sqsm(16)), 2);
    }

    #[test]
    fn single_bit_input() {
        let m = QsmMachine::qsm(4);
        assert_eq!(parity_pattern_helper(&m, &[1], 2).unwrap().value, 1);
        assert_eq!(parity_pattern_helper(&m, &[0], 2).unwrap().value, 0);
        assert_eq!(parity_pattern_helper(&m, &[], 2).unwrap().value, 0);
    }

    #[test]
    #[should_panic(expected = "group size k")]
    fn oversized_k_is_rejected() {
        let m = QsmMachine::qsm(4);
        let _ = parity_pattern_helper(&m, &[1, 0, 1], MAX_GROUP_BITS + 1);
    }

    #[test]
    fn helper_beats_read_tree_on_qsm_with_large_g() {
        // The point of the construction: with g = 256 and k = 8 the helper
        // scheme levels cost O(g) and depth is log_8 n, vs the read tree's
        // 3g per level at depth log_2 n.
        let n = 1 << 10;
        let g = 256u64;
        let m = QsmMachine::qsm(g);
        let input = bits(n, 3);
        let helper = parity_pattern_helper(&m, &input, 8).unwrap();
        let tree = crate::reduce::parity_read_tree(&m, &input, 2).unwrap();
        assert_eq!(helper.value, tree.value);
        assert!(
            helper.run.time() < tree.run.time(),
            "helper {} >= tree {}",
            helper.run.time(),
            tree.run.time()
        );
    }
}
