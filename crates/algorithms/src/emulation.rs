//! QSM-on-BSP emulation — the "bridging model" simulation underlying the
//! paper's model relationships (Gibbons–Matias–Ramachandran's question
//! "can a shared-memory model serve as a bridging model?" and the phase
//! simulations inside Claim 2.1).
//!
//! Any QSM [`Program`] runs unchanged on a [`BspMachine`]: shared-memory
//! cells are distributed across the components by their owner map, and
//! each QSM phase becomes **two supersteps** —
//!
//! 1. *request*: components run the phase callback for the QSM processors
//!    they host, send `WRITE(addr, v)` and `READ(addr, who)` messages to
//!    the cells' owners;
//! 2. *serve*: owners commit writes (first message in the deterministic
//!    inbox order wins — a legal arbitrary-write resolution) and mail read
//!    replies back; replies are folded into the processors' next-phase
//!    deliveries.
//!
//! The emulation is *two-pass deterministic*: a probe run on a
//! [`QsmMachine`] first establishes the exact phase count (the machines
//! are deterministic), so the BSP program needs no termination protocol.
//! The measured BSP ledger exposes the emulation cost — per QSM phase,
//! an `h`-relation of the phase's aggregate read/write traffic plus the
//! `max(…, L)` superstep floor — making the
//! `T_BSP = O((g·traffic + L)·phases)` overhead of shared-memory
//! emulation measurable rather than asserted.

use std::collections::HashMap;

use parbounds_models::{
    Addr, BspMachine, BspProgram, CostLedger, PhaseEnv, Program, QsmMachine, Result, Status,
    Superstep, Word,
};

/// Outcome of an emulated run.
#[derive(Debug)]
pub struct EmulationOutcome {
    /// Final contents of every cell ever written (or preloaded), as held
    /// by the owning components.
    pub memory: HashMap<Addr, Word>,
    /// The BSP cost of the emulation.
    pub ledger: CostLedger,
    /// QSM phases emulated (supersteps = 2·phases + 1).
    pub qsm_phases: usize,
    /// The reference QSM run's total time, for overhead comparisons.
    pub qsm_time: u64,
}

impl EmulationOutcome {
    /// Reads an emulated cell (0 if never touched).
    pub fn get(&self, addr: Addr) -> Word {
        self.memory.get(&addr).copied().unwrap_or(0)
    }

    /// Total BSP time of the emulation.
    pub fn bsp_time(&self) -> u64 {
        self.ledger.total_time()
    }
}

/// Message-tag packing: bits 60.. hold the kind; for replies, bits 30..60
/// hold the requesting QSM pid and bits 0..30 the address (both therefore
/// bounded by 2^30, far beyond simulation scales). Reads carry the pid in
/// the value; writes carry the payload in the value.
const KIND_WRITE: Word = 0;
const KIND_READ: Word = 1;
const KIND_REPLY: Word = 2;
const KIND_SHIFT: u32 = 60;
const PID_SHIFT: u32 = 30;
const LOW_MASK: Word = (1 << PID_SHIFT) - 1;

struct EmulatorProg<'a, P: Program> {
    inner: &'a P,
    p: usize,
    n_procs: usize,
    total_phases: usize,
    input: &'a [Word],
}

struct HostedProc<P> {
    pid: usize,
    state: P,
    active: bool,
    /// Addresses requested last phase, in request order.
    requests: Vec<Addr>,
    /// Replies received (addr → value).
    replies: HashMap<Addr, Word>,
}

struct CompState<P> {
    hosted: Vec<HostedProc<P>>,
    owned: HashMap<Addr, Word>,
}

impl<P: Program> EmulatorProg<'_, P> {
    fn owner(&self, addr: Addr) -> usize {
        addr % self.p
    }
}

impl<P: Program> BspProgram for EmulatorProg<'_, P> {
    type Proc = CompState<P::Proc>;

    fn create(&self, pid: usize, _local: &[Word]) -> CompState<P::Proc> {
        // Host QSM processors round-robin; own input cells by addr % p.
        let hosted = (0..self.n_procs)
            .filter(|i| i % self.p == pid)
            .map(|i| HostedProc {
                pid: i,
                state: self.inner.create(i),
                active: true,
                requests: Vec::new(),
                replies: HashMap::new(),
            })
            .collect();
        let owned = self
            .input
            .iter()
            .enumerate()
            .filter(|&(a, _)| a % self.p == pid)
            .map(|(a, &v)| (a, v))
            .collect();
        CompState { hosted, owned }
    }

    fn superstep(
        &self,
        _pid: usize,
        st: &mut CompState<P::Proc>,
        ctx: &mut Superstep<'_>,
    ) -> Status {
        let step = ctx.step();
        let phase = step / 2;
        if step % 2 == 0 {
            // Request superstep: first fold in the replies from the
            // previous serve superstep.
            for m in ctx.inbox() {
                debug_assert_eq!(m.tag >> KIND_SHIFT, KIND_REPLY);
                let qpid = ((m.tag >> PID_SHIFT) & LOW_MASK) as usize;
                let addr = (m.tag & LOW_MASK) as usize;
                if let Some(h) = st.hosted.iter_mut().find(|h| h.pid == qpid) {
                    h.replies.insert(addr, m.value);
                }
            }
            ctx.local_ops(ctx.inbox().len() as u64);
            if phase >= self.total_phases {
                return Status::Done;
            }
            // Run the QSM phase callback for every hosted active processor.
            for h in st.hosted.iter_mut().filter(|h| h.active) {
                let delivered: Vec<(Addr, Word)> = h
                    .requests
                    .iter()
                    .map(|&a| (a, h.replies.get(&a).copied().unwrap_or(0)))
                    .collect();
                let mut env = PhaseEnv::new(phase, &delivered);
                let status = self.inner.phase(h.pid, &mut h.state, &mut env);
                let (reads, writes, ops) = env.into_requests();
                ctx.local_ops(ops + (reads.len() + writes.len()) as u64);
                h.requests = reads.clone();
                h.replies.clear();
                for addr in reads {
                    debug_assert!(addr < 1 << PID_SHIFT, "address exceeds packing range");
                    ctx.send(
                        self.owner(addr),
                        (KIND_READ << KIND_SHIFT) | addr as Word,
                        h.pid as Word,
                    );
                }
                for (addr, value) in writes {
                    debug_assert!(addr < 1 << PID_SHIFT, "address exceeds packing range");
                    ctx.send(
                        self.owner(addr),
                        (KIND_WRITE << KIND_SHIFT) | addr as Word,
                        value,
                    );
                }
                if status == Status::Done {
                    h.active = false;
                }
            }
            Status::Active
        } else {
            // Serve superstep: commit writes (first in deterministic inbox
            // order wins per cell), then answer reads against the post-write
            // contents (reads and writes to one cell never share a QSM
            // phase, so the order is immaterial for legal programs).
            let mut committed: HashMap<Addr, ()> = HashMap::new();
            let mut reads: Vec<(Addr, usize)> = Vec::new();
            for m in ctx.inbox() {
                let kind = m.tag >> KIND_SHIFT;
                let addr = (m.tag & LOW_MASK) as usize;
                match kind {
                    KIND_WRITE => {
                        if committed.insert(addr, ()).is_none() {
                            st.owned.insert(addr, m.value);
                        }
                    }
                    KIND_READ => reads.push((addr, m.value as usize)),
                    _ => unreachable!("replies only arrive at request supersteps"),
                }
            }
            ctx.local_ops(ctx.inbox().len() as u64);
            for (addr, qpid) in reads {
                let value = st.owned.get(&addr).copied().unwrap_or(0);
                let packed =
                    (KIND_REPLY << KIND_SHIFT) | ((qpid as Word) << PID_SHIFT) | addr as Word;
                ctx.send(qpid % self.p, packed, value);
            }
            Status::Active
        }
    }
}

/// Runs the QSM `program` on `bsp` by distributed-memory emulation.
///
/// `probe` supplies the QSM cost model for the reference run that (a)
/// validates the program and measures its native QSM time and (b) fixes
/// the phase count the lockstep emulation executes.
/// ```
/// use parbounds_algo::emulation::emulate_qsm_on_bsp;
/// use parbounds_models::{BspMachine, FnProgram, PhaseEnv, QsmMachine, Status};
///
/// // A tiny QSM program: each processor copies input cell i to cell 10+i.
/// let prog = FnProgram::new(
///     3,
///     |_| (),
///     |pid, _, env: &mut PhaseEnv<'_>| match env.phase() {
///         0 => { env.read(pid); Status::Active }
///         _ => { env.write(10 + pid, env.delivered()[0].1); Status::Done }
///     },
/// );
/// let probe = QsmMachine::qsm(2);
/// let bsp = BspMachine::new(2, 1, 4).unwrap();
/// let out = emulate_qsm_on_bsp(&bsp, &probe, &prog, &[7, 8, 9]).unwrap();
/// assert_eq!([out.get(10), out.get(11), out.get(12)], [7, 8, 9]);
/// ```
pub fn emulate_qsm_on_bsp<P>(
    bsp: &BspMachine,
    probe: &QsmMachine,
    program: &P,
    input: &[Word],
) -> Result<EmulationOutcome>
where
    P: Program + Sync,
    P::Proc: Send,
{
    let reference = probe.run(program, input)?;
    let total_phases = reference.phases();
    let prog = EmulatorProg {
        inner: program,
        p: bsp.p(),
        n_procs: program.num_procs(),
        total_phases,
        input,
    };
    let res = bsp.run(&prog, input)?;
    let mut memory = HashMap::new();
    for comp in &res.states {
        for (&a, &v) in &comp.owned {
            memory.insert(a, v);
        }
    }
    Ok(EmulationOutcome {
        memory,
        ledger: res.ledger,
        qsm_phases: total_phases,
        qsm_time: reference.time(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduce::tree_reduce_cost;
    use crate::workloads::random_bits;
    use parbounds_models::FnProgram;

    /// The fan-in-2 parity read-tree as a plain QSM program (reusing the
    /// public constructor via a thin adapter is impossible since programs
    /// are built inside `tree_reduce`; re-derive a small one here).
    fn parity_prog(n: usize) -> impl Program<Proc = Word> {
        // One processor per input bit; tournament by halving: in round r,
        // procs below n/2^r read partner values written last round.
        let rounds = crate::util::ceil_log(n, 2) as usize;
        FnProgram::new(
            n.max(1),
            |_| 0 as Word,
            move |pid, st: &mut Word, env: &mut PhaseEnv<'_>| {
                let t = env.phase();
                // Phase 0: read own bit into a scratch cell region.
                if t == 0 {
                    env.read(pid);
                    return Status::Active;
                }
                if t == 1 {
                    *st = env.delivered()[0].1 & 1;
                    env.write(n + pid, *st);
                    return if pid < n.div_ceil(2) {
                        Status::Active
                    } else {
                        Status::Done
                    };
                }
                // Round r (1-based) occupies phases 2r and 2r+1.
                let r = t / 2;
                let width = n.div_ceil(1 << r); // survivors after this round
                let prev_width = n.div_ceil(1 << (r - 1));
                if t % 2 == 0 {
                    let partner = pid + width;
                    if partner < prev_width {
                        env.read(n + partner);
                    }
                    Status::Active
                } else {
                    if let Some(&(_, v)) = env.delivered().first() {
                        *st ^= v & 1;
                    }
                    env.write(n + pid, *st);
                    if r >= rounds || pid < n.div_ceil(1 << (r + 1)) {
                        if r >= rounds {
                            env.write(2 * n, *st);
                            Status::Done
                        } else {
                            Status::Active
                        }
                    } else {
                        Status::Done
                    }
                }
            },
        )
    }

    #[test]
    fn emulated_parity_matches_native() {
        for n in [4usize, 16, 100] {
            let bits = random_bits(n, n as u64);
            let expected = bits.iter().sum::<Word>() % 2;
            let probe = QsmMachine::qsm(4);
            // Validate natively first.
            let native = probe.run(&parity_prog(n), &bits).unwrap();
            assert_eq!(native.memory.get(2 * n), expected, "native n={n}");
            for p in [1usize, 2, 8] {
                let bsp = BspMachine::new(p, 2, 8).unwrap();
                let out = emulate_qsm_on_bsp(&bsp, &probe, &parity_prog(n), &bits).unwrap();
                assert_eq!(out.get(2 * n), expected, "n={n} p={p}");
                assert_eq!(out.qsm_phases, native.phases());
            }
        }
    }

    #[test]
    fn emulation_supersteps_are_two_per_phase() {
        let n = 64;
        let bits = random_bits(n, 3);
        let probe = QsmMachine::qsm(2);
        let bsp = BspMachine::new(4, 2, 8).unwrap();
        let out = emulate_qsm_on_bsp(&bsp, &probe, &parity_prog(n), &bits).unwrap();
        assert_eq!(out.ledger.num_phases(), 2 * out.qsm_phases + 1);
    }

    #[test]
    fn emulation_cost_has_the_claimed_shape() {
        // T_BSP <= O(g_bsp·(per-phase traffic) + L) per phase. For the
        // tournament tree the per-phase traffic concentrates on the scratch
        // cells' owners; with p components each superstep routes at most
        // O(n/p + n/2^r) messages at any single component.
        let n = 256;
        let bits = random_bits(n, 5);
        let probe = QsmMachine::qsm(1);
        let (g, l, p) = (2u64, 16u64, 16usize);
        let bsp = BspMachine::new(p, g, l).unwrap();
        let out = emulate_qsm_on_bsp(&bsp, &probe, &parity_prog(n), &bits).unwrap();
        let phases = out.qsm_phases as u64;
        // Loose but meaningful envelope: every superstep costs at least L
        // and at most max(L, g·n) (the first fan-in phase).
        assert!(out.bsp_time() >= l * (2 * phases));
        assert!(out.bsp_time() <= (2 * phases + 1) * (l + 3 * g * n as u64 / p as u64 + g * 8));
    }

    #[test]
    fn arbitrary_write_emulation_is_legal() {
        // All processors write distinct values to one cell: the emulated
        // winner must be one of them.
        let n = 8;
        let prog = || {
            FnProgram::new(
                n,
                |_| (),
                |pid, _, env: &mut PhaseEnv<'_>| {
                    env.write(100, 1000 + pid as Word);
                    Status::Done
                },
            )
        };
        let probe = QsmMachine::qsm(1);
        let bsp = BspMachine::new(3, 1, 2).unwrap();
        let out = emulate_qsm_on_bsp(&bsp, &probe, &prog(), &[]).unwrap();
        let v = out.get(100);
        assert!((1000..1000 + n as Word).contains(&v), "{v}");
    }

    #[test]
    fn single_component_emulation_degenerates_cleanly() {
        let n = 32;
        let bits = random_bits(n, 7);
        let probe = QsmMachine::qsm(2);
        let bsp = BspMachine::new(1, 1, 1).unwrap();
        let out = emulate_qsm_on_bsp(&bsp, &probe, &parity_prog(n), &bits).unwrap();
        assert_eq!(out.get(2 * n), bits.iter().sum::<Word>() % 2);
    }

    #[test]
    fn cost_reference_uses_native_qsm_ledger() {
        let n = 64;
        let input: Vec<Word> = (0..n as Word).collect();
        let probe = QsmMachine::qsm(4);
        let bsp = BspMachine::new(4, 2, 8).unwrap();
        let out = emulate_qsm_on_bsp(&bsp, &probe, &parity_prog(n), &input).unwrap();
        assert!(out.qsm_time > 0);
        // Same order of magnitude as the read-tree closed form on this
        // machine (the tournament is a fan-in-2 tree plus bookkeeping).
        assert!(out.qsm_time <= 4 * tree_reduce_cost(n, 2, 4));
    }
}
