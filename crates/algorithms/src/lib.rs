//! # parbounds-algo
//!
//! Implementations of every upper-bound algorithm sketched in Section 8 of
//! MacKenzie & Ramachandran (SPAA 1998), plus the workload generators and
//! problem reductions of Sections 3 and 6, all running on the cost-exact
//! model simulators of `parbounds-models`.
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`reduce`] | fan-in-`k` read trees — the `Θ(g log n)` s-QSM Parity/OR algorithms |
//! | [`or_tree`] | write-combining OR tree — `O((g/log g)·log n)` QSM OR |
//! | [`parity`] | depth-2 circuit emulation — `O(g log n/log log g)` QSM Parity, `Θ(g log n/log g)` with unit-time concurrent reads |
//! | [`prefix`] | `p`-processor prefix sums computing in rounds — `Θ(log n/log(n/p))` rounds |
//! | [`lac`] | linear approximate compaction: randomized dart-throwing + deterministic prefix-sum compaction |
//! | [`balance`] | load balancing (Section 6.2) |
//! | [`broadcast`] | QSM/s-QSM broadcasting — `Θ(g·log n/log g)` / `Θ(g·log n)` (AGMR) |
//! | [`padded_sort`] | padded sort of uniform values (Section 6.2) |
//! | [`list_rank`] | pointer-jumping list ranking (a Parity reduction target) |
//! | [`bsp_algos`] | BSP fan-in-(L/g) reduction, prefix, broadcast, sorting |
//! | [`gsm_algos`] | strong-queuing GSM trees — tight against the Theorem 3.1 GSM bound |
//! | [`emulation`] | QSM-on-BSP emulation: any QSM program runs on the BSP, 2 supersteps per phase |
//! | [`reductions`] | size-preserving reductions: Parity → list ranking / sorting; CLB → {Load Balancing, LAC, Padded Sort} (Theorem 6.1) |
//! | [`workloads`] | seeded input generators, incl. Chromatic Load Balancing instances |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod balance;
pub mod broadcast;
pub mod bsp_algos;
pub mod emulation;
pub mod gsm_algos;
pub mod ir_families;
pub mod lac;
pub mod list_rank;
pub mod or_tree;
pub mod padded_sort;
pub mod parity;
pub mod prefix;
pub mod reduce;
pub mod reductions;
pub mod rounds;
pub mod util;
pub mod workloads;

use parbounds_models::{RunResult, Word};

/// The outcome of a shared-memory algorithm: the computed scalar value plus
/// the full execution record (for cost assertions and bound comparisons).
#[derive(Debug)]
pub struct Outcome {
    /// The scalar result (e.g. the parity bit, the OR bit).
    pub value: Word,
    /// Final memory and per-phase cost ledger.
    pub run: RunResult,
}

/// Outcome of an algorithm producing an array.
#[derive(Debug)]
pub struct VecOutcome {
    /// The output array, copied out of shared memory.
    pub values: Vec<Word>,
    /// Final memory and per-phase cost ledger.
    pub run: RunResult,
}
