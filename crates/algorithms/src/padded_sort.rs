//! Padded Sort (Section 6.2): given `n` values drawn uniformly from `[0,1)`,
//! arrange them in sorted order in an array of size `n + o(n)` with NULL in
//! the unfilled locations.
//!
//! Values are fixed-point words in `[0, FIXED_ONE)` (see
//! [`crate::workloads::FIXED_ONE`]). The algorithm is the classic
//! bucket-and-pad scheme:
//!
//! 1. **Bucket darts** — each item computes its bucket (of expected size
//!    `s`) and claims a cell of the bucket's dart region by the same
//!    write/read-back protocol as [`crate::lac`] (fresh geometric segments,
//!    guaranteed termination);
//! 2. **Gather & sort** — one processor per bucket reads its region,
//!    fetches the claimed items' values, sorts them locally, and writes
//!    them left-justified into the bucket's *final region* of size
//!    `s + pad` where `pad = Θ(√(s·log n))` absorbs the binomial deviation
//!    of the bucket population.
//!
//! The output is the concatenation of final regions: size
//! `n + O(n·√(log n / s)) = n + o(n)` for `s = log² n`, globally sorted,
//! with value `v` stored as `v + 1` and `0` as NULL. If a bucket overflows
//! its final region (probability `n^{-Θ(1)}`), the outcome reports failure
//! rather than silently truncating.

use parbounds_models::{Addr, PhaseEnv, Program, QsmMachine, Result, RunResult, Status, Word};

use crate::util::Layout;
use crate::workloads::FIXED_ONE;

/// Parameters of a padded-sort run.
#[derive(Debug, Clone, Copy)]
pub struct PaddedSortParams {
    /// Expected bucket size `s` (default `max(4, ⌈log₂²n⌉)`).
    pub bucket_size: usize,
    /// Extra capacity per bucket (default `4·⌈√(s·ln n)⌉ + 8`).
    pub pad: usize,
    /// Dart seed.
    pub seed: u64,
}

impl PaddedSortParams {
    /// The defaults described in the module docs.
    pub fn for_n(n: usize, seed: u64) -> Self {
        let log2n = (usize::BITS - n.max(2).leading_zeros()) as usize;
        let s = (log2n * log2n).max(4);
        let pad = 4 * ((s as f64 * (n.max(2) as f64).ln()).sqrt().ceil() as usize) + 8;
        PaddedSortParams {
            bucket_size: s,
            pad,
            seed,
        }
    }
}

/// Outcome of a padded sort.
#[derive(Debug)]
pub struct PaddedSortOutcome {
    /// The padded output: `v + 1` for a value `v`, `0` for NULL.
    pub output: Vec<Word>,
    /// Whether some bucket overflowed its final region.
    pub overflow: bool,
    /// Execution records (dart pass, gather/sort pass).
    pub runs: Vec<RunResult>,
}

impl PaddedSortOutcome {
    /// Total model time across both passes.
    pub fn total_time(&self) -> u64 {
        self.runs.iter().map(|r| r.ledger.total_time()).sum()
    }

    /// The sorted values (NULLs stripped, encoding removed).
    pub fn values(&self) -> Vec<Word> {
        self.output
            .iter()
            .filter(|&&v| v != 0)
            .map(|&v| v - 1)
            .collect()
    }

    /// Checks the padded-sort contract: output non-decreasing, multiset
    /// equal to the input, and padding `o(n)`-sized as configured.
    pub fn verify(&self, input: &[Word]) -> bool {
        if self.overflow {
            return false;
        }
        let got = self.values();
        if got.windows(2).any(|w| w[0] > w[1]) {
            return false;
        }
        let mut expect = input.to_vec();
        expect.sort_unstable();
        let mut sorted_got = got.clone();
        sorted_got.sort_unstable();
        sorted_got == expect
    }
}

fn dart_segments(s: usize, cap: usize) -> Vec<usize> {
    let mut sizes = Vec::new();
    let mut sz = (4 * s).max(8);
    while sz > 8 {
        sizes.push(sz);
        sz /= 2;
    }
    sizes.extend(std::iter::repeat_n(8, cap + 2));
    sizes
}

struct BucketDartProgram {
    n: usize,
    num_buckets: usize,
    seed: u64,
    /// Per-segment (base, size); all buckets share the same schedule shape,
    /// bucket `b`'s segment `r` lives at `seg_bases[r] + b·seg_sizes[r]`.
    seg_bases: Vec<Addr>,
    seg_sizes: Vec<usize>,
    /// Last-resort parking cells (one per item; used only on schedule
    /// exhaustion, i.e. bucket population > capacity, which the gather
    /// pass then reports as overflow).
    park_base: Addr,
}

#[derive(Default)]
struct DartState {
    bucket: usize,
    target: Addr,
    parked: bool,
}

impl BucketDartProgram {
    fn new(
        n: usize,
        num_buckets: usize,
        s: usize,
        cap: usize,
        seed: u64,
        layout: &mut Layout,
    ) -> Self {
        let seg_sizes = dart_segments(s, cap);
        let seg_bases = seg_sizes
            .iter()
            .map(|&sz| layout.alloc(sz * num_buckets))
            .collect();
        let park_base = layout.alloc(n);
        BucketDartProgram {
            n,
            num_buckets,
            seed,
            seg_bases,
            seg_sizes,
            park_base,
        }
    }

    fn slot(&self, pid: usize, bucket: usize, round: usize) -> Option<Addr> {
        if round >= self.seg_sizes.len() {
            return None;
        }
        let size = self.seg_sizes[round];
        let mut z = self
            .seed
            .wrapping_add((pid as u64).wrapping_mul(0x9e3779b97f4a7c15))
            .wrapping_add((round as u64).wrapping_mul(0xd1b54a32d192ed03));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z ^= z >> 31;
        Some(self.seg_bases[round] + bucket * size + (z % size as u64) as usize)
    }
}

impl Program for BucketDartProgram {
    type Proc = DartState;

    fn num_procs(&self) -> usize {
        self.n
    }

    fn create(&self, _pid: usize) -> DartState {
        DartState::default()
    }

    fn phase(&self, pid: usize, st: &mut DartState, env: &mut PhaseEnv<'_>) -> Status {
        let t = env.phase();
        if t == 0 {
            env.read(pid);
            return Status::Active;
        }
        if t == 1 {
            let v = env.delivered()[0].1;
            debug_assert!((0..FIXED_ONE).contains(&v), "value out of [0,1) range");
            st.bucket = ((v as i128 * self.num_buckets as i128) / FIXED_ONE as i128) as usize;
            st.target = self.slot(pid, st.bucket, 0).expect("schedule non-empty");
            env.write(st.target, pid as Word + 1);
            return Status::Active;
        }
        if st.parked {
            unreachable!("parked processors are done");
        }
        if t % 2 == 0 {
            env.read(st.target);
            Status::Active
        } else {
            if env.delivered()[0].1 == pid as Word + 1 {
                return Status::Done;
            }
            let round = (t - 1) / 2;
            match self.slot(pid, st.bucket, round) {
                Some(a) => {
                    st.target = a;
                    env.write(st.target, pid as Word + 1);
                    Status::Active
                }
                None => {
                    st.parked = true;
                    env.write(self.park_base + pid, pid as Word + 1);
                    Status::Done
                }
            }
        }
    }
}

struct GatherSortProgram {
    num_buckets: usize,
    /// Dart-region geometry, mirroring the dart program but with the region
    /// contents relocated into this program's input after the values:
    /// segment `r` of bucket `b` is at `seg_bases[r] + b·seg_sizes[r]`.
    seg_bases: Vec<Addr>,
    seg_sizes: Vec<usize>,
    final_base: Addr,
    final_cap: usize,
    status_base: Addr,
}

#[derive(Default)]
struct GatherState {
    origins: Vec<usize>,
}

impl Program for GatherSortProgram {
    type Proc = GatherState;

    fn num_procs(&self) -> usize {
        self.num_buckets
    }

    fn create(&self, _pid: usize) -> GatherState {
        GatherState::default()
    }

    fn phase(&self, pid: usize, st: &mut GatherState, env: &mut PhaseEnv<'_>) -> Status {
        match env.phase() {
            // Read the whole dart region of this bucket.
            0 => {
                for (r, &sz) in self.seg_sizes.iter().enumerate() {
                    for j in 0..sz {
                        env.read(self.seg_bases[r] + pid * sz + j);
                    }
                }
                Status::Active
            }
            // Decode origins; fetch their values.
            1 => {
                st.origins = env
                    .delivered()
                    .iter()
                    .filter(|&&(_, v)| v != 0)
                    .map(|&(_, v)| (v - 1) as usize)
                    .collect();
                for &o in &st.origins {
                    env.read(o);
                }
                env.local_ops(st.origins.len() as u64);
                Status::Active
            }
            // Sort and publish into the final region.
            _ => {
                let mut values: Vec<Word> = env.delivered().iter().map(|&(_, v)| v).collect();
                values.sort_unstable();
                let count = values.len();
                let fits = count <= self.final_cap;
                let k = count.min(self.final_cap);
                for (j, &v) in values[..k].iter().enumerate() {
                    env.write(self.final_base + pid * self.final_cap + j, v + 1);
                }
                env.write(self.status_base + pid, Word::from(!fits));
                // Charge the comparison sort.
                let c = count.max(1) as u64;
                env.local_ops(c * (64 - c.leading_zeros()) as u64);
                Status::Done
            }
        }
    }
}

/// Runs padded sort on `values` (fixed-point words in `[0, FIXED_ONE)`).
pub fn padded_sort(
    machine: &QsmMachine,
    values: &[Word],
    params: PaddedSortParams,
) -> Result<PaddedSortOutcome> {
    assert!(!values.is_empty(), "padded sort of an empty input");
    assert!(
        values.iter().all(|&v| (0..FIXED_ONE).contains(&v)),
        "values must be fixed-point in [0, FIXED_ONE)"
    );
    let n = values.len();
    let s = params.bucket_size.max(1);
    let num_buckets = n.div_ceil(s).max(1);
    let cap = s + params.pad;

    // Pass 1: darts.
    let mut layout = Layout::new(n);
    let darts = BucketDartProgram::new(n, num_buckets, s, cap, params.seed, &mut layout);
    let seg_sizes = darts.seg_sizes.clone();
    let dart_bases = darts.seg_bases.clone();
    let park_base = darts.park_base;
    let run1 = machine.run(&darts, values)?;
    let parked = (0..n).any(|i| run1.memory.get(park_base + i) != 0);

    // Pass 2 input: values ++ relocated dart regions.
    let mut input = values.to_vec();
    let mut seg_bases = Vec::with_capacity(seg_sizes.len());
    for (r, &sz) in seg_sizes.iter().enumerate() {
        seg_bases.push(input.len());
        for b in 0..num_buckets {
            for j in 0..sz {
                input.push(run1.memory.get(dart_bases[r] + b * sz + j));
            }
        }
        // Re-index: segment r of bucket b is contiguous within the block.
        let _ = r;
    }
    let mut layout2 = Layout::new(input.len());
    let gather = GatherSortProgram {
        num_buckets,
        seg_bases,
        seg_sizes,
        final_base: layout2.alloc(num_buckets * cap),
        final_cap: cap,
        status_base: layout2.alloc(num_buckets),
    };
    let final_base = gather.final_base;
    let status_base = gather.status_base;
    let run2 = machine.run(&gather, &input)?;

    let overflow = parked || (0..num_buckets).any(|b| run2.memory.get(status_base + b) != 0);
    let output = run2.memory.slice(final_base, num_buckets * cap);
    Ok(PaddedSortOutcome {
        output,
        overflow,
        runs: vec![run1, run2],
    })
}

/// Padded sort with the default parameters for `n`.
pub fn padded_sort_default(
    machine: &QsmMachine,
    values: &[Word],
    seed: u64,
) -> Result<PaddedSortOutcome> {
    padded_sort(machine, values, PaddedSortParams::for_n(values.len(), seed))
}

/// Output array size of a padded sort of `n` values: `n + o(n)` with the
/// default parameters.
pub fn padded_output_size(n: usize, params: &PaddedSortParams) -> usize {
    let s = params.bucket_size.max(1);
    n.div_ceil(s).max(1) * (s + params.pad)
}

/// Declared cost envelope of [`padded_sort_default`]: the bucket gather
/// dominates at `O(lg²n·(g + lg lg n))` QSM time with the default
/// `s = lg²n` buckets (Section 6.2).
pub fn cost_contract() -> parbounds_models::CostContract {
    parbounds_models::CostContract::new("padded-sort", "QSM", "O(lg²n·(g + lg lg n))", |p| {
        p.lg_n() * p.lg_n() * (p.g + p.lg_n().log2().max(1.0))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::uniform_values;
    use parbounds_models::QsmMachine;

    #[test]
    fn sorts_uniform_values() {
        let m = QsmMachine::qsm(2);
        for n in [8usize, 64, 500, 2000] {
            let input = uniform_values(n, n as u64);
            let out = padded_sort_default(&m, &input, 1).unwrap();
            assert!(out.verify(&input), "n={n}");
        }
    }

    #[test]
    fn handles_duplicates() {
        let m = QsmMachine::qsm(1);
        let mut input = uniform_values(100, 3);
        for i in 0..50 {
            input[i] = input[0];
        }
        let out = padded_sort_default(&m, &input, 2).unwrap();
        assert!(out.verify(&input));
    }

    #[test]
    fn output_is_n_plus_little_o() {
        // With s = log^2 n the padding is o(n): check the ratio shrinks.
        let p14 = PaddedSortParams::for_n(1 << 14, 0);
        let p20 = PaddedSortParams::for_n(1 << 20, 0);
        let ratio14 = padded_output_size(1 << 14, &p14) as f64 / (1 << 14) as f64;
        let ratio20 = padded_output_size(1 << 20, &p20) as f64 / (1 << 20) as f64;
        assert!(
            ratio20 < ratio14,
            "padding ratio must shrink: {ratio14} vs {ratio20}"
        );
        assert!(ratio20 < 2.0);
    }

    #[test]
    fn tiny_inputs() {
        let m = QsmMachine::qsm(1);
        let input = vec![5, 3, 4];
        let out = padded_sort_default(&m, &input, 7).unwrap();
        assert!(out.verify(&input));
        assert_eq!(out.values(), vec![3, 4, 5]);
    }

    #[test]
    fn seed_changes_layout_not_values() {
        let m = QsmMachine::qsm(1);
        let input = uniform_values(200, 9);
        let a = padded_sort_default(&m, &input, 1).unwrap();
        let b = padded_sort_default(&m, &input, 2).unwrap();
        assert_eq!(a.values(), b.values());
    }

    #[test]
    #[should_panic(expected = "fixed-point")]
    fn rejects_out_of_range_values() {
        let m = QsmMachine::qsm(1);
        let _ = padded_sort_default(&m, &[FIXED_ONE], 0);
    }
}

/// Exact sorting on the QSM family: padded sort followed by the
/// order-preserving prefix-sums compaction of [`crate::lac::lac_prefix`] —
/// the composition yields a dense sorted array, which is what the
/// Parity-to-sorting reduction needs on shared memory.
pub fn qsm_sort(
    machine: &QsmMachine,
    values: &[Word],
    p: usize,
    seed: u64,
) -> Result<(Vec<Word>, Vec<RunResult>)> {
    // Triple the default pad and add a bucket's worth: callers may feed
    // half-range-concentrated values (e.g. encoded bit vectors), doubling
    // per-bucket density.
    let mut params = PaddedSortParams::for_n(values.len(), seed);
    params.pad = 2 * params.pad + params.bucket_size;
    let padded = padded_sort(machine, values, params)?;
    assert!(padded.verify(values), "padded sort failed");
    // The padded output uses v+1 encoding with 0 = NULL: exactly the item
    // convention lac_prefix compacts (it preserves order).
    let compacted = crate::lac::lac_prefix(machine, &padded.output, p.min(padded.output.len()))?;
    // Decode: compacted dest holds origin indices into the padded array.
    let sorted: Vec<Word> = compacted
        .dest()
        .iter()
        .take_while(|&&v| v != 0)
        .map(|&v| padded.output[(v - 1) as usize] - 1)
        .collect();
    let mut runs = padded.runs;
    runs.push(compacted.run);
    Ok((sorted, runs))
}

#[cfg(test)]
mod sort_tests {
    use super::*;
    use crate::workloads::uniform_values;
    use parbounds_models::QsmMachine;

    #[test]
    fn qsm_sort_is_exact() {
        let m = QsmMachine::qsm(2);
        for n in [8usize, 100, 1000] {
            let values = uniform_values(n, n as u64);
            let (sorted, runs) = qsm_sort(&m, &values, 32.min(n), 3).unwrap();
            let mut expect = values.clone();
            expect.sort_unstable();
            assert_eq!(sorted, expect, "n={n}");
            assert_eq!(runs.len(), 3); // darts, gather/sort, compaction
        }
    }

    #[test]
    fn qsm_sort_handles_duplicates() {
        let m = QsmMachine::qsm(1);
        let mut values = uniform_values(64, 9);
        for i in 0..32 {
            values[i] = values[0];
        }
        let (sorted, _) = qsm_sort(&m, &values, 8, 1).unwrap();
        let mut expect = values.clone();
        expect.sort_unstable();
        assert_eq!(sorted, expect);
    }
}
