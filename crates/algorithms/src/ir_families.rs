//! Section 8 families lifted onto the PhaseIR.
//!
//! Each constructor pairs a [`PhasePlan`] with the concrete input the
//! static-vs-measured cross-validation runs it on. Where a hand-written
//! program exists in this crate (OR write tree, parity read tree,
//! broadcast, BSP reduce), the plan mirrors it request for request, and
//! the tests below assert that the IR interpreter reproduces the original
//! ledger *exactly* — same phases, same `(m_op, m_rw, κ)`, same cost.
//!
//! The OR write tree is guarded (a leaf writes only when it saw a 1), so
//! its saturating static prediction is a worst case; the family therefore
//! ships an all-ones input, on which the worst case is attained. All
//! other families are data-independent.

use crate::or_tree::or_default_fanin;
use crate::workloads::{random_bits, uniform_values};
use parbounds_ir::{
    broadcast, bsp_fan_in_reduce, bsp_prefix_scan, ceil_log, dart_round, fan_in_read_tree,
    fan_in_write_tree, prefix_sweep, scatter_gather, CombineOp, FanRecipe, ModelKind, PhasePlan,
    PlanBody, ProcPhase, ShapePoint, SharedPhase, ValueRule,
};
use parbounds_models::Word;

/// The shape point a shared-memory family is instantiated at.
fn shared_point(n: usize, g: u64) -> ShapePoint {
    ShapePoint {
        n: n as u64,
        p: n as u64,
        g,
        l: 0,
    }
}

/// The shape point a BSP family is instantiated at.
fn bsp_point(p: usize, g: u64, l: u64) -> ShapePoint {
    ShapePoint {
        n: 0,
        p: p as u64,
        g,
        l,
    }
}

/// The QSM write-combining OR tree (fan-in `max(2, g)`) on an all-ones
/// input, which saturates every guard and attains
/// [`crate::or_tree::or_write_tree_cost_max`].
pub fn or_write_tree_plan(n: usize, g: u64) -> (PhasePlan, Vec<Word>) {
    let k = FanRecipe::OrFanIn.fan(shared_point(n, g)) as usize;
    debug_assert_eq!(k, or_default_fanin(g));
    (
        fan_in_write_tree(n, k, ModelKind::Qsm { g }),
        vec![1; n.max(1)],
    )
}

/// The OR write tree padded with `⌈log₂ n⌉` busy-wait self-reads before
/// the publish phase — a deliberately asymptotically-worse schedule
/// (`Θ(g·log n)` instead of Table 1's `Θ(g·log n / log g)`) kept as the
/// fixture that must trip the `bound-regression` lint.
pub fn or_write_tree_padded_plan(n: usize, g: u64) -> (PhasePlan, Vec<Word>) {
    let (mut plan, input) = or_write_tree_plan(n, g);
    plan.family = "fan-in-write-tree-padded".into();
    if let PlanBody::Shared(phases) = &mut plan.body {
        let publish = phases.pop().expect("write tree always has a publish phase");
        for i in 0..ceil_log(n.max(1) as u64, 2) {
            let mut pad = SharedPhase::new(format!("pad-{i}"));
            // Only the root is still alive this late in the schedule; it
            // re-reads its input cell, costing a full gap `g` per phase.
            pad.procs.push(ProcPhase::idle(0).read(0));
            phases.push(pad);
        }
        phases.push(publish);
    }
    (plan, input)
}

/// The s-QSM binary parity read tree on random bits.
pub fn parity_read_tree_plan(n: usize, g: u64, seed: u64) -> (PhasePlan, Vec<Word>) {
    (
        fan_in_read_tree(n, 2, CombineOp::Xor, ModelKind::SQsm { g }),
        random_bits(n.max(1), seed),
    )
}

/// The QSM fan-out-`(g+1)` broadcast of a single word to `n` cells.
pub fn broadcast_plan(n: usize, g: u64) -> (PhasePlan, Vec<Word>) {
    let k = FanRecipe::BroadcastFanOut.fan(shared_point(n, g)) as usize;
    (broadcast(n, k, ModelKind::Qsm { g }), vec![7])
}

/// The QSM `k`-ary Hillis–Steele prefix-sums sweep over uniform values.
pub fn prefix_sweep_plan(n: usize, g: u64, seed: u64) -> (PhasePlan, Vec<Word>) {
    let k = FanRecipe::SweepFanIn.fan(shared_point(n, g)) as usize;
    (
        prefix_sweep(n, k, CombineOp::Sum, ModelKind::Qsm { g }),
        uniform_values(n.max(1), seed),
    )
}

/// A contention-free gather/scatter rotation: processor `i` reads cell
/// `(i+1) mod n` and writes it, reversed, into the output region.
pub fn scatter_gather_plan(n: usize, g: u64, seed: u64) -> (PhasePlan, Vec<Word>) {
    let n = n.max(1);
    let sources: Vec<usize> = (0..n).map(|i| (i + 1) % n).collect();
    let dests: Vec<usize> = (0..n).map(|i| n + (n - 1 - i)).collect();
    (
        scatter_gather(&sources, &dests, ModelKind::Qsm { g }),
        uniform_values(n, seed),
    )
}

/// The BSP fan-in-`max(2, L/g)` parity reduction over `n` random bits
/// partitioned across `p` components.
pub fn bsp_reduce_plan(p: usize, g: u64, l: u64, n: usize, seed: u64) -> (PhasePlan, Vec<Word>) {
    let k = FanRecipe::BspFanIn.fan(bsp_point(p, g, l)) as usize;
    (
        bsp_fan_in_reduce(p, k, CombineOp::Xor, g, l),
        random_bits(n.max(1), seed),
    )
}

/// The BSP `k`-ary doubling prefix scan of partition sums.
pub fn bsp_prefix_scan_plan(
    p: usize,
    g: u64,
    l: u64,
    n: usize,
    seed: u64,
) -> (PhasePlan, Vec<Word>) {
    let k = FanRecipe::BspFanIn.fan(bsp_point(p, g, l)) as usize;
    (
        bsp_prefix_scan(p, k, CombineOp::Sum, g, l),
        uniform_values(n.max(1), seed),
    )
}

/// A deliberately racy dart round: four processors throw *different*
/// constants at cell 0 in the same phase. The static certifier must
/// refuse to certify it, and the exhaustive dynamic detector must exhibit
/// an arbitration witness.
pub fn racy_plan() -> (PhasePlan, Vec<Word>) {
    let targets: Vec<(usize, ValueRule)> = (0..4)
        .map(|pid| (0usize, ValueRule::Const(pid as Word + 1)))
        .collect();
    (dart_round(&targets, ModelKind::Qsm { g: 8 }), Vec::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broadcast::broadcast as broadcast_algo;
    use crate::bsp_algos::bsp_reduce;
    use crate::or_tree::or_write_tree;
    use crate::reduce::parity_read_tree;
    use crate::util::ReduceOp;
    use parbounds_ir::execute_plan;
    use parbounds_models::{BspMachine, QsmMachine};

    #[test]
    fn or_write_tree_plan_mirrors_original_ledger() {
        for (n, g) in [(1usize, 2u64), (7, 2), (16, 4), (33, 8), (100, 8)] {
            let (plan, input) = or_write_tree_plan(n, g);
            let run = execute_plan(&plan, &input).unwrap();
            let machine = QsmMachine::qsm(g);
            let orig = or_write_tree(&machine, &input, or_default_fanin(g)).unwrap();
            assert_eq!(run.ledger, orig.run.ledger, "n={n} g={g}");
            assert_eq!(run.output, vec![orig.value]);
        }
    }

    #[test]
    fn parity_read_tree_plan_mirrors_original_ledger() {
        for (n, g) in [(1usize, 2u64), (2, 2), (9, 4), (31, 8)] {
            let (plan, input) = parity_read_tree_plan(n, g, 11);
            let run = execute_plan(&plan, &input).unwrap();
            let machine = QsmMachine::sqsm(g);
            let orig = parity_read_tree(&machine, &input, 2).unwrap();
            assert_eq!(run.ledger, orig.run.ledger, "n={n} g={g}");
            assert_eq!(run.output, vec![orig.value]);
        }
    }

    #[test]
    fn broadcast_plan_mirrors_original_ledger() {
        for (n, g) in [(1usize, 2u64), (5, 2), (17, 4), (64, 8)] {
            let (plan, input) = broadcast_plan(n, g);
            let run = execute_plan(&plan, &input).unwrap();
            let machine = QsmMachine::qsm(g);
            let orig = broadcast_algo(&machine, input[0], n, (g as usize + 1).max(2)).unwrap();
            assert_eq!(run.ledger, orig.run.ledger, "n={n} g={g}");
            assert_eq!(run.output, orig.values);
        }
    }

    #[test]
    fn bsp_reduce_plan_mirrors_original_ledger() {
        for (p, g, l, n) in [(1usize, 2u64, 8u64, 5usize), (4, 2, 8, 16), (16, 4, 32, 64)] {
            let (plan, input) = bsp_reduce_plan(p, g, l, n, 5);
            let run = execute_plan(&plan, &input).unwrap();
            let machine = BspMachine::new(p, g, l).unwrap();
            let k = ((l / g) as usize).max(2);
            let orig = bsp_reduce(&machine, &input, k, ReduceOp::Xor).unwrap();
            assert_eq!(run.ledger, orig.ledger, "p={p} g={g} l={l}");
            assert_eq!(run.output[0], orig.value);
        }
    }

    #[test]
    fn prefix_and_scatter_plans_compute_correct_values() {
        let (plan, input) = prefix_sweep_plan(23, 4, 3);
        let run = execute_plan(&plan, &input).unwrap();
        let mut acc = 0;
        let want: Vec<Word> = input
            .iter()
            .map(|&x| {
                acc += x;
                acc
            })
            .collect();
        assert_eq!(run.output, want);

        let (plan, input) = scatter_gather_plan(9, 4, 3);
        let run = execute_plan(&plan, &input).unwrap();
        let want: Vec<Word> = (0..9).rev().map(|i| input[(i + 1) % 9]).collect();
        assert_eq!(run.output, want);
    }

    #[test]
    fn every_family_plan_takes_the_compiled_path() {
        use parbounds_ir::{compile_plan, execute_plan_compiled, CompileOutcome};
        let plans: Vec<(PhasePlan, Vec<Word>)> = vec![
            or_write_tree_plan(33, 8),
            parity_read_tree_plan(33, 8, 7),
            broadcast_plan(33, 8),
            prefix_sweep_plan(33, 8, 7),
            scatter_gather_plan(33, 8, 7),
            bsp_reduce_plan(8, 2, 8, 33, 7),
            bsp_prefix_scan_plan(8, 2, 8, 33, 7),
        ];
        for (plan, input) in &plans {
            match compile_plan(plan).unwrap() {
                CompileOutcome::Compiled(_) => {}
                CompileOutcome::Ineligible(why) => {
                    panic!("'{}' must compile: {}", plan.family, why.describe())
                }
            }
            assert_eq!(
                execute_plan_compiled(plan, input).unwrap(),
                execute_plan(plan, input).unwrap(),
                "compiled run diverges for '{}'",
                plan.family
            );
        }
        let (racy, _) = racy_plan();
        assert!(
            matches!(compile_plan(&racy).unwrap(), CompileOutcome::Ineligible(_)),
            "the racy fixture is the inverse witness and must stay ineligible"
        );
    }

    #[test]
    fn bsp_prefix_scan_plan_scans_partition_folds() {
        let (plan, input) = bsp_prefix_scan_plan(6, 2, 8, 20, 9);
        let run = execute_plan(&plan, &input).unwrap();
        let machine = BspMachine::new(6, 2, 8).unwrap();
        let parts: Vec<Word> = machine
            .partition(&input)
            .iter()
            .map(|s| s.iter().sum())
            .collect();
        let mut acc = 0;
        let want: Vec<Word> = parts
            .iter()
            .map(|&x| {
                acc += x;
                acc
            })
            .collect();
        assert_eq!(run.output, want);
    }
}
