//! Load Balancing (Section 6.2): `h` objects distributed among `n`
//! processors are redistributed so every processor holds `O(1 + h/n)`.
//!
//! Implementation: a prefix-sums pass over the per-processor object counts
//! assigns every object a global rank `r`; object `r` goes to mailbox row
//! `r mod n`, which bounds every destination's load by `⌈h/n⌉` — within the
//! paper's `O(1 + h/n)` with constant 1. A final receive phase has each
//! destination read its row. The prefix pass is the rounds-respecting
//! machinery of [`crate::prefix`]; the scatter/receive phases move at most
//! `max_count` and `⌈h/n⌉` words per processor respectively.
//!
//! Objects are encoded as `source·(max_count+1) + j + 1` — object `j` of
//! source processor `source` — so the verifier can check that every object
//! arrives exactly once.

use parbounds_models::{Addr, PhaseEnv, Program, QsmMachine, Result, RunResult, Status, Word};

use crate::prefix::prefix_in_rounds;
use crate::util::{Layout, ReduceOp};

/// Outcome of a load-balancing run.
#[derive(Debug)]
pub struct BalanceOutcome {
    /// `mailbox[d]` = objects delivered to destination `d`.
    pub mailbox: Vec<Vec<Word>>,
    /// Execution records: the prefix pass and the scatter/receive pass.
    pub runs: Vec<RunResult>,
}

impl BalanceOutcome {
    /// Total model time across both passes.
    pub fn total_time(&self) -> u64 {
        self.runs.iter().map(|r| r.ledger.total_time()).sum()
    }

    /// Total phases across both passes.
    pub fn total_phases(&self) -> usize {
        self.runs.iter().map(|r| r.ledger.num_phases()).sum()
    }

    /// Maximum number of objects any destination received.
    pub fn max_load(&self) -> usize {
        self.mailbox.iter().map(|m| m.len()).max().unwrap_or(0)
    }

    /// Checks that every `(source, j)` object with `j < counts[source]`
    /// arrives exactly once, and that loads are balanced to `⌈h/n⌉`.
    pub fn verify(&self, counts: &[Word]) -> bool {
        let n = counts.len();
        let h: Word = counts.iter().sum();
        let k = n.max(1) as Word;
        let cap = h.div_euclid(k) + Word::from(h % k != 0);
        if self.max_load() as Word > cap.max(1) {
            return false;
        }
        let w = counts.iter().copied().max().unwrap_or(0) + 1;
        let mut seen = std::collections::HashSet::new();
        for row in &self.mailbox {
            for &obj in row {
                let src = (obj - 1) / w;
                let j = (obj - 1) % w;
                if src as usize >= n || j >= counts[src as usize] || !seen.insert(obj) {
                    return false;
                }
            }
        }
        seen.len() as Word == h
    }
}

struct ScatterProgram {
    n: usize,
    /// Object-id stride: `max_count + 1`.
    w: Word,
    /// Mailbox row capacity.
    cap: usize,
    counts_base: Addr,
    prefix_base: Addr,
    mailbox_base: Addr,
}

#[derive(Default)]
struct ScatterProc {
    received: Vec<Word>,
}

impl Program for ScatterProgram {
    type Proc = ScatterProc;

    fn num_procs(&self) -> usize {
        self.n
    }

    fn create(&self, _pid: usize) -> ScatterProc {
        ScatterProc::default()
    }

    fn phase(&self, pid: usize, st: &mut ScatterProc, env: &mut PhaseEnv<'_>) -> Status {
        match env.phase() {
            // Read own count and inclusive prefix.
            0 => {
                env.read(self.counts_base + pid);
                env.read(self.prefix_base + pid);
                Status::Active
            }
            // Scatter objects to mailbox rows by global rank.
            1 => {
                let count = env.delivered()[0].1;
                let incl = env.delivered()[1].1;
                let offset = incl - count; // exclusive prefix
                for j in 0..count {
                    let rank = offset + j;
                    let dest = (rank % self.n as Word) as usize;
                    let slot = (rank / self.n as Word) as usize;
                    let obj = pid as Word * self.w + j + 1;
                    env.write(self.mailbox_base + dest * self.cap + slot, obj);
                }
                Status::Active
            }
            // Receive: read own mailbox row.
            2 => {
                for s in 0..self.cap {
                    env.read(self.mailbox_base + pid * self.cap + s);
                }
                Status::Active
            }
            _ => {
                st.received = env
                    .delivered()
                    .iter()
                    .map(|&(_, v)| v)
                    .filter(|&v| v != 0)
                    .collect();
                Status::Done
            }
        }
    }
}

/// Balances `counts[i]` objects held by each of `n = counts.len()` source
/// processors, using `p` processors for the prefix pass.
pub fn load_balance(machine: &QsmMachine, counts: &[Word], p: usize) -> Result<BalanceOutcome> {
    assert!(!counts.is_empty(), "no processors to balance");
    assert!(counts.iter().all(|&c| c >= 0), "negative object count");
    let n = counts.len();
    let prefix = prefix_in_rounds(machine, counts, p, ReduceOp::Sum)?;
    let h = *prefix.values.last().unwrap();
    let cap = ((h as usize).div_ceil(n)).max(1);
    let w = counts.iter().copied().max().unwrap_or(0) + 1;

    // Second pass input: counts ++ prefix.
    let mut input = counts.to_vec();
    input.extend_from_slice(&prefix.values);
    let mut layout = Layout::new(input.len());
    let prog = ScatterProgram {
        n,
        w,
        cap,
        counts_base: 0,
        prefix_base: n,
        mailbox_base: layout.alloc(n * cap),
    };
    let mailbox_base = prog.mailbox_base;
    let run2 = machine.run(&prog, &input)?;

    let mut mailbox = Vec::with_capacity(n);
    for d in 0..n {
        let row = run2.memory.slice(mailbox_base + d * cap, cap);
        mailbox.push(row.into_iter().filter(|&v| v != 0).collect());
    }
    Ok(BalanceOutcome {
        mailbox,
        runs: vec![prefix.run, run2],
    })
}

/// Declared cost envelope of [`load_balance`] with bounded per-processor
/// counts: the prefix pass dominates at `O(g·(n/p)·lg n / lg(n/p))` QSM
/// time (Section 6.2; scatter and receive add `O(g·(1 + h/n))`).
pub fn cost_contract() -> parbounds_models::CostContract {
    parbounds_models::CostContract::new("load-balance", "QSM", "O(g·(n/p)·lg n / lg(n/p))", |p| {
        let b = (p.n / p.p).max(2.0);
        p.g * b * p.lg_n() / b.log2()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use parbounds_models::QsmMachine;

    fn counts_from(seed: u64, n: usize, max_c: Word) -> Vec<Word> {
        (0..n)
            .map(|i| {
                let mut z = seed.wrapping_add((i as u64).wrapping_mul(0x9e3779b97f4a7c15));
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                (z >> 40) as Word % (max_c + 1)
            })
            .collect()
    }

    #[test]
    fn balances_skewed_counts() {
        let m = QsmMachine::qsm(2);
        // All objects start at one processor.
        let mut counts = vec![0 as Word; 16];
        counts[3] = 32;
        let out = load_balance(&m, &counts, 4).unwrap();
        assert!(out.verify(&counts));
        assert_eq!(out.max_load(), 2); // ceil(32/16)
    }

    #[test]
    fn balances_random_counts_across_p() {
        let m = QsmMachine::qsm(2);
        let counts = counts_from(5, 64, 7);
        for p in [1usize, 8, 64] {
            let out = load_balance(&m, &counts, p).unwrap();
            assert!(out.verify(&counts), "p={p}");
        }
    }

    #[test]
    fn empty_load_is_fine() {
        let m = QsmMachine::qsm(1);
        let counts = vec![0 as Word; 8];
        let out = load_balance(&m, &counts, 2).unwrap();
        assert!(out.verify(&counts));
        assert_eq!(out.max_load(), 0);
    }

    #[test]
    fn load_bound_is_ceil_h_over_n() {
        let m = QsmMachine::qsm(1);
        let counts = vec![3 as Word; 10]; // h = 30, n = 10
        let out = load_balance(&m, &counts, 5).unwrap();
        assert!(out.verify(&counts));
        assert_eq!(out.max_load(), 3);
    }

    #[test]
    fn verifier_rejects_tampered_mailboxes() {
        let m = QsmMachine::qsm(1);
        let counts = vec![2 as Word; 4];
        let mut out = load_balance(&m, &counts, 2).unwrap();
        assert!(out.verify(&counts));
        // Duplicate an object.
        let obj = out.mailbox[0][0];
        out.mailbox[1].push(obj);
        assert!(!out.verify(&counts));
    }

    #[test]
    fn scatter_contention_is_one() {
        // Distinct global ranks map to distinct mailbox cells.
        let m = QsmMachine::qsm(2);
        let counts = counts_from(9, 32, 5);
        let out = load_balance(&m, &counts, 8).unwrap();
        assert_eq!(out.runs[1].ledger.max_contention(), 1);
    }
}
