//! `p`-processor prefix sums that *compute in rounds* (Section 2.3).
//!
//! The paper's rounds upper bounds ("the simple algorithm based on
//! computing prefix sums", Section 8) all reduce to this construction: with
//! `b = ⌈n/p⌉`, a processor can move `b` words per phase within the round
//! budget `O(g·n/p)`, so a fan-in-`b` tree over the `p` block sums finishes
//! in `Θ(log p / log(n/p)) = Θ(log n / log(n/p))` rounds — matching the
//! rounds lower bounds for Parity/OR on the s-QSM and BSP (sub-table 4),
//! where the bound is tight.
//!
//! Every phase of this program costs at most `2·g·⌈n/p⌉` (the factor-2
//! slack appears only in the degenerate `n/p = 1` case, where the fan-in
//! floor of 2 exceeds the block size).

use parbounds_models::{Addr, PhaseEnv, Program, QsmMachine, Result, Status, Word};

use crate::util::{Layout, ReduceOp, TreeShape};
use crate::VecOutcome;

struct PrefixProgram {
    n: usize,
    p: usize,
    b: usize,
    f: usize,
    op: ReduceOp,
    shape: TreeShape,
    /// `partials[l]` = base of the level-`l` partial-sum cells.
    partials: Vec<Addr>,
    /// `offsets[l]` = base of the level-`l` offset cells (`l < depth`).
    offsets: Vec<Addr>,
    out: Addr,
}

#[derive(Default)]
struct PrefixProc {
    local: Vec<Word>,
    /// `child_sums[l-1]` = the sums of this node's children at up-sweep
    /// level `l` (only for processors that are level-`l` nodes).
    child_sums: Vec<Vec<Word>>,
    offset: Word,
}

impl PrefixProgram {
    fn new(n: usize, p: usize, op: ReduceOp, layout: &mut Layout) -> Self {
        assert!(n > 0, "prefix of an empty input");
        assert!(p >= 1 && p <= n, "need 1 <= p <= n (got p={p}, n={n})");
        let b = n.div_ceil(p);
        let f = b.max(2);
        let shape = TreeShape::new(p, f);
        let mut partials = Vec::with_capacity(shape.widths.len());
        for &w in &shape.widths {
            partials.push(layout.alloc(w));
        }
        let mut offsets = Vec::with_capacity(shape.depth());
        for &w in &shape.widths[..shape.depth()] {
            offsets.push(layout.alloc(w));
        }
        let out = layout.alloc(n);
        PrefixProgram {
            n,
            p,
            b,
            f,
            op,
            shape,
            partials,
            offsets,
            out,
        }
    }

    fn depth(&self) -> usize {
        self.shape.depth()
    }

    /// Block range of processor `i`.
    fn block(&self, i: usize) -> (usize, usize) {
        let lo = (i * self.b).min(self.n);
        let hi = ((i + 1) * self.b).min(self.n);
        (lo, hi)
    }
}

impl Program for PrefixProgram {
    type Proc = PrefixProc;

    fn num_procs(&self) -> usize {
        self.p
    }

    fn create(&self, _pid: usize) -> PrefixProc {
        PrefixProc::default()
    }

    fn phase(&self, pid: usize, st: &mut PrefixProc, env: &mut PhaseEnv<'_>) -> Status {
        let d = self.depth();
        let t = env.phase();
        let (lo, hi) = self.block(pid);
        match t {
            // Read the local block.
            0 => {
                for a in lo..hi {
                    env.read(a);
                }
                Status::Active
            }
            // Publish the block sum as the level-0 partial.
            1 => {
                st.local = env.delivered().iter().map(|&(_, v)| v).collect();
                if d == 0 {
                    // p == 1: no tree; go straight to output.
                    st.offset = self.op.identity();
                    let mut acc = st.offset;
                    for (j, &v) in st.local.iter().enumerate() {
                        acc = self.op.apply(acc, v);
                        env.write(self.out + lo + j, acc);
                    }
                    return Status::Done;
                }
                env.write(self.partials[0] + pid, self.op.fold(&st.local));
                Status::Active
            }
            // Up-sweep: level l occupies phases 2l and 2l+1.
            t if t < 2 * d + 2 => {
                let l = t / 2;
                let reading = t % 2 == 0;
                if pid < self.shape.widths[l] {
                    if reading {
                        let children = self.shape.children_of(l, pid);
                        for m in 0..children {
                            env.read(self.partials[l - 1] + pid * self.f + m);
                        }
                    } else {
                        let sums: Vec<Word> = env.delivered().iter().map(|&(_, v)| v).collect();
                        // The root partial (l == d) is never read: the
                        // down-sweep derives offsets from in-state child
                        // sums, so publishing it would be a dead write.
                        if l < d {
                            env.write(self.partials[l] + pid, self.op.fold(&sums));
                        }
                        while st.child_sums.len() < l {
                            st.child_sums.push(Vec::new());
                        }
                        st.child_sums[l - 1] = sums;
                    }
                }
                Status::Active
            }
            // Down-sweep: level l (from d down to 1) occupies phases
            // 2d+2+2(d-l) and the following one.
            t if t < 4 * d + 2 => {
                let step = t - (2 * d + 2);
                let l = d - step / 2;
                let reading = step.is_multiple_of(2);
                if pid < self.shape.widths[l] {
                    if reading {
                        if l < d {
                            env.read(self.offsets[l] + pid);
                        }
                    } else {
                        st.offset = if l < d {
                            env.delivered()[0].1
                        } else {
                            self.op.identity()
                        };
                        let children = self.shape.children_of(l, pid);
                        let mut acc = st.offset;
                        for m in 0..children {
                            env.write(self.offsets[l - 1] + pid * self.f + m, acc);
                            acc = self.op.apply(acc, st.child_sums[l - 1][m]);
                        }
                    }
                }
                Status::Active
            }
            // Fetch the block offset.
            t if t == 4 * d + 2 => {
                env.read(self.offsets[0] + pid);
                Status::Active
            }
            // Write the inclusive prefixes for the local block.
            _ => {
                st.offset = env.delivered()[0].1;
                let mut acc = st.offset;
                for (j, &v) in st.local.iter().enumerate() {
                    acc = self.op.apply(acc, v);
                    env.write(self.out + lo + j, acc);
                }
                Status::Done
            }
        }
    }
}

/// Computes the inclusive prefix of `input` under `op` with `p` processors,
/// computing in rounds. Returns the prefix array.
/// ```
/// use parbounds_algo::{prefix::prefix_in_rounds, util::ReduceOp};
/// use parbounds_models::QsmMachine;
///
/// let machine = QsmMachine::qsm(2);
/// let out = prefix_in_rounds(&machine, &[1, 2, 3, 4], 2, ReduceOp::Sum).unwrap();
/// assert_eq!(out.values, vec![1, 3, 6, 10]);
/// ```
pub fn prefix_in_rounds(
    machine: &QsmMachine,
    input: &[Word],
    p: usize,
    op: ReduceOp,
) -> Result<VecOutcome> {
    let mut layout = Layout::new(input.len());
    let prog = PrefixProgram::new(input.len(), p, op, &mut layout);
    let out = prog.out;
    let n = prog.n;
    let run = machine.run(&prog, input)?;
    let values = run.memory.slice(out, n);
    Ok(VecOutcome { values, run })
}

/// Number of phases (= rounds) [`prefix_in_rounds`] takes: `4·depth + 4`
/// where `depth = ⌈log_{max(2, n/p)} p⌉` — the `Θ(log n / log(n/p))` of
/// sub-table 4 (or 2 phases when `p = 1`).
pub fn prefix_rounds_count(n: usize, p: usize) -> usize {
    let b = n.div_ceil(p).max(2);
    let d = TreeShape::new(p, b).depth();
    if d == 0 {
        2
    } else {
        4 * d + 4
    }
}

/// Round budget respected by every phase of [`prefix_in_rounds`]:
/// `2·g·⌈n/p⌉` (slack 2 covers the fan-in floor at `n = p`).
pub fn prefix_round_budget(n: usize, p: usize, g: u64) -> u64 {
    parbounds_models::round_budget_qsm(n as u64, p as u64, g, 2)
}

/// Declared envelope of [`prefix_in_rounds`] measured in *rounds*:
/// `Θ(lg n / lg(n/p))` phases (Section 2.3 / sub-table 4).
pub fn cost_contract() -> parbounds_models::CostContract {
    parbounds_models::CostContract::new("prefix-rounds", "QSM", "Θ(lg n / lg(n/p))", |p| {
        1.0 + p.lg_n() / (p.n / p.p).max(2.0).log2()
    })
    .with_metric(parbounds_models::ContractMetric::Phases)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parbounds_models::QsmMachine;

    fn seq(n: usize) -> Vec<Word> {
        (1..=n as Word).collect()
    }

    fn expected_prefix(input: &[Word], op: ReduceOp) -> Vec<Word> {
        let mut acc = op.identity();
        input
            .iter()
            .map(|&v| {
                acc = op.apply(acc, v);
                acc
            })
            .collect()
    }

    #[test]
    fn prefix_sum_correct_across_p() {
        let n = 100;
        let input = seq(n);
        for p in [1usize, 2, 3, 7, 10, 50, 100] {
            let m = QsmMachine::qsm(2);
            let out = prefix_in_rounds(&m, &input, p, ReduceOp::Sum).unwrap();
            assert_eq!(out.values, expected_prefix(&input, ReduceOp::Sum), "p={p}");
        }
    }

    #[test]
    fn prefix_works_for_all_ops() {
        let input: Vec<Word> = vec![3, 0, 1, 5, 1, 0, 2, 4, 4, 1, 1];
        let m = QsmMachine::sqsm(3);
        for op in [ReduceOp::Sum, ReduceOp::Or, ReduceOp::Xor, ReduceOp::Max] {
            let out = prefix_in_rounds(&m, &input, 4, op).unwrap();
            assert_eq!(out.values, expected_prefix(&input, op), "{op:?}");
        }
    }

    #[test]
    fn phase_count_matches_formula() {
        for (n, p) in [
            (64usize, 8usize),
            (100, 10),
            (1000, 100),
            (256, 256),
            (50, 1),
        ] {
            let m = QsmMachine::qsm(1);
            let out = prefix_in_rounds(&m, &seq(n), p, ReduceOp::Sum).unwrap();
            assert_eq!(
                out.run.ledger.num_phases(),
                prefix_rounds_count(n, p),
                "n={n} p={p}"
            );
        }
    }

    #[test]
    fn every_phase_fits_the_round_budget() {
        for (n, p) in [
            (64usize, 8usize),
            (1024, 32),
            (1000, 250),
            (128, 128),
            (100, 1),
        ] {
            for g in [1u64, 4] {
                let m = QsmMachine::qsm(g);
                let out = prefix_in_rounds(&m, &seq(n), p, ReduceOp::Sum).unwrap();
                let budget = prefix_round_budget(n, p, g);
                assert!(
                    out.run.ledger.is_round_respecting(budget),
                    "n={n} p={p} g={g}: max phase {} > budget {budget}",
                    out.run.ledger.max_phase_cost()
                );
            }
        }
    }

    #[test]
    fn rounds_shrink_as_blocks_grow() {
        // Theta(log n / log(n/p)): larger n/p means fewer rounds.
        let n = 1 << 14;
        let r_big_p = prefix_rounds_count(n, n / 2); // n/p = 2
        let r_small_p = prefix_rounds_count(n, n / 256); // n/p = 256
        assert!(r_small_p < r_big_p, "{r_small_p} !< {r_big_p}");
        // And matches the formula shape: depth = ceil(log_{n/p} p).
        assert_eq!(prefix_rounds_count(n, n / 256), 4 + 4); // ceil(log_256 64) = 1
    }

    #[test]
    fn work_is_near_linear_for_few_rounds() {
        // An r-round computation does at most O(r·g·n) work (Section 2.3).
        let n = 4096;
        let p = 64;
        let g = 2;
        let m = QsmMachine::qsm(g);
        let out = prefix_in_rounds(&m, &seq(n), p, ReduceOp::Sum).unwrap();
        let r = out.run.ledger.num_phases() as u64;
        assert!(out.run.ledger.work(p as u64) <= r * 2 * g * n as u64);
    }

    #[test]
    fn single_processor_degenerates_to_sequential() {
        let input = seq(17);
        let m = QsmMachine::qsm(2);
        let out = prefix_in_rounds(&m, &input, 1, ReduceOp::Sum).unwrap();
        assert_eq!(out.values, expected_prefix(&input, ReduceOp::Sum));
        assert_eq!(out.run.ledger.num_phases(), 2);
    }

    #[test]
    fn ragged_blocks_are_handled() {
        // n not divisible by p: last blocks shorter/empty.
        let input = seq(13);
        let m = QsmMachine::qsm(1);
        for p in [4usize, 5, 6, 13] {
            let out = prefix_in_rounds(&m, &input, p, ReduceOp::Sum).unwrap();
            assert_eq!(out.values, expected_prefix(&input, ReduceOp::Sum), "p={p}");
        }
    }

    #[test]
    #[should_panic(expected = "1 <= p <= n")]
    fn more_procs_than_items_rejected() {
        let m = QsmMachine::qsm(1);
        let _ = prefix_in_rounds(&m, &[1, 2], 3, ReduceOp::Sum);
    }
}
