//! Static-vs-measured cross-validation of the IR-lifted Section 8
//! families on a deterministic `(n, p, g, L)` grid.
//!
//! The static analyzer claims to reproduce the simulator's ledger without
//! running anything; these tests hold it to that claim *cell for cell* —
//! every phase's `(m_op, m_rw, κ, cost)` — and anchor the predicted
//! totals against the paper's closed forms where those are exact. The
//! racy fixture closes the loop in the other direction: the certificate
//! the static pass refuses must correspond to a divergence the dynamic
//! exhaustive detector of PR 2 can actually exhibit.

use parbounds_algo::bsp_algos::bsp_reduce_supersteps;
use parbounds_algo::ir_families::{
    broadcast_plan, bsp_prefix_scan_plan, bsp_reduce_plan, or_write_tree_plan,
    parity_read_tree_plan, prefix_sweep_plan, racy_plan, scatter_gather_plan,
};
use parbounds_algo::or_tree::{or_default_fanin, or_write_tree_cost_max};
use parbounds_algo::reduce::tree_reduce_cost;
use parbounds_analyze::{
    analyze_static_all, certify_writes, cross_validate, detect_races_qsm, predict_ledger,
    RaceConfig, WriteCertificate, IR_FAMILIES,
};
use parbounds_ir::{IrProgram, ModelKind, OutputDecl, PhasePlan};
use parbounds_models::{QsmMachine, Word};

const NS: [usize; 5] = [1, 9, 33, 100, 257];
const GS: [u64; 3] = [2, 5, 8];

fn assert_exact(plan: &PhasePlan, input: &[Word], label: &str) {
    let cv = cross_validate(plan, input).unwrap();
    assert_eq!(
        cv.predicted.phases(),
        cv.measured.phases(),
        "{label}: static ledger must equal measured ledger cell for cell"
    );
}

#[test]
fn qsm_families_cross_validate_on_the_grid() {
    for &n in &NS {
        for &g in &GS {
            let (plan, input) = or_write_tree_plan(n, g);
            assert_exact(&plan, &input, &format!("or-write-tree n={n} g={g}"));

            let (plan, input) = parity_read_tree_plan(n, g, 41);
            assert_exact(&plan, &input, &format!("parity-read-tree n={n} g={g}"));

            let (plan, input) = broadcast_plan(n, g);
            assert_exact(&plan, &input, &format!("broadcast n={n} g={g}"));

            let (plan, input) = prefix_sweep_plan(n, g, 42);
            assert_exact(&plan, &input, &format!("prefix-sweep n={n} g={g}"));

            let (plan, input) = scatter_gather_plan(n, g, 43);
            assert_exact(&plan, &input, &format!("scatter-gather n={n} g={g}"));
        }
    }
}

#[test]
fn bsp_families_cross_validate_on_the_grid() {
    for &(p, g, l) in &[
        (1usize, 2u64, 8u64),
        (4, 2, 8),
        (8, 4, 16),
        (16, 4, 32),
        (16, 8, 64),
        (7, 3, 3),
    ] {
        for &n in &[1usize, 10, 64, 200] {
            let (plan, input) = bsp_reduce_plan(p, g, l, n, 44);
            assert_exact(
                &plan,
                &input,
                &format!("bsp-reduce p={p} g={g} l={l} n={n}"),
            );

            let (plan, input) = bsp_prefix_scan_plan(p, g, l, n, 45);
            assert_exact(
                &plan,
                &input,
                &format!("bsp-prefix-scan p={p} g={g} l={l} n={n}"),
            );
        }
    }
}

/// The predicted totals must land exactly on the closed forms the paper's
/// Section 8 analysis gives for the tree families (the broadcast closed
/// form is an upper bound, checked as such), and the BSP reduction must
/// predict exactly `ceil_log(p) + 1` supersteps.
#[test]
fn predicted_totals_match_closed_forms() {
    for &n in &NS {
        for &g in &GS {
            let (plan, _) = or_write_tree_plan(n, g);
            let predicted = predict_ledger(&plan).unwrap().total_time();
            assert_eq!(
                predicted,
                or_write_tree_cost_max(n, or_default_fanin(g), g),
                "or-write-tree n={n} g={g}"
            );

            let (plan, _) = parity_read_tree_plan(n, g, 46);
            let predicted = predict_ledger(&plan).unwrap().total_time();
            assert_eq!(predicted, tree_reduce_cost(n, 2, g), "parity n={n} g={g}");

            let (plan, _) = broadcast_plan(n, g);
            let predicted = predict_ledger(&plan).unwrap().total_time();
            let bound =
                parbounds_algo::broadcast::broadcast_cost_max(n, (g as usize + 1).max(2), g);
            assert!(
                predicted <= bound,
                "broadcast n={n} g={g}: predicted {predicted} > closed-form bound {bound}"
            );
        }
    }
    for &(p, g, l) in &[(4usize, 2u64, 8u64), (16, 4, 32), (16, 8, 64)] {
        let (plan, _) = bsp_reduce_plan(p, g, l, 64, 47);
        let k = ((l / g) as usize).max(2);
        assert_eq!(plan.num_phases(), bsp_reduce_supersteps(p, k));
    }
}

/// Statically certified race-free plans must be confirmed deterministic
/// by the PR 2 exhaustive arbitration detector at small sizes, and the
/// refused fixture must produce a concrete dynamic divergence witness.
#[test]
fn certificates_agree_with_the_exhaustive_detector() {
    let mut cfg = RaceConfig::new(3);
    cfg.exhaustive_limit = 4096;

    for family in ["or-write-tree", "prefix-sweep", "broadcast"] {
        let (plan, input) = match family {
            "or-write-tree" => or_write_tree_plan(6, 2),
            "prefix-sweep" => prefix_sweep_plan(5, 2, 48),
            _ => broadcast_plan(7, 2),
        };
        assert!(
            certify_writes(&plan).unwrap().is_race_free(),
            "{family} must certify"
        );
        let OutputDecl::Region { base, len } = plan.output else {
            panic!("shared plans declare a region");
        };
        let ModelKind::Qsm { g } = plan.model else {
            panic!("fixture families are QSM");
        };
        let prog = IrProgram::new(&plan).unwrap();
        let report =
            detect_races_qsm(&QsmMachine::qsm(g), &prog, &input, base..base + len, &cfg).unwrap();
        assert!(
            report.is_deterministic(),
            "{family}: detector contradicts the static certificate: {:?}",
            report.witness
        );
    }

    let (plan, input) = racy_plan();
    let cert = certify_writes(&plan).unwrap();
    let WriteCertificate::Racy { witnesses } = &cert else {
        panic!("racy fixture must be refused a certificate");
    };
    let prog = IrProgram::new(&plan).unwrap();
    let report = detect_races_qsm(&QsmMachine::qsm(8), &prog, &input, 0..1, &cfg).unwrap();
    let dynamic = report
        .witness
        .expect("dynamic detector must exhibit the statically predicted race");
    assert_eq!(dynamic.addr, witnesses[0].addr);
    assert_eq!(dynamic.contending_pids, witnesses[0].pids);
}

/// The standard suite must be clean end to end (this is the assertion the
/// ci.sh `parbounds analyze --static --all` gate runs in-process).
#[test]
fn full_static_suite_is_clean_at_several_sizes() {
    for n in [32usize, 256, 500] {
        let report = analyze_static_all(n, 11).unwrap();
        assert_eq!(report.families.len(), IR_FAMILIES.len());
        assert!(report.clean(), "n={n}:\n{}", report.render());
        for f in &report.families {
            assert!(f.matches, "{}: ledgers diverge at n={n}", f.family);
        }
    }
}
