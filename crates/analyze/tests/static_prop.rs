//! Property tests for the static plan analyzer: on *random* `(n, p, g,
//! L)` configurations, the per-phase sequence predicted without execution
//! must equal the executed ledger exactly, and every statically certified
//! race-free plan must be confirmed deterministic by the exhaustive
//! arbitration detector at small sizes.

use parbounds_algo::ir_families::{
    broadcast_plan, bsp_prefix_scan_plan, bsp_reduce_plan, or_write_tree_plan,
    parity_read_tree_plan, prefix_sweep_plan, scatter_gather_plan,
};
use parbounds_analyze::{certify_writes, cross_validate, detect_races_qsm, RaceConfig};
use parbounds_ir::{IrProgram, ModelKind, OutputDecl};
use parbounds_models::QsmMachine;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Shared-memory families: exact static == measured per-phase
    /// equality for arbitrary problem sizes, gaps and workload seeds.
    #[test]
    fn qsm_static_ledgers_are_exact(n in 1usize..120, g in 1u64..12, seed in any::<u64>()) {
        for (label, (plan, input)) in [
            ("or-write-tree", or_write_tree_plan(n, g)),
            ("parity-read-tree", parity_read_tree_plan(n, g, seed)),
            ("broadcast", broadcast_plan(n, g)),
            ("prefix-sweep", prefix_sweep_plan(n, g, seed)),
            ("scatter-gather", scatter_gather_plan(n, g, seed)),
        ] {
            let cv = cross_validate(&plan, &input)?;
            prop_assert_eq!(
                cv.predicted.phases(),
                cv.measured.phases(),
                "{} n={} g={}", label, n, g
            );
        }
    }

    /// BSP families: exact equality for arbitrary `(p, g, L)` with the
    /// model's `L >= g` constraint respected by construction.
    #[test]
    fn bsp_static_ledgers_are_exact(
        p in 1usize..10,
        g in 1u64..8,
        l_mult in 1u64..6,
        n in 1usize..150,
        seed in any::<u64>(),
    ) {
        let l = g * l_mult;
        for (label, (plan, input)) in [
            ("bsp-reduce", bsp_reduce_plan(p, g, l, n, seed)),
            ("bsp-prefix-scan", bsp_prefix_scan_plan(p, g, l, n, seed)),
        ] {
            let cv = cross_validate(&plan, &input)?;
            prop_assert_eq!(
                cv.predicted.phases(),
                cv.measured.phases(),
                "{} p={} g={} l={} n={}", label, p, g, l, n
            );
        }
    }

    /// Static race-freedom certificates are confirmed by the exhaustive
    /// dynamic detector on small instances (the arbitration space is
    /// enumerable there, so this is a proof, not a sample).
    #[test]
    fn certified_plans_are_dynamically_deterministic(
        n in 1usize..8,
        g in 1u64..4,
        seed in any::<u64>(),
    ) {
        let mut cfg = RaceConfig::new(seed);
        cfg.exhaustive_limit = 2048;
        for (label, (plan, input)) in [
            ("or-write-tree", or_write_tree_plan(n, g)),
            ("broadcast", broadcast_plan(n, g)),
            ("prefix-sweep", prefix_sweep_plan(n, g, seed)),
        ] {
            prop_assert!(certify_writes(&plan)?.is_race_free(), "{}", label);
            let OutputDecl::Region { base, len } = plan.output else {
                panic!("shared plans declare a region");
            };
            let ModelKind::Qsm { g } = plan.model else {
                panic!("fixture families are QSM");
            };
            let prog = IrProgram::new(&plan)?;
            let report = detect_races_qsm(
                &QsmMachine::qsm(g),
                &prog,
                &input,
                base..base + len,
                &cfg,
            )?;
            prop_assert!(
                report.is_deterministic(),
                "{} n={} g={}: {:?}", label, n, g, report.witness
            );
        }
    }
}
