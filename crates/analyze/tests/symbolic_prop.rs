//! Property tests for the symbolic cost layer: Θ-normalization must be
//! idempotent, expression simplification must preserve exact evaluation,
//! and — the load-bearing property — every family's symbolic ledger
//! evaluated at a *random* `(n, p, g, L)` point must equal the numeric
//! `predict_ledger` of the instantiated plan cell for cell.

use parbounds_analyze::symbolic::expr::build::{add, c, cdiv, clog, maxx, mul};
use parbounds_analyze::symbolic::{
    grid_differential, predict_ledger_symbolic, theta, GridPoint, SymExpr, SYMBOLIC_FAMILIES,
};
use proptest::prelude::*;

/// A small pool of structurally diverse expressions, indexed by the
/// proptest-drawn selector (expressions are built deterministically; the
/// randomness is in which ones and at which points we evaluate).
fn expr_pool() -> Vec<SymExpr> {
    vec![
        mul(vec![SymExpr::G, clog(SymExpr::N, SymExpr::G)]),
        mul(vec![SymExpr::G, clog(SymExpr::N, c(2))]),
        mul(vec![
            SymExpr::L,
            clog(SymExpr::P, cdiv(SymExpr::L, SymExpr::G)),
        ]),
        maxx(vec![
            cdiv(SymExpr::N, SymExpr::P),
            mul(vec![SymExpr::G, clog(SymExpr::P, c(2))]),
        ]),
        add(vec![
            mul(vec![SymExpr::G, SymExpr::G]),
            clog(SymExpr::N, c(2)),
            c(7),
        ]),
        maxx(vec![SymExpr::L, mul(vec![SymExpr::G, SymExpr::N]), c(1)]),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `simplify` is idempotent and preserves exact evaluation at random
    /// points — the algebra never changes a ledger's value, only its form.
    #[test]
    fn simplify_is_idempotent_and_eval_preserving(
        idx in 0usize..6,
        n in 1u64..5000,
        p in 1u64..512,
        g in 1u64..40,
        l_mult in 1u64..20,
    ) {
        let pt = GridPoint { n, p, g, l: g * l_mult };
        let e = expr_pool()[idx].clone();
        let s = e.simplify();
        prop_assert_eq!(s.clone().simplify(), s.clone(), "idempotence");
        prop_assert_eq!(e.eval(pt).unwrap(), s.eval(pt).unwrap(), "eval preserved");
    }

    /// Θ-normalization is stable: normalizing the simplified form gives
    /// the same normal form as normalizing the original.
    #[test]
    fn theta_is_stable_under_simplify(idx in 0usize..6) {
        let e = expr_pool()[idx].clone();
        prop_assert_eq!(theta(&e).unwrap(), theta(&e.simplify()).unwrap());
    }

    /// Shared-memory families: the symbolic ledger evaluated at a random
    /// `(n, g)` equals the numeric prediction cell for cell (small `n`
    /// included — the closed forms must be exact, not asymptotic).
    #[test]
    fn shared_symbolic_ledgers_evaluate_exactly(n in 2u64..2000, g in 1u64..32) {
        let pt = GridPoint::shared(n, g);
        for family in SYMBOLIC_FAMILIES {
            if family.starts_with("bsp-") {
                continue;
            }
            let report = grid_differential(family, &[pt]).unwrap();
            prop_assert!(
                report.clean(),
                "{} n={} g={}: {:?}", family, n, g, report.mismatches
            );
        }
    }

    /// BSP families: the same exactness for random `(p, g, L)` with the
    /// model's `L >= g` constraint respected by construction.
    #[test]
    fn bsp_symbolic_ledgers_evaluate_exactly(
        p in 2u64..300,
        g in 1u64..16,
        l_mult in 1u64..16,
    ) {
        let pt = GridPoint::bsp(p, g, g * l_mult);
        for family in ["bsp-reduce", "bsp-prefix-scan"] {
            let report = grid_differential(family, &[pt]).unwrap();
            prop_assert!(
                report.clean(),
                "{} p={} g={} l={}: {:?}", family, p, g, g * l_mult, report.mismatches
            );
        }
    }

    /// The padded fixture also evaluates exactly at random points — its
    /// regression is asymptotic, never a modelling error.
    #[test]
    fn padded_fixture_evaluates_exactly(n in 2u64..2000, g in 1u64..32) {
        let report =
            grid_differential("or-write-tree-padded", &[GridPoint::shared(n, g)]).unwrap();
        prop_assert!(report.clean(), "n={} g={}: {:?}", n, g, report.mismatches);
    }

    /// The symbolic total expression (the Σ-closed form) evaluates to the
    /// same number as summing the evaluated per-phase ledger.
    #[test]
    fn total_expression_agrees_with_ledger_fold(n in 2u64..2000, g in 1u64..32) {
        let pt = GridPoint::shared(n, g);
        for family in SYMBOLIC_FAMILIES {
            if family.starts_with("bsp-") {
                continue;
            }
            let ledger = predict_ledger_symbolic(family).unwrap();
            let total = ledger.total_expr().eval(pt).unwrap();
            let folded = ledger.eval_ledger(pt).unwrap().total_time();
            prop_assert_eq!(total, folded, "{} n={} g={}", family, n, g);
        }
    }
}
