//! Property tests for the model-conformance analyzer: a seeded racy
//! program must be flagged under *every* detector seed, the clean Section
//! 8 families must stay diagnostic-free under arbitrary workload seeds,
//! and the diagnostics of the racy fixture must be stable across seeds
//! (the findings describe the program, not the detector's randomness).

use parbounds_analyze::{analyze_family, detect_races_qsm, RaceConfig, SuiteConfig};
use parbounds_models::{FnProgram, PhaseEnv, QsmMachine, Status, Word};
use proptest::prelude::*;

/// `p` processors race to write distinct values into cell 0.
fn racy_program(p: usize) -> impl parbounds_models::Program<Proc = ()> + Sync {
    FnProgram::new(
        p,
        |_pid| (),
        |pid, _st: &mut (), env: &mut PhaseEnv<'_>| {
            env.write(0, pid as Word + 1);
            Status::Done
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The detector must expose the race no matter how it is seeded: the
    /// adversarial policies (FirstWriter vs LastWriter at minimum) pick
    /// different winners among the distinct written values.
    #[test]
    fn racy_program_always_flagged(seed in any::<u64>(), p in 2usize..6) {
        let machine = QsmMachine::qsm(4);
        let report = detect_races_qsm(
            &machine,
            &racy_program(p),
            &[],
            0..1,
            &RaceConfig::new(seed),
        )?;
        let w = report.witness.expect("race must be detected at every seed");
        prop_assert_eq!(w.addr, 0);
        prop_assert_eq!(w.writers, p);
        prop_assert!(w.baseline_output != w.divergent_output);
    }

    /// Every registered family stays clean (zero diagnostics, determinism
    /// verified, contract satisfied) under arbitrary workload seeds — the
    /// suite's cleanliness is a property of the algorithms, not of the
    /// particular seed `parbounds lint` defaults to.
    #[test]
    fn clean_families_stay_clean(seed in any::<u64>()) {
        let cfg = SuiteConfig::quick(seed);
        for family in parbounds_analyze::FAMILIES {
            let report = analyze_family(family, &cfg)?;
            prop_assert!(
                report.clean(),
                "family {} not clean under seed {}: {:?}",
                family,
                seed,
                report.diagnostics
            );
        }
    }

    /// The racy fixture's findings are invariant across detector seeds:
    /// same lint diagnostics, same witness cell and writer count. (The
    /// winning policy and the concrete outputs may differ — what must not
    /// wobble is the localization of the defect.)
    #[test]
    fn racy_fixture_diagnostics_stable(seed in any::<u64>()) {
        let a = analyze_family("racy-fixture", &SuiteConfig::quick(seed))?;
        let b = analyze_family("racy-fixture", &SuiteConfig::quick(seed.wrapping_mul(31).wrapping_add(7)))?;
        prop_assert!(!a.clean() && !b.clean());

        let render = |r: &parbounds_analyze::FamilyReport| {
            r.diagnostics.iter().map(ToString::to_string).collect::<Vec<_>>()
        };
        prop_assert_eq!(render(&a), render(&b));

        let wa = a.race.as_ref().and_then(|r| r.witness.as_ref()).expect("witness");
        let wb = b.race.as_ref().and_then(|r| r.witness.as_ref()).expect("witness");
        prop_assert_eq!(wa.addr, wb.addr);
        prop_assert_eq!(wa.writers, wb.writers);
    }
}
