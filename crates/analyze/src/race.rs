//! Determinism / race detection by arbitration perturbation.
//!
//! The QSM resolves concurrent writes to a cell *arbitrarily* (Section
//! 2.1): a correct algorithm must produce the same observable output no
//! matter which writer wins. This module replays a program under a set of
//! adversarial [`WinnerPolicy`]s (and, when the arbitration space is small
//! enough, exhaustively over *every* resolution via scripted odometer
//! enumeration) and reports the first observable-output divergence, with a
//! minimized witness naming the cell, phase and contending processors.

use std::ops::Range;

use parbounds_models::faults::advance_script;
use parbounds_models::{
    Addr, FaultLog, FaultPlan, Program, QsmMachine, Result, WinnerPolicy, Word,
};

/// One perturbed execution: the observable output plus the fault log
/// (whose [`parbounds_models::ChoicePoint`]s localize divergences).
#[derive(Debug, Clone)]
pub struct Probe {
    /// The canonical observable output of the run.
    pub output: Vec<Word>,
    /// The run's fault log (carries the arbitration choice points).
    pub faults: Option<FaultLog>,
}

/// Configuration of the race detector.
#[derive(Debug, Clone)]
pub struct RaceConfig {
    /// Seed of the baseline ([`WinnerPolicy::SeededRandom`]) run.
    pub seed: u64,
    /// Adversarial arbitration policies to replay under.
    pub policies: Vec<WinnerPolicy>,
    /// Extra seeds for additional randomized replays.
    pub extra_seeds: Vec<u64>,
    /// If the product of choice radices is at most this, enumerate the
    /// *entire* arbitration space with scripted winners.
    pub exhaustive_limit: u64,
}

impl RaceConfig {
    /// The default detector: four adversarial policies, two extra seeds,
    /// exhaustive enumeration up to 64 resolutions.
    pub fn new(seed: u64) -> Self {
        RaceConfig {
            seed,
            policies: vec![
                WinnerPolicy::FirstWriter,
                WinnerPolicy::LastWriter,
                WinnerPolicy::MinValue,
                WinnerPolicy::MaxValue,
            ],
            extra_seeds: vec![seed ^ 0x9e37_79b9_7f4a_7c15, seed.wrapping_add(1)],
            exhaustive_limit: 64,
        }
    }
}

/// A minimized divergence witness: the first arbitration at which a
/// perturbed run departed from the baseline.
#[derive(Debug, Clone)]
pub struct RaceWitness {
    /// The policy (or scripted resolution) that exposed the divergence.
    pub policy: WinnerPolicy,
    /// Phase of the divergent arbitration.
    pub phase: usize,
    /// The contended cell.
    pub addr: Addr,
    /// Number of concurrent writers at the choice point.
    pub writers: usize,
    /// Processors that wrote the cell in that phase (filled by the
    /// program-level wrappers via a traced replay; empty otherwise).
    pub contending_pids: Vec<usize>,
    /// Observable output of the baseline run.
    pub baseline_output: Vec<Word>,
    /// Observable output of the divergent run.
    pub divergent_output: Vec<Word>,
}

/// Outcome of a race-detection session.
#[derive(Debug, Clone)]
pub struct RaceReport {
    /// Number of executions performed (baseline included).
    pub runs: usize,
    /// The first divergence found, if any.
    pub witness: Option<RaceWitness>,
    /// True if every resolution of every arbitration was enumerated (the
    /// verdict is then a proof over the explored choice space, not a
    /// sample).
    pub exhaustive: bool,
}

impl RaceReport {
    /// True when no perturbation changed the observable output.
    pub fn is_deterministic(&self) -> bool {
        self.witness.is_none()
    }
}

/// Locates the first choice point at which two fault logs disagree.
///
/// Returns `(phase, addr, writers)` of the divergent arbitration: either
/// the first index where the logs arbitrate *different* (phase, cell)
/// pairs (control-flow divergence — the perturbation changed what the
/// program did next), or where they chose different winners at the same
/// point. Falls back to the last common choice point when the logs are
/// equal prefixes of one another.
fn first_divergence(base: &FaultLog, other: &FaultLog) -> Option<(usize, Addr, usize)> {
    let b = &base.write_choices;
    let o = &other.write_choices;
    for i in 0..b.len().max(o.len()) {
        match (b.get(i), o.get(i)) {
            (Some(x), Some(y)) => {
                if (x.phase, x.addr) != (y.phase, y.addr) || x.chosen != y.chosen {
                    return Some((y.phase, y.addr, y.writers));
                }
            }
            (Some(x), None) => return Some((x.phase, x.addr, x.writers)),
            (None, Some(y)) => return Some((y.phase, y.addr, y.writers)),
            (None, None) => unreachable!(),
        }
    }
    b.last().map(|c| (c.phase, c.addr, c.writers))
}

/// Core detector over an abstract runner.
///
/// `run` executes the program under the given fault plan and returns the
/// observable output; the detector owns the perturbation schedule. Use the
/// program-level wrappers ([`detect_races_qsm`]) unless you are auditing
/// something that is not a QSM program (e.g. a whole algorithm entry
/// point).
pub fn detect_races_with(
    cfg: &RaceConfig,
    mut run: impl FnMut(&FaultPlan) -> Result<Probe>,
) -> Result<RaceReport> {
    let baseline = run(&FaultPlan::new(cfg.seed))?;
    let mut runs = 1;
    let base_log = baseline.faults.clone().unwrap_or_default();

    // No real arbitration happened (the engines log a choice point per
    // written cell, but radix-1 "choices" cannot diverge): there is
    // nothing to perturb, and the scheduled replays would all retrace the
    // baseline.
    let contended = base_log.write_choices.iter().any(|c| c.writers > 1);
    if !contended && !base_log.choices_truncated {
        return Ok(RaceReport {
            runs,
            witness: None,
            exhaustive: true,
        });
    }

    let mut plans: Vec<(WinnerPolicy, FaultPlan)> = Vec::new();
    for policy in &cfg.policies {
        plans.push((
            policy.clone(),
            FaultPlan::new(cfg.seed).with_winner(policy.clone()),
        ));
    }
    for &seed in &cfg.extra_seeds {
        plans.push((WinnerPolicy::SeededRandom, FaultPlan::new(seed)));
    }

    for (policy, plan) in plans {
        let probe = run(&plan)?;
        runs += 1;
        if probe.output != baseline.output {
            let log = probe.faults.clone().unwrap_or_default();
            let (phase, addr, writers) = first_divergence(&base_log, &log).unwrap_or((0, 0, 0));
            return Ok(RaceReport {
                runs,
                witness: Some(RaceWitness {
                    policy,
                    phase,
                    addr,
                    writers,
                    contending_pids: Vec::new(),
                    baseline_output: baseline.output,
                    divergent_output: probe.output,
                }),
                exhaustive: false,
            });
        }
    }

    // Exhaustive scripted enumeration when the choice space is small. The
    // radices come from the baseline; a resolution that changes control
    // flow grows its own choice sequence, which the odometer handles by
    // treating missing digits as zero.
    let radices = base_log.choice_radices();
    let space: u64 = radices
        .iter()
        .try_fold(1u64, |acc, &r| acc.checked_mul(r as u64))
        .unwrap_or(u64::MAX);
    let exhaustive = !base_log.choices_truncated && space <= cfg.exhaustive_limit;
    if exhaustive {
        let mut script = vec![0usize; radices.len()];
        loop {
            let policy = WinnerPolicy::Scripted(script.clone());
            let plan = FaultPlan::new(cfg.seed).with_winner(policy.clone());
            let probe = run(&plan)?;
            runs += 1;
            if probe.output != baseline.output {
                let log = probe.faults.clone().unwrap_or_default();
                let (phase, addr, writers) = first_divergence(&base_log, &log).unwrap_or((0, 0, 0));
                return Ok(RaceReport {
                    runs,
                    witness: Some(RaceWitness {
                        policy,
                        phase,
                        addr,
                        writers,
                        contending_pids: Vec::new(),
                        baseline_output: baseline.output,
                        divergent_output: probe.output,
                    }),
                    exhaustive: false,
                });
            }
            if !advance_script(&mut script, &radices) {
                break;
            }
        }
    }

    Ok(RaceReport {
        runs,
        witness: None,
        exhaustive,
    })
}

/// Race-checks a QSM program: replays it under perturbed arbitration and
/// compares the `observe` region of final memory.
///
/// On divergence the witness is enriched with the contending processor
/// ids via one traced replay under the divergent policy.
pub fn detect_races_qsm<P>(
    machine: &QsmMachine,
    program: &P,
    input: &[Word],
    observe: Range<Addr>,
    cfg: &RaceConfig,
) -> Result<RaceReport>
where
    P: Program + Sync,
    P::Proc: Send,
{
    let mut report = detect_races_with(cfg, |plan| {
        let m = machine.clone().with_faults(plan.clone());
        let res = m.run(program, input)?;
        Ok(Probe {
            output: res.memory.slice(observe.start, observe.len()),
            faults: res.faults,
        })
    })?;

    if let Some(w) = report.witness.as_mut() {
        let m = machine
            .clone()
            .with_faults(FaultPlan::new(cfg.seed).with_winner(w.policy.clone()));
        let (_, trace) = m.run_traced(program, input)?;
        if let Some(pt) = trace.phases.get(w.phase) {
            w.contending_pids = pt
                .writes
                .iter()
                .enumerate()
                .filter(|(_, ws)| ws.iter().any(|&(a, _)| a == w.addr))
                .map(|(pid, _)| pid)
                .collect();
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parbounds_models::{FnProgram, PhaseEnv, Status};

    /// Every processor writes its own pid to cell 0: a textbook race —
    /// the observable output is whatever writer the arbiter picks.
    fn racy_program(p: usize) -> impl Program<Proc = ()> + Sync {
        FnProgram::new(
            p,
            |_pid| (),
            |pid, _st: &mut (), env: &mut PhaseEnv<'_>| {
                env.write(0, pid as Word + 1);
                Status::Done
            },
        )
    }

    /// Every processor writes the SAME value to cell 0: concurrent but
    /// confluent, so arbitration cannot be observed.
    fn confluent_program(p: usize) -> impl Program<Proc = ()> + Sync {
        FnProgram::new(
            p,
            |_pid| (),
            |_pid, _st: &mut (), env: &mut PhaseEnv<'_>| {
                env.write(0, 7);
                Status::Done
            },
        )
    }

    #[test]
    fn racy_program_yields_witness() {
        let machine = QsmMachine::qsm(2);
        let report =
            detect_races_qsm(&machine, &racy_program(4), &[], 0..1, &RaceConfig::new(11)).unwrap();
        let w = report.witness.expect("race must be detected");
        assert_eq!(w.addr, 0);
        assert_eq!(w.writers, 4);
        assert_eq!(w.contending_pids, vec![0, 1, 2, 3]);
        assert_ne!(w.baseline_output, w.divergent_output);
    }

    #[test]
    fn confluent_program_is_deterministic_and_exhaustively_verified() {
        let machine = QsmMachine::qsm(2);
        let report = detect_races_qsm(
            &machine,
            &confluent_program(4),
            &[],
            0..1,
            &RaceConfig::new(3),
        )
        .unwrap();
        assert!(report.is_deterministic());
        // One choice point of radix 4 ≤ the default exhaustive limit.
        assert!(report.exhaustive);
        assert!(report.runs > 1);
    }

    #[test]
    fn race_free_program_skips_perturbation() {
        let prog = FnProgram::new(
            2,
            |_pid| (),
            |pid, _st: &mut (), env: &mut PhaseEnv<'_>| {
                env.write(10 + pid, pid as Word);
                Status::Done
            },
        );
        let machine = QsmMachine::qsm(2);
        let report = detect_races_qsm(&machine, &prog, &[], 10..12, &RaceConfig::new(5)).unwrap();
        assert!(report.is_deterministic());
        assert!(report.exhaustive);
        assert_eq!(report.runs, 1);
    }
}
