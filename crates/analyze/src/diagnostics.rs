//! Typed diagnostics emitted by the lint pass.

use std::fmt;

use parbounds_models::Addr;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory: the execution is model-legal but wasteful or suspicious
    /// (dead reads, unconsumed writes, asymmetric s-QSM access).
    Warning,
    /// The execution violates a model-legality rule of Section 2 or a
    /// bound the family declared.
    Error,
}

/// The model-legality and hygiene rules the lint pass checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// A cell was both read and written in the same phase. Section 2.1
    /// forbids this ("each shared-memory location can be either read or
    /// written, but not both, in the same phase"); the engines reject it
    /// at run time, so seeing it in a trace means the trace was produced
    /// by an external engine (e.g. an emulator) that skipped the check.
    SamePhaseReadWrite,
    /// Per-cell queue contention in some phase exceeded the bound the
    /// family declared (`κ` beyond the declared fan-in means the measured
    /// cost no longer tracks the family's Table 1 analysis).
    ContentionOverBound,
    /// On an s-QSM run, per-cell contention exceeded the declared
    /// symmetric-access bound. The s-QSM charges contention through the
    /// gap (`g·κ`, Section 2.1), so QSM-style high-fan-in access — cheap
    /// where only `κ` is charged — wastes the symmetric charging here.
    SqsmAsymmetry,
    /// A BSP message was sent to a component that had already finished in
    /// the sending superstep (or earlier): delivery happens *next*
    /// superstep (Section 2.1.3), so the message is silently lost —
    /// usually an off-by-one that effectively addressed the send to the
    /// sending superstep.
    BspUndeliverableSend,
    /// A GSM write landed in the γ-packed input region. The initial
    /// placement invariant of Section 2.2 (each cell holds information
    /// about at most γ inputs, disjoint across cells) underpins the
    /// lower-bound accounting; programs must treat `[0, ⌈n/γ⌉)` as
    /// read-only.
    GsmGammaViolation,
    /// A processor issued reads in the phase it returned `Done`: the
    /// engine discards those deliveries (they can never be consumed), yet
    /// the phase still paid `g·m_rw` for them.
    DeadRead,
    /// A cell outside the declared output region was written but never
    /// subsequently read: the write's information is lost, which usually
    /// indicates a wrong address computation or an undeclared output.
    UnconsumedWrite,
    /// A phase (or superstep) of a declared plan issues no requests,
    /// charges no local work, and retires no processor: it contributes
    /// nothing yet still pays the model's per-phase minimum (`g`, or `L`
    /// on the BSP). Only the static analyzer can see this — a dynamic
    /// trace cannot distinguish a dead phase from a data-dependent quiet
    /// one.
    DeadPhase,
    /// The trace retained fewer phases than the run executed (the
    /// [`trace_phase_cap`] was hit). Every phase-indexed lint above only
    /// saw a prefix of the execution, so a clean report does not certify
    /// the whole run; re-run with a larger cap for a full audit.
    ///
    /// [`trace_phase_cap`]: parbounds_models::ExecOptions::trace_phase_cap
    TruncatedTrace,
    /// A plan recognized as an instance of a symbolically-covered §8
    /// family whose symbolic ledger, evaluated at the plan's parameter
    /// point, disagrees with the numeric `predict_ledger` cell for cell.
    /// Either the schedule silently diverged from the family's recipe or
    /// the closed-form derivation is stale — both break the Table 1
    /// conformance story.
    SymbolicMismatch,
    /// A family's derived Θ-normal-form total strictly dominates its
    /// Table 1 row: the schedule asymptotically overpays the bound the
    /// paper proves for the problem. Both normal forms are quoted in the
    /// message.
    BoundRegression,
    /// A §8 family carried through the symbolic upper-bound sweep whose
    /// adversary-side *lower-bound audit* is missing or lags behind: either
    /// the family has no entry in the audit registry at all, or the largest
    /// `n` its audit covered is smaller than the largest `n` the sweep
    /// exercised. Until the audit catches up, the family's Table 1 pairing
    /// is one-sided — the upper bound is checked at sizes where the lower
    /// bound is not.
    AuditGap,
    /// The plan cannot take the compiled straight-line fast path
    /// (`ir::compile`): a node breaks one of the eligibility rules — a
    /// same-phase read/write cell (the compiled loop elides the conflict
    /// check), a multi-writer cell without a certified common constant
    /// (arbitration would be observable), a duplicate BSP `(source, tag)`
    /// inbox key (slot order would be unstable), or an analyze-only GSM
    /// model. The plan still runs correctly on the checked interpreter —
    /// it just keeps paying per-phase routing and arbitration.
    CompileIneligible,
    /// The plan declares fewer processors than the host threads requested
    /// for intra-phase parallel execution. Worker `w` owns the `w`-th
    /// contiguous pid range, so extra workers own *empty* ranges: they are
    /// spawned, handed zero entries per phase, and pay two channel hops
    /// per barrier for nothing. The run stays bit-identical — it just
    /// cannot speed up past one thread per simulated processor.
    ParallelUnderfill,
}

impl Rule {
    /// Default severity of the rule.
    pub fn severity(self) -> Severity {
        match self {
            Rule::SamePhaseReadWrite
            | Rule::ContentionOverBound
            | Rule::BspUndeliverableSend
            | Rule::GsmGammaViolation
            | Rule::SymbolicMismatch
            | Rule::BoundRegression
            | Rule::AuditGap => Severity::Error,
            Rule::SqsmAsymmetry
            | Rule::DeadRead
            | Rule::UnconsumedWrite
            | Rule::DeadPhase
            | Rule::TruncatedTrace
            | Rule::CompileIneligible
            | Rule::ParallelUnderfill => Severity::Warning,
        }
    }

    /// Stable machine-readable name (used by the CLI renderer).
    pub fn name(self) -> &'static str {
        match self {
            Rule::SamePhaseReadWrite => "same-phase-read-write",
            Rule::ContentionOverBound => "contention-over-bound",
            Rule::SqsmAsymmetry => "sqsm-asymmetry",
            Rule::BspUndeliverableSend => "bsp-undeliverable-send",
            Rule::GsmGammaViolation => "gsm-gamma-violation",
            Rule::DeadRead => "dead-read",
            Rule::UnconsumedWrite => "unconsumed-write",
            Rule::DeadPhase => "dead-phase",
            Rule::TruncatedTrace => "truncated-trace",
            Rule::SymbolicMismatch => "symbolic-mismatch",
            Rule::BoundRegression => "bound-regression",
            Rule::AuditGap => "audit-gap",
            Rule::CompileIneligible => "compile-ineligible",
            Rule::ParallelUnderfill => "parallel-underfill",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Where in an execution a diagnostic points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Location {
    /// The model the trace came from (`"QSM"`, `"s-QSM"`, `"BSP"`,
    /// `"GSM"`).
    pub model: &'static str,
    /// Phase / superstep index.
    pub phase: usize,
    /// Processor or component, when the rule localizes to one.
    pub pid: Option<usize>,
    /// Shared-memory cell, when the rule localizes to one.
    pub addr: Option<Addr>,
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} phase {}", self.model, self.phase)?;
        if let Some(pid) = self.pid {
            write!(f, " pid {pid}")?;
        }
        if let Some(addr) = self.addr {
            write!(f, " cell {addr}")?;
        }
        Ok(())
    }
}

/// One finding of the lint pass.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// The violated rule.
    pub rule: Rule,
    /// Severity (normally [`Rule::severity`]).
    pub severity: Severity,
    /// Where the violation happened.
    pub location: Location,
    /// Human-readable detail.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic at the rule's default severity.
    pub fn new(rule: Rule, location: Location, message: String) -> Self {
        Diagnostic {
            rule,
            severity: rule.severity(),
            location,
            message,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        write!(
            f,
            "{sev}[{}] {}: {}",
            self.rule, self.location, self.message
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rules_know_their_severity_and_name() {
        assert_eq!(Rule::SamePhaseReadWrite.severity(), Severity::Error);
        assert_eq!(Rule::DeadRead.severity(), Severity::Warning);
        assert_eq!(Rule::GsmGammaViolation.name(), "gsm-gamma-violation");
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn display_is_compact_and_complete() {
        let d = Diagnostic::new(
            Rule::ContentionOverBound,
            Location {
                model: "QSM",
                phase: 3,
                pid: None,
                addr: Some(17),
            },
            "contention 9 > declared bound 4".into(),
        );
        let s = d.to_string();
        assert_eq!(
            s,
            "error[contention-over-bound] QSM phase 3 cell 17: contention 9 > declared bound 4"
        );
    }
}
