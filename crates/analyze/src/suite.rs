//! The analysis suite: every Section 8 algorithm family run through the
//! three analyses (trace lints, race detection, cost-contract check).
//!
//! Families are registered by the same names their
//! [`CostContract`](parbounds_models::CostContract)s declare; the CLI's
//! `parbounds lint` subcommand drives [`analyze_all`] and renders the
//! resulting [`AnalysisReport`].

use std::ops::Range;

use parbounds_algo::util::ReduceOp;
use parbounds_algo::{
    balance, broadcast, bsp_algos, gsm_algos, lac, list_rank, or_tree, padded_sort, parity, prefix,
    reduce, rounds, workloads,
};
use parbounds_models::{
    BspMachine, ContractParams, FnProgram, GsmMachine, ModelError, PhaseEnv, QsmMachine, Result,
    RunResult, Status, Word,
};

use crate::contracts::{check_contract, ContractReport};
use crate::diagnostics::Diagnostic;
use crate::lints::{
    lint_bsp_trace, lint_gsm_trace, lint_qsm_trace, BspLintConfig, LintConfig, OutputSpec,
};
use crate::race::{detect_races_qsm, detect_races_with, Probe, RaceConfig, RaceReport};

/// Machine shape shared by the whole suite (matches the robustness grid of
/// `parbounds::robustness`): QSM/s-QSM gap 8, BSP(16, 8, 64), GSM(4, 4, 16).
const G: u64 = 8;
const BSP_P: usize = 16;
const BSP_L: u64 = 8 * G;
const GSM_ALPHA: u64 = 4;
const GSM_BETA: u64 = 4;
const GSM_GAMMA: u64 = 16;

/// Suite-wide configuration.
#[derive(Debug, Clone)]
pub struct SuiteConfig {
    /// Input size of the lint + race runs.
    pub n: usize,
    /// Base seed for workloads and the race detector.
    pub seed: u64,
    /// Sweep sizes of the contract check (ascending).
    pub contract_ns: Vec<usize>,
    /// Contract tolerance (measured may exceed the calibrated envelope by
    /// this factor before the check fails).
    pub tolerance: f64,
    /// Race-detector exhaustive-enumeration cap.
    pub exhaustive_limit: u64,
}

impl SuiteConfig {
    /// The standard configuration at size `n`.
    pub fn standard(n: usize, seed: u64) -> Self {
        let n = n.max(32);
        SuiteConfig {
            n,
            seed,
            contract_ns: vec![n / 8, n / 4, n / 2, n],
            tolerance: 3.0,
            exhaustive_limit: 64,
        }
    }

    /// A small, fast configuration for tests.
    pub fn quick(seed: u64) -> Self {
        SuiteConfig {
            n: 64,
            seed,
            contract_ns: vec![32, 64, 128],
            tolerance: 3.0,
            exhaustive_limit: 16,
        }
    }

    fn race(&self) -> RaceConfig {
        let mut cfg = RaceConfig::new(self.seed);
        cfg.exhaustive_limit = self.exhaustive_limit;
        cfg
    }
}

/// Everything the analyzer found about one family.
#[derive(Debug)]
pub struct FamilyReport {
    /// Family name (matches its cost contract).
    pub family: &'static str,
    /// The model it runs on.
    pub model: &'static str,
    /// Lint findings over the traced run.
    pub diagnostics: Vec<Diagnostic>,
    /// Race-detection outcome (`None` when the analysis does not apply).
    pub race: Option<RaceReport>,
    /// Contract-check outcome (`None` when skipped).
    pub contract: Option<ContractReport>,
}

impl FamilyReport {
    /// True when the family passed every analysis.
    pub fn clean(&self) -> bool {
        self.diagnostics.is_empty()
            && self.race.as_ref().is_none_or(|r| r.is_deterministic())
            && self.contract.as_ref().is_none_or(|c| c.passed)
    }
}

/// The full suite outcome.
#[derive(Debug)]
pub struct AnalysisReport {
    /// Per-family results, in registry order.
    pub families: Vec<FamilyReport>,
}

impl AnalysisReport {
    /// True when every family is clean.
    pub fn clean(&self) -> bool {
        self.families.iter().all(FamilyReport::clean)
    }

    /// Renders the report for terminal output.
    pub fn render(&self) -> String {
        let mut s = String::from(
            "model-conformance analysis (lint · race · contract)\n\
             ---------------------------------------------------\n",
        );
        for f in &self.families {
            let race = match &f.race {
                None => "n/a".to_string(),
                Some(r) if r.is_deterministic() => {
                    if r.exhaustive {
                        format!("deterministic (exhaustive, {} runs)", r.runs)
                    } else {
                        format!("deterministic (sampled, {} runs)", r.runs)
                    }
                }
                Some(_) => "RACE".to_string(),
            };
            let contract = match &f.contract {
                None => "n/a".to_string(),
                Some(c) if c.passed => {
                    format!("ok ({} within x{:.2})", c.formula, c.worst_ratio)
                }
                Some(c) => format!(
                    "FAIL ({} exceeded: worst x{:.2} > tolerance {:.1})",
                    c.formula, c.worst_ratio, c.tolerance
                ),
            };
            s.push_str(&format!(
                "{:<17} {:<5} lint: {:<2} race: {:<36} contract: {}\n",
                f.family,
                f.model,
                f.diagnostics.len(),
                race,
                contract
            ));
            for d in &f.diagnostics {
                s.push_str(&format!("    {d}\n"));
            }
            if let Some(w) = f.race.as_ref().and_then(|r| r.witness.as_ref()) {
                s.push_str(&format!(
                    "    race witness: policy {:?}, phase {}, cell {}, {} writers",
                    w.policy, w.phase, w.addr, w.writers
                ));
                if !w.contending_pids.is_empty() {
                    s.push_str(&format!(", pids {:?}", w.contending_pids));
                }
                s.push_str(&format!(
                    "\n    baseline output {:?} vs divergent {:?}\n",
                    w.baseline_output, w.divergent_output
                ));
            }
        }
        s.push_str(if self.clean() {
            "result: clean\n"
        } else {
            "result: NOT CLEAN\n"
        });
        s
    }
}

/// Names of the registered (clean) Section 8 families, in suite order.
pub const FAMILIES: [&str; 12] = [
    "or-write-tree",
    "parity-helper",
    "parity-read-tree",
    "broadcast",
    "prefix-rounds",
    "or-rounds",
    "load-balance",
    "lac-dart",
    "padded-sort",
    "list-rank",
    "bsp-parity",
    "gsm-parity",
];

/// Runs the whole suite (every family in [`FAMILIES`]).
pub fn analyze_all(cfg: &SuiteConfig) -> Result<AnalysisReport> {
    let mut families = Vec::with_capacity(FAMILIES.len());
    for name in FAMILIES {
        families.push(analyze_family(name, cfg)?);
    }
    Ok(AnalysisReport { families })
}

/// Runs one family through the three analyses. Besides the registered
/// families this also accepts `"racy-fixture"`, a deliberately racy
/// program used to demonstrate (and test) non-clean reporting.
pub fn analyze_family(name: &str, cfg: &SuiteConfig) -> Result<FamilyReport> {
    match name {
        "or-write-tree" => family_or_write_tree(cfg),
        "parity-helper" => family_parity_helper(cfg),
        "parity-read-tree" => family_parity_read_tree(cfg),
        "broadcast" => family_broadcast(cfg),
        "prefix-rounds" => family_prefix_rounds(cfg),
        "or-rounds" => family_or_rounds(cfg),
        "load-balance" => family_load_balance(cfg),
        "lac-dart" => family_lac_dart(cfg),
        "padded-sort" => family_padded_sort(cfg),
        "list-rank" => family_list_rank(cfg),
        "bsp-parity" => family_bsp_parity(cfg),
        "gsm-parity" => family_gsm_parity(cfg),
        "racy-fixture" => family_racy_fixture(cfg),
        other => Err(ModelError::BadConfig(format!(
            "unknown analysis family '{other}' (see `parbounds lint --list`)"
        ))),
    }
}

fn take_trace(run: &mut RunResult) -> parbounds_models::ExecTrace {
    run.trace.take().unwrap_or_default()
}

// ---------------------------------------------------------------------------
// QSM families
// ---------------------------------------------------------------------------

fn family_or_write_tree(cfg: &SuiteConfig) -> Result<FamilyReport> {
    let machine = QsmMachine::qsm(G).with_tracing();
    let bits = workloads::random_bits(cfg.n, cfg.seed);
    let k = or_tree::or_default_fanin(G);
    let mut out = or_tree::or_write_tree(&machine, &bits, k)?;
    let lint_cfg = LintConfig::qsm().with_contention_bound(k as u64);
    let diagnostics = lint_qsm_trace(&take_trace(&mut out.run), &lint_cfg);

    let base = QsmMachine::qsm(G);
    let race = detect_races_with(&cfg.race(), |plan| {
        let m = base.clone().with_faults(plan.clone());
        let o = or_tree::or_write_tree(&m, &bits, k)?;
        Ok(Probe {
            output: vec![o.value],
            faults: o.run.faults,
        })
    })?;

    let contract = check_contract(
        &or_tree::cost_contract(),
        |n| ContractParams::qsm(n, G, n),
        |n| {
            let m = QsmMachine::qsm(G);
            Ok(
                or_tree::or_write_tree(&m, &workloads::random_bits(n, cfg.seed), k)?
                    .run
                    .time(),
            )
        },
        &cfg.contract_ns,
        cfg.tolerance,
    )?;

    Ok(FamilyReport {
        family: "or-write-tree",
        model: "QSM",
        diagnostics,
        race: Some(race),
        contract: Some(contract),
    })
}

fn family_parity_helper(cfg: &SuiteConfig) -> Result<FamilyReport> {
    let machine = QsmMachine::qsm(G).with_tracing();
    let bits = workloads::random_bits(cfg.n, cfg.seed);
    let k = parity::parity_helper_default_k(&machine);
    let mut out = parity::parity_pattern_helper(&machine, &bits, k)?;
    let diagnostics = lint_qsm_trace(&take_trace(&mut out.run), &LintConfig::qsm());

    let base = QsmMachine::qsm(G);
    let race = detect_races_with(&cfg.race(), |plan| {
        let m = base.clone().with_faults(plan.clone());
        let o = parity::parity_pattern_helper(&m, &bits, k)?;
        Ok(Probe {
            output: vec![o.value],
            faults: o.run.faults,
        })
    })?;

    let contract = check_contract(
        &parity::cost_contract(),
        |n| ContractParams::qsm(n, G, n),
        |n| {
            let m = QsmMachine::qsm(G);
            Ok(
                parity::parity_pattern_helper(&m, &workloads::random_bits(n, cfg.seed), k)?
                    .run
                    .time(),
            )
        },
        &cfg.contract_ns,
        cfg.tolerance,
    )?;

    Ok(FamilyReport {
        family: "parity-helper",
        model: "QSM",
        diagnostics,
        race: Some(race),
        contract: Some(contract),
    })
}

fn family_parity_read_tree(cfg: &SuiteConfig) -> Result<FamilyReport> {
    let machine = QsmMachine::sqsm(G).with_tracing();
    let bits = workloads::random_bits(cfg.n, cfg.seed);
    let mut out = reduce::parity_read_tree(&machine, &bits, 2)?;
    let lint_cfg = LintConfig::sqsm(2).with_contention_bound(2);
    let diagnostics = lint_qsm_trace(&take_trace(&mut out.run), &lint_cfg);

    let base = QsmMachine::sqsm(G);
    let race = detect_races_with(&cfg.race(), |plan| {
        let m = base.clone().with_faults(plan.clone());
        let o = reduce::parity_read_tree(&m, &bits, 2)?;
        Ok(Probe {
            output: vec![o.value],
            faults: o.run.faults,
        })
    })?;

    let contract = check_contract(
        &reduce::cost_contract(),
        |n| ContractParams::qsm(n, G, n),
        |n| {
            let m = QsmMachine::sqsm(G);
            Ok(
                reduce::parity_read_tree(&m, &workloads::random_bits(n, cfg.seed), 2)?
                    .run
                    .time(),
            )
        },
        &cfg.contract_ns,
        cfg.tolerance,
    )?;

    Ok(FamilyReport {
        family: "parity-read-tree",
        model: "s-QSM",
        diagnostics,
        race: Some(race),
        contract: Some(contract),
    })
}

fn family_broadcast(cfg: &SuiteConfig) -> Result<FamilyReport> {
    let machine = QsmMachine::qsm(G).with_tracing();
    let k = broadcast::broadcast_default_fanout(&machine);
    let mut out = broadcast::broadcast(&machine, 7, cfg.n, k)?;
    let lint_cfg = LintConfig::qsm().with_contention_bound(k as u64);
    let diagnostics = lint_qsm_trace(&take_trace(&mut out.run), &lint_cfg);

    let base = QsmMachine::qsm(G);
    let race = detect_races_with(&cfg.race(), |plan| {
        let m = base.clone().with_faults(plan.clone());
        let o = broadcast::broadcast(&m, 7, cfg.n, k)?;
        Ok(Probe {
            output: o.values,
            faults: o.run.faults,
        })
    })?;

    let contract = check_contract(
        &broadcast::cost_contract(),
        |n| ContractParams::qsm(n, G, n),
        |n| {
            let m = QsmMachine::qsm(G);
            Ok(broadcast::broadcast(&m, 7, n, k)?.run.time())
        },
        &cfg.contract_ns,
        cfg.tolerance,
    )?;

    Ok(FamilyReport {
        family: "broadcast",
        model: "QSM",
        diagnostics,
        race: Some(race),
        contract: Some(contract),
    })
}

fn family_prefix_rounds(cfg: &SuiteConfig) -> Result<FamilyReport> {
    let machine = QsmMachine::qsm(G).with_tracing();
    let input = workloads::uniform_values(cfg.n, cfg.seed);
    let p = (cfg.n / 4).max(1);
    let mut out = prefix::prefix_in_rounds(&machine, &input, p, ReduceOp::Sum)?;
    let diagnostics = lint_qsm_trace(&take_trace(&mut out.run), &LintConfig::qsm());

    let base = QsmMachine::qsm(G);
    let race = detect_races_with(&cfg.race(), |plan| {
        let m = base.clone().with_faults(plan.clone());
        let o = prefix::prefix_in_rounds(&m, &input, p, ReduceOp::Sum)?;
        Ok(Probe {
            output: o.values,
            faults: o.run.faults,
        })
    })?;

    let contract = check_contract(
        &prefix::cost_contract(),
        |n| ContractParams::qsm(n, G, (n / 4).max(1)),
        |n| {
            let m = QsmMachine::qsm(G);
            let input = workloads::uniform_values(n, cfg.seed);
            Ok(
                prefix::prefix_in_rounds(&m, &input, (n / 4).max(1), ReduceOp::Sum)?
                    .run
                    .phases() as u64,
            )
        },
        &cfg.contract_ns,
        cfg.tolerance,
    )?;

    Ok(FamilyReport {
        family: "prefix-rounds",
        model: "QSM",
        diagnostics,
        race: Some(race),
        contract: Some(contract),
    })
}

fn family_or_rounds(cfg: &SuiteConfig) -> Result<FamilyReport> {
    let machine = QsmMachine::qsm(G).with_tracing();
    let bits = workloads::random_bits(cfg.n, cfg.seed);
    let p = (cfg.n / 2).max(2);
    let mut out = rounds::or_in_rounds_qsm(&machine, &bits, p)?;
    let diagnostics = lint_qsm_trace(&take_trace(&mut out.run), &LintConfig::qsm());

    let base = QsmMachine::qsm(G);
    let race = detect_races_with(&cfg.race(), |plan| {
        let m = base.clone().with_faults(plan.clone());
        let o = rounds::or_in_rounds_qsm(&m, &bits, p)?;
        Ok(Probe {
            output: vec![o.value],
            faults: o.run.faults,
        })
    })?;

    let contract = check_contract(
        &rounds::cost_contract(),
        |n| ContractParams::qsm(n, G, (n / 2).max(2)),
        |n| {
            let m = QsmMachine::qsm(G);
            let bits = workloads::random_bits(n, cfg.seed);
            Ok(rounds::or_in_rounds_qsm(&m, &bits, (n / 2).max(2))?
                .run
                .phases() as u64)
        },
        &cfg.contract_ns,
        cfg.tolerance,
    )?;

    Ok(FamilyReport {
        family: "or-rounds",
        model: "QSM",
        diagnostics,
        race: Some(race),
        contract: Some(contract),
    })
}

fn family_load_balance(cfg: &SuiteConfig) -> Result<FamilyReport> {
    let machine = QsmMachine::qsm(G).with_tracing();
    let counts: Vec<Word> = workloads::uniform_values(cfg.n, cfg.seed)
        .iter()
        .map(|v| v % 4)
        .collect();
    let p = (cfg.n / 4).max(1);
    let mut out = balance::load_balance(&machine, &counts, p)?;

    // Pass 1 (prefix ranks) feeds pass 2 (scatter/receive): every pass-1
    // write is inter-pass data, so the whole final memory is "output".
    let mut diagnostics = Vec::new();
    for (i, run) in out.runs.iter_mut().enumerate() {
        let lint_cfg = LintConfig::qsm().with_output(OutputSpec::TailPhases(if i + 1 == 2 {
            1
        } else {
            usize::MAX
        }));
        diagnostics.extend(lint_qsm_trace(&take_trace(run), &lint_cfg));
    }

    let observable = |o: &balance::BalanceOutcome| -> Vec<Word> {
        let mut flat = Vec::new();
        for row in &o.mailbox {
            let mut row = row.clone();
            row.sort_unstable();
            flat.extend(row);
            flat.push(-1);
        }
        flat
    };

    let base = QsmMachine::qsm(G);
    let race = detect_races_with(&cfg.race(), |plan| {
        let m = base.clone().with_faults(plan.clone());
        let o = balance::load_balance(&m, &counts, p)?;
        let faults = o.runs.last().and_then(|r| r.faults.clone());
        Ok(Probe {
            output: observable(&o),
            faults,
        })
    })?;

    let contract = check_contract(
        &balance::cost_contract(),
        |n| ContractParams::qsm(n, G, (n / 4).max(1)),
        |n| {
            let m = QsmMachine::qsm(G);
            let counts: Vec<Word> = workloads::uniform_values(n, cfg.seed)
                .iter()
                .map(|v| v % 4)
                .collect();
            Ok(balance::load_balance(&m, &counts, (n / 4).max(1))?.total_time())
        },
        &cfg.contract_ns,
        cfg.tolerance,
    )?;

    Ok(FamilyReport {
        family: "load-balance",
        model: "QSM",
        diagnostics,
        race: Some(race),
        contract: Some(contract),
    })
}

fn family_lac_dart(cfg: &SuiteConfig) -> Result<FamilyReport> {
    let machine = QsmMachine::qsm(G).with_tracing();
    let h = (cfg.n / 8).max(4);
    let input = workloads::sparse_items(cfg.n, h, cfg.seed);
    let mut out = lac::lac_dart(&machine, &input, h, cfg.seed)?;
    // Dart throwing leaves claimed-but-retried cells behind by design; the
    // destination array is the output.
    let dest = out.out_base..out.out_base + out.out_size;
    #[allow(clippy::single_range_in_vec_init)]
    let lint_cfg = LintConfig::qsm().with_output(OutputSpec::Cells(vec![dest]));
    let diagnostics = lint_qsm_trace(&take_trace(&mut out.run), &lint_cfg);

    // The LAC contract allows ANY arrangement of the items in the O(h)
    // destination cells: the canonical observable is the *set* of placed
    // items, not their positions.
    let canonical = |o: &lac::LacOutcome| -> Vec<Word> {
        let mut placed: Vec<Word> = o.dest().into_iter().filter(|&v| v != 0).collect();
        placed.sort_unstable();
        placed
    };

    let base = QsmMachine::qsm(G);
    let race = detect_races_with(&cfg.race(), |plan| {
        let m = base.clone().with_faults(plan.clone());
        let o = lac::lac_dart(&m, &input, h, cfg.seed)?;
        Ok(Probe {
            output: canonical(&o),
            faults: o.run.faults,
        })
    })?;

    let contract = check_contract(
        &lac::cost_contract(),
        |n| ContractParams::qsm(n, G, n),
        |n| {
            let m = QsmMachine::qsm(G);
            let h = (n / 8).max(4);
            let input = workloads::sparse_items(n, h, cfg.seed);
            Ok(lac::lac_dart(&m, &input, h, cfg.seed)?.run.time())
        },
        &cfg.contract_ns,
        cfg.tolerance,
    )?;

    Ok(FamilyReport {
        family: "lac-dart",
        model: "QSM",
        diagnostics,
        race: Some(race),
        contract: Some(contract),
    })
}

fn family_padded_sort(cfg: &SuiteConfig) -> Result<FamilyReport> {
    let machine = QsmMachine::qsm(G).with_tracing();
    let values = workloads::uniform_values(cfg.n, cfg.seed);
    let mut out = padded_sort::padded_sort_default(&machine, &values, cfg.seed)?;

    let mut diagnostics = Vec::new();
    let passes = out.runs.len();
    for (i, run) in out.runs.iter_mut().enumerate() {
        // Earlier passes feed later passes through memory; only the final
        // pass has a crisp "output = tail writes" shape.
        let lint_cfg = LintConfig::qsm().with_output(OutputSpec::TailPhases(if i + 1 == passes {
            1
        } else {
            usize::MAX
        }));
        diagnostics.extend(lint_qsm_trace(&take_trace(run), &lint_cfg));
    }

    let base = QsmMachine::qsm(G);
    let race = detect_races_with(&cfg.race(), |plan| {
        let m = base.clone().with_faults(plan.clone());
        let o = padded_sort::padded_sort_default(&m, &values, cfg.seed)?;
        let faults = o.runs.last().and_then(|r| r.faults.clone());
        Ok(Probe {
            output: o.values(),
            faults,
        })
    })?;

    let contract = check_contract(
        &padded_sort::cost_contract(),
        |n| ContractParams::qsm(n, G, n),
        |n| {
            let m = QsmMachine::qsm(G);
            let values = workloads::uniform_values(n, cfg.seed);
            Ok(padded_sort::padded_sort_default(&m, &values, cfg.seed)?.total_time())
        },
        &cfg.contract_ns,
        cfg.tolerance,
    )?;

    Ok(FamilyReport {
        family: "padded-sort",
        model: "QSM",
        diagnostics,
        race: Some(race),
        contract: Some(contract),
    })
}

fn family_list_rank(cfg: &SuiteConfig) -> Result<FamilyReport> {
    let machine = QsmMachine::qsm(G).with_tracing();
    let (succ, _head) = workloads::random_list(cfg.n, cfg.seed);
    let mut out = list_rank::list_rank_distance(&machine, &succ)?;
    // Oblivious pointer jumping publishes every node's (succ, acc) each
    // iteration because a node cannot know whether anyone points at it;
    // nodes within 2^it of the head have no reader at iteration `it`, so
    // ~2n buffer cells are inherently written-but-unread. Scope the
    // unconsumed-write rule out by declaring every write phase an output
    // (all other rules stay active).
    let lint_cfg = LintConfig::qsm().with_output(OutputSpec::TailPhases(usize::MAX));
    let diagnostics = lint_qsm_trace(&take_trace(&mut out.run), &lint_cfg);

    let base = QsmMachine::qsm(G);
    let race = detect_races_with(&cfg.race(), |plan| {
        let m = base.clone().with_faults(plan.clone());
        let o = list_rank::list_rank_distance(&m, &succ)?;
        Ok(Probe {
            output: o.values,
            faults: o.run.faults,
        })
    })?;

    let contract = check_contract(
        &list_rank::cost_contract(),
        |n| ContractParams::qsm(n, G, n),
        |n| {
            let m = QsmMachine::qsm(G);
            let (succ, _) = workloads::random_list(n, cfg.seed);
            Ok(list_rank::list_rank_distance(&m, &succ)?.run.time())
        },
        &cfg.contract_ns,
        cfg.tolerance,
    )?;

    Ok(FamilyReport {
        family: "list-rank",
        model: "QSM",
        diagnostics,
        race: Some(race),
        contract: Some(contract),
    })
}

// ---------------------------------------------------------------------------
// BSP / GSM families
// ---------------------------------------------------------------------------

fn family_bsp_parity(cfg: &SuiteConfig) -> Result<FamilyReport> {
    let machine = BspMachine::new(BSP_P, G, BSP_L)?.with_tracing();
    let bits = workloads::random_bits(cfg.n, cfg.seed);
    let out = bsp_algos::bsp_parity(&machine, &bits)?;
    let h = bsp_algos::bsp_fanin(&machine) as u64;
    let lint_cfg = BspLintConfig::new().with_h_bound(h);
    let diagnostics = lint_bsp_trace(&out.trace.unwrap_or_default(), &lint_cfg);

    // The BSP has no shared cells and delivers inboxes in a deterministic
    // sorted order: there are no arbitration points to perturb, which the
    // detector verifies via the empty choice log.
    let base = BspMachine::new(BSP_P, G, BSP_L)?;
    let race = detect_races_with(&cfg.race(), |_plan| {
        let o = bsp_algos::bsp_parity(&base, &bits)?;
        Ok(Probe {
            output: vec![o.value],
            faults: None,
        })
    })?;

    let contract = check_contract(
        &bsp_algos::cost_contract(),
        |n| ContractParams::bsp(n, G, BSP_L, BSP_P),
        |n| {
            let m = BspMachine::new(BSP_P, G, BSP_L)?;
            Ok(bsp_algos::bsp_parity(&m, &workloads::random_bits(n, cfg.seed))?.time())
        },
        &cfg.contract_ns,
        cfg.tolerance,
    )?;

    Ok(FamilyReport {
        family: "bsp-parity",
        model: "BSP",
        diagnostics,
        race: Some(race),
        contract: Some(contract),
    })
}

fn family_gsm_parity(cfg: &SuiteConfig) -> Result<FamilyReport> {
    let machine = GsmMachine::new(GSM_ALPHA, GSM_BETA, GSM_GAMMA).with_tracing();
    let bits = workloads::random_bits(cfg.n, cfg.seed);
    let mut out = gsm_algos::gsm_parity(&machine, &bits)?;
    let lint_cfg = LintConfig::gsm(machine.input_cells(cfg.n))
        .with_contention_bound(gsm_algos::gsm_default_fanin(&machine) as u64);
    let diagnostics = lint_gsm_trace(&out.run.trace.take().unwrap_or_default(), &lint_cfg);

    // GSM cells merge ALL concurrent writes (strong queuing): arbitration
    // never chooses a winner, so the choice log stays empty.
    let base = GsmMachine::new(GSM_ALPHA, GSM_BETA, GSM_GAMMA);
    let race = detect_races_with(&cfg.race(), |plan| {
        let m = base.clone().with_faults(plan.clone());
        let o = gsm_algos::gsm_parity(&m, &bits)?;
        Ok(Probe {
            output: vec![o.value],
            faults: o.run.faults,
        })
    })?;

    let contract = check_contract(
        &gsm_algos::cost_contract(),
        |n| {
            ContractParams::gsm(
                n,
                GsmMachine::new(GSM_ALPHA, GSM_BETA, GSM_GAMMA).mu(),
                GSM_BETA,
                GSM_GAMMA,
            )
        },
        |n| {
            let m = GsmMachine::new(GSM_ALPHA, GSM_BETA, GSM_GAMMA);
            Ok(
                gsm_algos::gsm_parity(&m, &workloads::random_bits(n, cfg.seed))?
                    .run
                    .ledger
                    .total_time(),
            )
        },
        &cfg.contract_ns,
        cfg.tolerance,
    )?;

    Ok(FamilyReport {
        family: "gsm-parity",
        model: "GSM",
        diagnostics,
        race: Some(race),
        contract: Some(contract),
    })
}

// ---------------------------------------------------------------------------
// The deliberately racy fixture (excluded from `analyze_all`)
// ---------------------------------------------------------------------------

fn family_racy_fixture(cfg: &SuiteConfig) -> Result<FamilyReport> {
    // Four processors race to write their own pid into cell 0: the
    // observable output is whatever writer the arbiter picks, and the
    // declared contention bound of 1 is violated fourfold.
    let prog = FnProgram::new(
        4,
        |_pid| 0 as Word,
        |pid, _st: &mut Word, env: &mut PhaseEnv<'_>| {
            env.write(0, pid as Word + 1);
            Status::Done
        },
    );
    let machine = QsmMachine::qsm(G);
    let observe: Range<usize> = 0..1;
    let race = detect_races_qsm(&machine, &prog, &[], observe, &cfg.race())?;

    let (_, trace) = machine.run_traced(&prog, &[])?;
    let lint_cfg = LintConfig::qsm().with_contention_bound(1);
    let diagnostics = lint_qsm_trace(&trace, &lint_cfg);

    Ok(FamilyReport {
        family: "racy-fixture",
        model: "QSM",
        diagnostics,
        race: Some(race),
        contract: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn racy_fixture_is_flagged() {
        let report = analyze_family("racy-fixture", &SuiteConfig::quick(3)).unwrap();
        assert!(!report.clean());
        let race = report.race.unwrap();
        let w = race.witness.expect("racy fixture must yield a witness");
        assert_eq!(w.addr, 0);
        assert_eq!(w.contending_pids, vec![0, 1, 2, 3]);
        assert!(!report.diagnostics.is_empty());
    }

    #[test]
    fn unknown_family_is_rejected() {
        assert!(analyze_family("no-such-family", &SuiteConfig::quick(1)).is_err());
    }

    #[test]
    fn report_render_mentions_every_family() {
        let cfg = SuiteConfig::quick(5);
        let report = AnalysisReport {
            families: vec![
                analyze_family("or-write-tree", &cfg).unwrap(),
                analyze_family("racy-fixture", &cfg).unwrap(),
            ],
        };
        let text = report.render();
        assert!(text.contains("or-write-tree"));
        assert!(text.contains("racy-fixture"));
        assert!(text.contains("NOT CLEAN"));
    }
}
