//! Cost-contract checking: fit a measured cost sweep against the
//! asymptotic envelope an algorithm family declares.
//!
//! Each family exports a [`CostContract`] naming its Table 1 bound. The
//! checker runs a sweep over input sizes, calibrates the hidden constant
//! on the small-`n` prefix, and fails if any larger size exceeds the
//! calibrated envelope by more than the tolerance — i.e. if the measured
//! cost grows *faster* than the declared asymptotic shape.

use parbounds_models::{ContractParams, CostContract, Result};

/// One sweep point of a contract check.
#[derive(Debug, Clone)]
pub struct ContractPoint {
    /// Input size.
    pub n: usize,
    /// Measured cost (ledger time or phase count, per the contract's
    /// metric).
    pub measured: u64,
    /// Envelope value at this point's parameters (constant-free).
    pub predicted: f64,
    /// `measured / predicted`.
    pub ratio: f64,
}

/// Outcome of checking one family's contract.
#[derive(Debug, Clone)]
pub struct ContractReport {
    /// The family checked.
    pub family: &'static str,
    /// The declared formula (for rendering).
    pub formula: &'static str,
    /// The sweep.
    pub points: Vec<ContractPoint>,
    /// Hidden constant calibrated on the small-`n` prefix.
    pub fitted_constant: f64,
    /// Largest `ratio / fitted_constant` over the whole sweep.
    pub worst_ratio: f64,
    /// The tolerance the check ran with.
    pub tolerance: f64,
    /// True iff no point exceeded `tolerance · fitted_constant`.
    pub passed: bool,
}

/// Checks `contract` against a measured sweep.
///
/// * `params_for(n)` supplies the model parameters the envelope is
///   evaluated at;
/// * `measure(n)` runs the family at size `n` and returns the measured
///   cost in the contract's metric;
/// * `ns` is the (ascending) sweep; the first half calibrates the
///   constant, the rest must stay within `tolerance ×` of it.
///
/// `tolerance` absorbs both integer-granularity noise (ceilings in the
/// implementations vs. the smooth envelope) and the slack of `O(·)`
/// bounds on small inputs; 2–3 is typical.
pub fn check_contract(
    contract: &CostContract,
    params_for: impl Fn(usize) -> ContractParams,
    mut measure: impl FnMut(usize) -> Result<u64>,
    ns: &[usize],
    tolerance: f64,
) -> Result<ContractReport> {
    assert!(!ns.is_empty(), "contract sweep needs at least one size");
    let mut points = Vec::with_capacity(ns.len());
    for &n in ns {
        let measured = measure(n)?;
        let predicted = contract.envelope(&params_for(n));
        points.push(ContractPoint {
            n,
            measured,
            predicted,
            ratio: measured as f64 / predicted,
        });
    }

    let calib = points.len().div_ceil(2);
    let fitted_constant = points[..calib]
        .iter()
        .map(|p| p.ratio)
        .fold(f64::MIN, f64::max)
        .max(f64::MIN_POSITIVE);
    let worst_ratio = points
        .iter()
        .map(|p| p.ratio / fitted_constant)
        .fold(0.0, f64::max);
    Ok(ContractReport {
        family: contract.family,
        formula: contract.formula,
        points,
        fitted_constant,
        worst_ratio,
        tolerance,
        passed: worst_ratio <= tolerance,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log_contract() -> CostContract {
        CostContract::new("test-log", "QSM", "O(g·lg n)", |p| p.g * p.lg_n())
    }

    #[test]
    fn conforming_sweep_passes() {
        // Measured cost = 3·g·lg n exactly: constant 3 fits, ratios flat.
        let report = check_contract(
            &log_contract(),
            |n| ContractParams::qsm(n, 4, 8),
            |n| Ok((3.0 * 4.0 * (n as f64).log2()).round() as u64),
            &[64, 128, 256, 512, 1024],
            1.5,
        )
        .unwrap();
        assert!(report.passed, "worst ratio {}", report.worst_ratio);
        assert!(report.fitted_constant > 2.0 && report.fitted_constant < 4.0);
    }

    #[test]
    fn super_envelope_growth_fails() {
        // Measured cost = n, declared envelope lg n: the calibrated
        // constant from small n cannot cover the large sizes.
        let report = check_contract(
            &log_contract(),
            |n| ContractParams::qsm(n, 4, 8),
            |n| Ok(n as u64),
            &[64, 128, 256, 512, 1024, 2048],
            2.0,
        )
        .unwrap();
        assert!(!report.passed);
        assert!(report.worst_ratio > 2.0);
    }
}
