//! The lint pass: model-legality and hygiene rules evaluated over
//! execution traces.
//!
//! Each lint re-derives its measurement from the raw trace (who read and
//! wrote what, when) rather than trusting the ledger, so the pass doubles
//! as an independent audit of the engines' cost accounting assumptions.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::ops::Range;

use parbounds_models::{Addr, BspTrace, ExecTrace, GsmTrace};

use crate::diagnostics::{Diagnostic, Location, Rule};
use crate::rules;

/// Which cells count as the program's *outputs* for the unconsumed-write
/// rule (outputs are read by the host after termination, not in-trace).
#[derive(Debug, Clone)]
pub enum OutputSpec {
    /// Explicit output cell ranges.
    Cells(Vec<Range<Addr>>),
    /// Cells last written during the final `k` phases that contain any
    /// write are host-visible outputs. Bulk-synchronous algorithms deliver
    /// results in their closing phases; an *earlier* write that nothing
    /// ever reads is abandoned information.
    TailPhases(usize),
}

impl OutputSpec {
    fn tail_cutoff(&self, write_phases: &BTreeSet<usize>) -> Option<usize> {
        match self {
            OutputSpec::Cells(_) => None,
            OutputSpec::TailPhases(k) => {
                let k = (*k).min(write_phases.len());
                write_phases.iter().rev().nth(k.checked_sub(1)?).copied()
            }
        }
    }

    fn covers(&self, addr: Addr) -> bool {
        match self {
            OutputSpec::Cells(ranges) => ranges.iter().any(|r| r.contains(&addr)),
            OutputSpec::TailPhases(_) => false,
        }
    }
}

/// Configuration of the shared-memory (QSM/s-QSM/GSM) lint pass.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Model label used in diagnostic locations.
    pub model: &'static str,
    /// Per-cell queue-contention bound the family declares
    /// ([`Rule::ContentionOverBound`]); `None` disables the rule.
    pub contention_bound: Option<u64>,
    /// On an s-QSM, the symmetric-access contention bound
    /// ([`Rule::SqsmAsymmetry`]); `None` disables the rule.
    pub sqsm_bound: Option<u64>,
    /// GSM-only: size of the read-only γ-packed input region
    /// `[0, ⌈n/γ⌉)` ([`Rule::GsmGammaViolation`]); 0 disables the rule.
    pub input_cells: usize,
    /// Output declaration for [`Rule::UnconsumedWrite`].
    pub output: OutputSpec,
}

impl LintConfig {
    /// A QSM config with no declared bounds.
    pub fn qsm() -> Self {
        LintConfig {
            model: "QSM",
            contention_bound: None,
            sqsm_bound: None,
            input_cells: 0,
            output: OutputSpec::TailPhases(1),
        }
    }

    /// An s-QSM config (enables the asymmetry rule at the given bound).
    pub fn sqsm(sqsm_bound: u64) -> Self {
        LintConfig {
            model: "s-QSM",
            sqsm_bound: Some(sqsm_bound),
            ..Self::qsm()
        }
    }

    /// A GSM config guarding the first `input_cells` cells.
    pub fn gsm(input_cells: usize) -> Self {
        LintConfig {
            model: "GSM",
            input_cells,
            ..Self::qsm()
        }
    }

    /// Declares the per-cell contention bound (builder-style).
    pub fn with_contention_bound(mut self, bound: u64) -> Self {
        self.contention_bound = Some(bound);
        self
    }

    /// Declares the output cells (builder-style).
    pub fn with_output(mut self, output: OutputSpec) -> Self {
        self.output = output;
        self
    }
}

/// Configuration of the BSP lint pass.
#[derive(Debug, Clone)]
pub struct BspLintConfig {
    /// Per-component message bound (`h` per superstep) the family
    /// declares; `None` disables [`Rule::ContentionOverBound`].
    pub h_bound: Option<u64>,
}

impl BspLintConfig {
    /// No declared bounds (undeliverable-send rule only).
    pub fn new() -> Self {
        BspLintConfig { h_bound: None }
    }

    /// Declares the per-component message bound (builder-style).
    pub fn with_h_bound(mut self, bound: u64) -> Self {
        self.h_bound = Some(bound);
        self
    }
}

impl Default for BspLintConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// Normalized per-phase access sets shared by the QSM and GSM passes.
struct PhaseAccess {
    /// Per-cell read-request count.
    reads: BTreeMap<Addr, u64>,
    /// Per-cell write-request count.
    writes: BTreeMap<Addr, u64>,
    /// Pids that issued reads while finishing this phase.
    dead_readers: Vec<(usize, usize)>,
}

fn access_of(
    reads_per_pid: impl Iterator<Item = (usize, Vec<Addr>)>,
    writes_per_pid: impl Iterator<Item = (usize, Vec<Addr>)>,
    finished: &[bool],
) -> PhaseAccess {
    let mut reads: BTreeMap<Addr, u64> = BTreeMap::new();
    let mut writes: BTreeMap<Addr, u64> = BTreeMap::new();
    let mut dead_readers = Vec::new();
    for (pid, addrs) in reads_per_pid {
        if !addrs.is_empty() && finished.get(pid).copied().unwrap_or(false) {
            dead_readers.push((pid, addrs.len()));
        }
        for a in addrs {
            *reads.entry(a).or_insert(0) += 1;
        }
    }
    for (pid, addrs) in writes_per_pid {
        let _ = pid;
        for a in addrs {
            *writes.entry(a).or_insert(0) += 1;
        }
    }
    PhaseAccess {
        reads,
        writes,
        dead_readers,
    }
}

/// Runs every applicable rule over one phase's access sets; shared between
/// the QSM and GSM passes.
#[allow(clippy::too_many_arguments)]
fn lint_phase(
    cfg: &LintConfig,
    phase: usize,
    acc: &PhaseAccess,
    last_write: &mut HashMap<Addr, usize>,
    last_read: &mut HashMap<Addr, usize>,
    write_phases: &mut BTreeSet<usize>,
    out: &mut Vec<Diagnostic>,
) {
    let loc = |pid: Option<usize>, addr: Option<Addr>| Location {
        model: cfg.model,
        phase,
        pid,
        addr,
    };

    // Rule: a cell may be read or written in one phase, not both
    // (Section 2.1). The engines reject this at run time; re-checking the
    // trace guards emulator-produced and hand-built traces.
    for (&addr, &r) in acc.reads.iter() {
        if let Some(&w) = acc.writes.get(&addr) {
            out.push(Diagnostic::new(
                Rule::SamePhaseReadWrite,
                loc(None, Some(addr)),
                rules::same_phase_read_write(r, w),
            ));
        }
    }

    // Rule: per-cell queue contention within the declared bound.
    if let Some(bound) = cfg.contention_bound {
        for (&addr, &k) in acc.reads.iter().chain(acc.writes.iter()) {
            if k > bound {
                out.push(Diagnostic::new(
                    Rule::ContentionOverBound,
                    loc(None, Some(addr)),
                    rules::contention_over_bound(k, bound),
                ));
            }
        }
    }

    // Rule: s-QSM symmetric charging — contention beyond the declared
    // symmetric bound means the program accesses memory QSM-style where
    // κ is charged through the gap.
    if cfg.model == "s-QSM" {
        if let Some(bound) = cfg.sqsm_bound {
            for (&addr, &k) in acc.reads.iter().chain(acc.writes.iter()) {
                if k > bound {
                    out.push(Diagnostic::new(
                        Rule::SqsmAsymmetry,
                        loc(None, Some(addr)),
                        rules::sqsm_asymmetry(k, bound),
                    ));
                }
            }
        }
    }

    // Rule: reads issued in a processor's final phase are discarded.
    for &(pid, n) in &acc.dead_readers {
        out.push(Diagnostic::new(
            Rule::DeadRead,
            loc(Some(pid), None),
            rules::dead_read(n),
        ));
    }

    // GSM rule: the γ-packed input region is read-only.
    if cfg.input_cells > 0 {
        for (&addr, _) in acc.writes.range(..cfg.input_cells) {
            out.push(Diagnostic::new(
                Rule::GsmGammaViolation,
                loc(None, Some(addr)),
                rules::gsm_gamma_violation(addr, cfg.input_cells),
            ));
        }
    }

    for (&addr, _) in acc.writes.iter() {
        last_write.insert(addr, phase);
    }
    for (&addr, _) in acc.reads.iter() {
        last_read.insert(addr, phase);
    }
    if !acc.writes.is_empty() {
        write_phases.insert(phase);
    }
}

/// Emits [`Rule::UnconsumedWrite`] diagnostics after all phases are folded.
fn lint_unconsumed(
    cfg: &LintConfig,
    last_write: &HashMap<Addr, usize>,
    last_read: &HashMap<Addr, usize>,
    write_phases: &BTreeSet<usize>,
    out: &mut Vec<Diagnostic>,
) {
    let cutoff = cfg.output.tail_cutoff(write_phases);
    let mut offenders: Vec<(Addr, usize)> = last_write
        .iter()
        .filter(|&(&addr, &wp)| {
            let read_after = last_read.get(&addr).is_some_and(|&rp| rp > wp);
            let is_output = match cutoff {
                Some(c) => wp >= c,
                None => cfg.output.covers(addr),
            };
            !read_after && !is_output
        })
        .map(|(&addr, &wp)| (addr, wp))
        .collect();
    offenders.sort_unstable();
    for (addr, wp) in offenders {
        out.push(Diagnostic::new(
            Rule::UnconsumedWrite,
            Location {
                model: cfg.model,
                phase: wp,
                pid: None,
                addr: Some(addr),
            },
            rules::unconsumed_write(),
        ));
    }
}

/// Flags a trace whose recording stopped at the phase cap: every
/// phase-indexed rule only audited the retained prefix, and a clean report
/// must not be read as certifying the whole run.
fn lint_truncation(
    model: &'static str,
    recorded: usize,
    total: usize,
    truncated: bool,
    out: &mut Vec<Diagnostic>,
) {
    if truncated {
        out.push(Diagnostic::new(
            Rule::TruncatedTrace,
            Location {
                model,
                phase: recorded,
                pid: None,
                addr: None,
            },
            rules::truncated_trace(recorded, total),
        ));
    }
}

/// Lints a QSM/s-QSM execution trace.
pub fn lint_qsm_trace(trace: &ExecTrace, cfg: &LintConfig) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    lint_truncation(
        cfg.model,
        trace.phases.len(),
        trace.total_phases,
        trace.truncated,
        &mut out,
    );
    let mut last_write = HashMap::new();
    let mut last_read = HashMap::new();
    let mut write_phases = BTreeSet::new();
    for (phase, pt) in trace.phases.iter().enumerate() {
        let acc = access_of(
            pt.reads
                .iter()
                .enumerate()
                .map(|(pid, rs)| (pid, rs.iter().map(|&(a, _)| a).collect())),
            pt.writes
                .iter()
                .enumerate()
                .map(|(pid, ws)| (pid, ws.iter().map(|&(a, _)| a).collect())),
            &pt.finished,
        );
        lint_phase(
            cfg,
            phase,
            &acc,
            &mut last_write,
            &mut last_read,
            &mut write_phases,
            &mut out,
        );
    }
    lint_unconsumed(cfg, &last_write, &last_read, &write_phases, &mut out);
    out
}

/// Lints a GSM execution trace.
pub fn lint_gsm_trace(trace: &GsmTrace, cfg: &LintConfig) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    lint_truncation(
        cfg.model,
        trace.phases.len(),
        trace.total_phases,
        trace.truncated,
        &mut out,
    );
    let mut last_write = HashMap::new();
    let mut last_read = HashMap::new();
    let mut write_phases = BTreeSet::new();
    for (phase, pt) in trace.phases.iter().enumerate() {
        let acc = access_of(
            pt.reads
                .iter()
                .enumerate()
                .map(|(pid, rs)| (pid, rs.iter().map(|(a, _)| *a).collect())),
            pt.writes
                .iter()
                .enumerate()
                .map(|(pid, ws)| (pid, ws.iter().map(|&(a, _)| a).collect())),
            &pt.finished,
        );
        lint_phase(
            cfg,
            phase,
            &acc,
            &mut last_write,
            &mut last_read,
            &mut write_phases,
            &mut out,
        );
    }
    // GSM cells accumulate information, so the input cells double as
    // output unless explicitly declared; the unconsumed rule still runs
    // over the merge cells.
    lint_unconsumed(cfg, &last_write, &last_read, &write_phases, &mut out);
    out
}

/// Lints a BSP superstep trace.
pub fn lint_bsp_trace(trace: &BspTrace, cfg: &BspLintConfig) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    lint_truncation(
        "BSP",
        trace.steps.len(),
        trace.total_steps,
        trace.truncated,
        &mut out,
    );
    let p = trace.steps.first().map_or(0, |s| s.finished.len());

    // First step at which each component finished (it executes that step,
    // then never again); deliveries scheduled at or after `finished_at + 1`
    // are lost.
    let mut finished_at: Vec<Option<usize>> = vec![None; p];
    for (step, st) in trace.steps.iter().enumerate() {
        for (pid, fin) in finished_at.iter_mut().enumerate() {
            if st.finished[pid] && fin.is_none() {
                *fin = Some(step);
            }
        }
    }

    for (step, st) in trace.steps.iter().enumerate() {
        // Rule: messages are delivered *next* superstep (Section 2.1.3);
        // a send to a component that finished at or before the sending
        // superstep can never be received.
        for (src, sends) in st.sent.iter().enumerate() {
            for &(dest, msg) in sends {
                if finished_at
                    .get(dest)
                    .copied()
                    .flatten()
                    .is_some_and(|f| f <= step)
                {
                    out.push(Diagnostic::new(
                        Rule::BspUndeliverableSend,
                        Location {
                            model: "BSP",
                            phase: step,
                            pid: Some(src),
                            addr: None,
                        },
                        rules::bsp_undeliverable_send(
                            msg.tag,
                            msg.value,
                            dest,
                            finished_at[dest].unwrap(),
                        ),
                    ));
                }
            }
        }

        // Rule: declared h-relation bound per component per superstep.
        if let Some(bound) = cfg.h_bound {
            for pid in 0..p {
                let sent = st.sent[pid].len() as u64;
                let recv = st.received[pid].len() as u64;
                let h = sent.max(recv);
                if h > bound {
                    out.push(Diagnostic::new(
                        Rule::ContentionOverBound,
                        Location {
                            model: "BSP",
                            phase: step,
                            pid: Some(pid),
                            addr: None,
                        },
                        rules::h_over_bound(h, sent, recv, bound),
                    ));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use parbounds_models::{BspStepTrace, GsmPhaseTrace, Msg, PhaseTrace};

    fn qsm_phase(n: usize) -> PhaseTrace {
        PhaseTrace {
            reads: vec![Vec::new(); n],
            writes: vec![Vec::new(); n],
            committed: Vec::new(),
            finished: vec![false; n],
        }
    }

    fn trace_of(phases: Vec<PhaseTrace>) -> ExecTrace {
        ExecTrace {
            total_phases: phases.len(),
            truncated: false,
            phases,
        }
    }

    #[test]
    fn truncated_trace_is_flagged_and_full_trace_is_not() {
        let mut trace = trace_of(vec![qsm_phase(2)]);
        assert!(lint_qsm_trace(&trace, &LintConfig::qsm())
            .iter()
            .all(|d| d.rule != Rule::TruncatedTrace));
        trace.total_phases = 9;
        trace.truncated = true;
        let diags = lint_qsm_trace(&trace, &LintConfig::qsm());
        assert!(diags.iter().any(|d| d.rule == Rule::TruncatedTrace
            && d.location.phase == 1
            && d.message.contains("1 of 9")));
        let bsp = BspTrace {
            steps: vec![BspStepTrace {
                sent: vec![Vec::new(); 2],
                received: vec![Vec::new(); 2],
                executed: vec![true; 2],
                finished: vec![false; 2],
            }],
            total_steps: 4,
            truncated: true,
        };
        assert!(lint_bsp_trace(&bsp, &BspLintConfig::new())
            .iter()
            .any(|d| d.rule == Rule::TruncatedTrace));
    }

    #[test]
    fn same_phase_read_write_is_flagged() {
        let mut pt = qsm_phase(2);
        pt.reads[0].push((5, 0));
        pt.writes[1].push((5, 9));
        let trace = trace_of(vec![pt]);
        let diags = lint_qsm_trace(&trace, &LintConfig::qsm());
        assert!(diags.iter().any(|d| d.rule == Rule::SamePhaseReadWrite
            && d.location.addr == Some(5)
            && d.location.phase == 0));
    }

    #[test]
    fn contention_over_declared_bound_is_flagged() {
        let mut pt = qsm_phase(4);
        for pid in 0..4 {
            pt.writes[pid].push((7, pid as i64));
        }
        let trace = trace_of(vec![pt]);
        let cfg = LintConfig::qsm().with_contention_bound(2);
        let diags = lint_qsm_trace(&trace, &cfg);
        assert!(diags
            .iter()
            .any(|d| d.rule == Rule::ContentionOverBound && d.location.addr == Some(7)));
        // Within bound: clean.
        let cfg = LintConfig::qsm().with_contention_bound(4);
        let mut pt = qsm_phase(4);
        for pid in 0..4 {
            pt.writes[pid].push((7, pid as i64));
        }
        assert!(lint_qsm_trace(&trace_of(vec![pt]), &cfg)
            .iter()
            .all(|d| d.rule != Rule::ContentionOverBound));
    }

    #[test]
    fn sqsm_asymmetry_fires_only_on_sqsm() {
        let mk = || {
            let mut pt = qsm_phase(8);
            for pid in 0..8 {
                pt.reads[pid].push((3, 0));
            }
            trace_of(vec![pt])
        };
        let diags = lint_qsm_trace(&mk(), &LintConfig::sqsm(2));
        assert!(diags.iter().any(|d| d.rule == Rule::SqsmAsymmetry));
        let diags = lint_qsm_trace(&mk(), &LintConfig::qsm());
        assert!(diags.iter().all(|d| d.rule != Rule::SqsmAsymmetry));
    }

    #[test]
    fn dead_read_in_final_phase_is_flagged() {
        let mut pt = qsm_phase(1);
        pt.reads[0].push((2, 0));
        pt.finished[0] = true;
        let trace = trace_of(vec![pt]);
        let diags = lint_qsm_trace(&trace, &LintConfig::qsm());
        assert!(diags
            .iter()
            .any(|d| d.rule == Rule::DeadRead && d.location.pid == Some(0)));
    }

    #[test]
    fn unconsumed_write_respects_output_spec() {
        // Phase 0 writes cells 10 (never read) and 11 (read in phase 1);
        // phase 1 writes cell 12 (the tail write = output).
        let mut p0 = qsm_phase(2);
        p0.writes[0].push((10, 1));
        p0.writes[1].push((11, 2));
        let mut p1 = qsm_phase(2);
        p1.reads[0].push((11, 2));
        p1.writes[1].push((12, 3));
        let trace = trace_of(vec![p0, p1]);
        let diags = lint_qsm_trace(&trace, &LintConfig::qsm());
        let unconsumed: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == Rule::UnconsumedWrite)
            .collect();
        assert_eq!(unconsumed.len(), 1);
        assert_eq!(unconsumed[0].location.addr, Some(10));
        // Declaring cell 10 an output silences it.
        let cfg = LintConfig::qsm().with_output(OutputSpec::Cells(vec![10..11, 12..13]));
        let mut p0 = qsm_phase(2);
        p0.writes[0].push((10, 1));
        p0.writes[1].push((11, 2));
        let mut p1 = qsm_phase(2);
        p1.reads[0].push((11, 2));
        p1.writes[1].push((12, 3));
        let trace = trace_of(vec![p0, p1]);
        assert!(lint_qsm_trace(&trace, &cfg)
            .iter()
            .all(|d| d.rule != Rule::UnconsumedWrite));
    }

    #[test]
    fn gsm_gamma_region_is_read_only() {
        let mut pt = GsmPhaseTrace {
            reads: vec![Vec::new()],
            writes: vec![Vec::new()],
            big_steps: 1,
            finished: vec![true],
        };
        pt.writes[0].push((1, 7));
        let trace = GsmTrace {
            total_phases: 1,
            truncated: false,
            phases: vec![pt],
        };
        let diags = lint_gsm_trace(&trace, &LintConfig::gsm(4));
        assert!(diags
            .iter()
            .any(|d| d.rule == Rule::GsmGammaViolation && d.location.addr == Some(1)));
        // Writes past the input region are fine.
        let mut pt = GsmPhaseTrace {
            reads: vec![Vec::new()],
            writes: vec![Vec::new()],
            big_steps: 1,
            finished: vec![true],
        };
        pt.writes[0].push((4, 7));
        let trace = GsmTrace {
            total_phases: 1,
            truncated: false,
            phases: vec![pt],
        };
        assert!(lint_gsm_trace(&trace, &LintConfig::gsm(4))
            .iter()
            .all(|d| d.rule != Rule::GsmGammaViolation));
    }

    #[test]
    fn bsp_send_to_finished_component_is_flagged() {
        // Step 0: component 1 finishes. Step 1: component 0 sends to 1.
        let msg = Msg {
            src: 0,
            tag: 3,
            value: 42,
        };
        let steps = vec![
            BspStepTrace {
                sent: vec![Vec::new(), Vec::new()],
                received: vec![Vec::new(), Vec::new()],
                executed: vec![true, true],
                finished: vec![false, true],
            },
            BspStepTrace {
                sent: vec![vec![(1, msg)], Vec::new()],
                received: vec![Vec::new(), Vec::new()],
                executed: vec![true, false],
                finished: vec![true, false],
            },
        ];
        let trace = BspTrace {
            total_steps: steps.len(),
            truncated: false,
            steps,
        };
        let diags = lint_bsp_trace(&trace, &BspLintConfig::new());
        assert!(diags.iter().any(|d| d.rule == Rule::BspUndeliverableSend
            && d.location.phase == 1
            && d.location.pid == Some(0)));
    }

    #[test]
    fn bsp_h_relation_bound_is_enforced() {
        let msg = Msg {
            src: 0,
            tag: 0,
            value: 0,
        };
        let steps = vec![BspStepTrace {
            sent: vec![vec![(1, msg); 5], Vec::new()],
            received: vec![Vec::new(), Vec::new()],
            executed: vec![true, true],
            finished: vec![false, false],
        }];
        let trace = BspTrace {
            total_steps: steps.len(),
            truncated: false,
            steps,
        };
        let cfg = BspLintConfig::new().with_h_bound(4);
        assert!(lint_bsp_trace(&trace, &cfg)
            .iter()
            .any(|d| d.rule == Rule::ContentionOverBound));
        let cfg = BspLintConfig::new().with_h_bound(5);
        assert!(lint_bsp_trace(&trace, &cfg).is_empty());
    }
}
