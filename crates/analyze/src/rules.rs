//! The single source of truth for lint rule messages.
//!
//! Both analysis paths — the dynamic trace lints in [`crate::lints`] and
//! the static plan analyzer in [`crate::statics`] — flag the same model
//! rules, and they must say the same thing when they do: a CI log line
//! produced from a trace has to be greppable against one produced from a
//! plan. Every message template therefore lives here, keyed by the
//! [`Rule`](crate::diagnostics::Rule) it accompanies, and the two passes
//! only differ in *where* their measurements come from.

use std::fmt::Display;

use parbounds_models::{Addr, Word};

/// [`Rule::SamePhaseReadWrite`](crate::diagnostics::Rule::SamePhaseReadWrite):
/// a cell saw both reads and writes in one phase.
pub fn same_phase_read_write(reads: u64, writes: u64) -> String {
    format!("cell has {reads} read(s) and {writes} write(s) in the same phase")
}

/// [`Rule::ContentionOverBound`](crate::diagnostics::Rule::ContentionOverBound):
/// per-cell queue contention beyond the family's declared bound.
pub fn contention_over_bound(k: u64, bound: u64) -> String {
    format!("contention {k} exceeds declared bound {bound}")
}

/// [`Rule::SqsmAsymmetry`](crate::diagnostics::Rule::SqsmAsymmetry):
/// contention beyond the declared symmetric bound on an s-QSM.
pub fn sqsm_asymmetry(k: u64, bound: u64) -> String {
    format!(
        "contention {k} > {bound} is charged g·κ on the s-QSM; \
         restructure toward symmetric fan-in"
    )
}

/// [`Rule::DeadRead`](crate::diagnostics::Rule::DeadRead): reads issued in
/// a processor's final phase are never delivered.
pub fn dead_read(n: usize) -> String {
    format!("{n} read(s) issued in the processor's final phase are never delivered")
}

/// [`Rule::GsmGammaViolation`](crate::diagnostics::Rule::GsmGammaViolation):
/// a write into the γ-packed read-only input region.
pub fn gsm_gamma_violation(addr: Addr, input_cells: usize) -> String {
    format!("write into γ-packed input cell {addr} (input region is [0, {input_cells}))")
}

/// [`Rule::BspUndeliverableSend`](crate::diagnostics::Rule::BspUndeliverableSend):
/// a message addressed to a component that already finished. `value` is the
/// concrete word on the dynamic path and the value *rule* on the static one.
pub fn bsp_undeliverable_send(
    tag: Word,
    value: impl Display,
    dest: usize,
    finished_step: usize,
) -> String {
    format!(
        "message (tag {tag}, value {value}) sent to component {dest}, which \
         finished in superstep {finished_step} — next-superstep delivery is lost"
    )
}

/// [`Rule::ContentionOverBound`](crate::diagnostics::Rule::ContentionOverBound)
/// on the BSP: a component routing more than the declared h-relation.
pub fn h_over_bound(h: u64, sent: u64, recv: u64, bound: u64) -> String {
    format!(
        "component routes {h} messages (sent {sent}, received {recv}), \
         exceeding the declared h-relation bound {bound}"
    )
}

/// [`Rule::UnconsumedWrite`](crate::diagnostics::Rule::UnconsumedWrite):
/// a written cell whose final value nothing reads.
pub fn unconsumed_write() -> String {
    "cell is written but its final value is never read and is not a declared output".to_string()
}

/// [`Rule::DeadPhase`](crate::diagnostics::Rule::DeadPhase): a phase that
/// issues no requests, charges no work, and retires no processor.
pub fn dead_phase(label: &str) -> String {
    format!(
        "phase '{label}' issues no requests, charges no work, and retires no \
         processor — it only pays the model's idle minimum"
    )
}

/// [`Rule::ParallelUnderfill`](crate::diagnostics::Rule::ParallelUnderfill):
/// more host worker threads requested than the plan has processors.
pub fn parallel_underfill(procs: usize, workers: usize) -> String {
    format!(
        "plan has {procs} processor(s) but {workers} host worker thread(s) \
         were requested — {unused} shard(s) stay empty every phase; \
         parallel speedup is capped at {procs} thread(s)",
        unused = workers.saturating_sub(procs)
    )
}

/// [`Rule::CompileIneligible`](crate::diagnostics::Rule::CompileIneligible):
/// a node blocks the compiled straight-line fast path; `node` names it and
/// `reason` quotes the violated eligibility rule.
pub fn compile_ineligible(node: &str, reason: &str) -> String {
    format!(
        "{node} blocks plan compilation: {reason} — the plan runs on the \
         checked interpreter instead of the straight-line schedule"
    )
}

/// [`Rule::TruncatedTrace`](crate::diagnostics::Rule::TruncatedTrace): the
/// trace stopped recording at the phase cap, so the lint pass only audited
/// a prefix of the run.
pub fn truncated_trace(recorded: usize, total: usize) -> String {
    format!(
        "trace retains {recorded} of {total} executed phases (trace_phase_cap \
         hit) — lints only audited the recorded prefix; raise the cap for a \
         full audit"
    )
}

/// [`Rule::SymbolicMismatch`](crate::diagnostics::Rule::SymbolicMismatch):
/// a plan recognized as a family instance whose symbolic ledger, evaluated
/// at the plan's parameter point, disagrees with the numeric prediction.
pub fn symbolic_mismatch(family: &str, n: u64, p: u64, g: u64, l: u64) -> String {
    format!(
        "plan is a recognized '{family}' instance but its symbolic ledger \
         evaluated at (n={n}, p={p}, g={g}, L={l}) differs from the numeric \
         prediction — the family's closed form no longer describes this \
         schedule"
    )
}

/// [`Rule::AuditGap`](crate::diagnostics::Rule::AuditGap): a swept family
/// whose lower-bound audit is missing or covers a smaller `n` than the
/// upper-bound sweep.
pub fn audit_gap(family: &str, audited_n: Option<u64>, swept_n: u64) -> String {
    match audited_n {
        None => format!(
            "family '{family}' is swept symbolically up to n={swept_n} but has \
             no adversary lower-bound audit registered — its Table 1 pairing \
             is one-sided"
        ),
        Some(a) => format!(
            "family '{family}' is swept symbolically up to n={swept_n} but its \
             adversary lower-bound audit only covers n={a} — the audit lags \
             the sweep"
        ),
    }
}

/// [`Rule::BoundRegression`](crate::diagnostics::Rule::BoundRegression):
/// a family's derived Θ-normal form strictly dominates its Table 1 row.
pub fn bound_regression(family: &str, derived: &str, fixture: &str) -> String {
    format!(
        "family '{family}' derives to {derived}, which strictly dominates \
         its Table 1 bound {fixture} — the schedule asymptotically overpays \
         the paper's analysis"
    )
}
