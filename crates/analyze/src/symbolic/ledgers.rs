//! Symbolic per-phase ledgers for the §8 plan families.
//!
//! Each family's [`SymLedger`] states, with `n, p, g, L` left free, the
//! exact `(m_op, m_rw, κ)` triple (shared models) or `(w, h)` pair (BSP)
//! of every phase its combinator emits, grouped into round-indexed
//! [`SymGroup`]s. "Exact" is meant literally: boundary rounds with
//! partial groups, guard saturation, and the `max(1)` floors are all in
//! the expressions, so [`SymLedger::eval_ledger`] reproduces
//! `predict_ledger`'s numeric output *cell for cell* at every valid
//! parameter point (`n ≥ 2` / `p ≥ 2`; the registry floors sizes at 8).
//!
//! The derivations mirror `parbounds_ir::combinators` phase for phase;
//! the differential suite in [`crate::symbolic::conformance`] is the
//! machine-checked proof that they stay in sync.

use parbounds_models::{CostLedger, ModelError, PhaseCost};

use super::expr::build::{add, c, cdiv, clog, fdiv, maxover, maxx, minn, mul, pow, sub, sum};
use super::expr::{GridPoint, SymError, SymExpr};

/// Which model's phase-cost rule closes a symbolic ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SymModel {
    /// QSM: `max(m_op, g·m_rw, κ)`.
    Qsm,
    /// s-QSM: `max(m_op, g·m_rw, g·κ)`.
    SQsm,
    /// BSP: `max(w, g·h, L)` (the `m_op`/`m_rw` slots carry `w`/`h`).
    Bsp,
}

/// One phase inside a group; the expressions may reference the group's
/// round index `R`.
#[derive(Debug, Clone)]
pub struct SymPhase {
    /// Display label (mirrors the combinator's phase label prefix).
    pub label: &'static str,
    /// Shared models: `m_op`. BSP: the superstep work bound `w`.
    pub m_op: SymExpr,
    /// Shared models: `m_rw`. BSP: the `h`-relation.
    pub m_rw: SymExpr,
    /// Shared models: κ. Ignored on the BSP (recorded as 1).
    pub kappa: SymExpr,
}

/// A run of structurally-identical phases indexed by `R = 0..count`.
#[derive(Debug, Clone)]
pub struct SymGroup {
    /// Number of iterations of this group.
    pub count: SymExpr,
    /// Phases emitted per iteration, in plan order.
    pub phases: Vec<SymPhase>,
}

/// A family's full symbolic ledger.
#[derive(Debug, Clone)]
pub struct SymLedger {
    /// Registry family name.
    pub family: &'static str,
    /// Cost model closing the ledger.
    pub model: SymModel,
    /// Phase groups in plan order.
    pub groups: Vec<SymGroup>,
}

impl SymLedger {
    /// The symbolic cost of one phase under this ledger's model.
    pub fn cost_expr(&self, ph: &SymPhase) -> SymExpr {
        match self.model {
            SymModel::Qsm => maxx(vec![
                ph.m_op.clone(),
                mul(vec![SymExpr::G, maxx(vec![ph.m_rw.clone(), c(1)])]),
                maxx(vec![ph.kappa.clone(), c(1)]),
            ]),
            SymModel::SQsm => maxx(vec![
                ph.m_op.clone(),
                mul(vec![SymExpr::G, maxx(vec![ph.m_rw.clone(), c(1)])]),
                mul(vec![SymExpr::G, maxx(vec![ph.kappa.clone(), c(1)])]),
            ]),
            SymModel::Bsp => maxx(vec![
                ph.m_op.clone(),
                mul(vec![SymExpr::G, ph.m_rw.clone()]),
                SymExpr::L,
            ]),
        }
    }

    /// Total symbolic time: `Σ` over groups of the per-iteration phase
    /// costs (collapsed to closed products where the round index is
    /// unused).
    pub fn total_expr(&self) -> SymExpr {
        let mut terms = Vec::new();
        for grp in &self.groups {
            let body = add(grp.phases.iter().map(|ph| self.cost_expr(ph)).collect());
            terms.push(sum(grp.count.clone(), body));
        }
        add(terms).simplify()
    }

    /// Total symbolic phase count.
    pub fn phase_count_expr(&self) -> SymExpr {
        add(self
            .groups
            .iter()
            .map(|grp| mul(vec![grp.count.clone(), c(grp.phases.len() as u64)]))
            .collect())
        .simplify()
    }

    /// Evaluates the ledger at a concrete point, producing the same
    /// [`CostLedger`] the numeric predictor derives from the
    /// instantiated plan — bit for bit.
    pub fn eval_ledger(&self, pt: GridPoint) -> Result<CostLedger, SymError> {
        let mut out = CostLedger::new();
        for grp in &self.groups {
            let count = grp.count.eval(pt)?;
            for r in 0..count {
                for ph in &grp.phases {
                    let m_op = ph.m_op.eval_with(pt, Some(r), None)?;
                    let m_rw = ph.m_rw.eval_with(pt, Some(r), None)?;
                    let kappa = ph.kappa.eval_with(pt, Some(r), None)?;
                    let (cell, cost) = match self.model {
                        SymModel::Qsm => {
                            let m_rw = m_rw.max(1);
                            let kappa = kappa.max(1);
                            (
                                PhaseCost {
                                    m_op,
                                    m_rw,
                                    kappa,
                                    cost: 0,
                                },
                                m_op.max(pt.g.saturating_mul(m_rw)).max(kappa),
                            )
                        }
                        SymModel::SQsm => {
                            let m_rw = m_rw.max(1);
                            let kappa = kappa.max(1);
                            (
                                PhaseCost {
                                    m_op,
                                    m_rw,
                                    kappa,
                                    cost: 0,
                                },
                                m_op.max(pt.g.saturating_mul(m_rw))
                                    .max(pt.g.saturating_mul(kappa)),
                            )
                        }
                        SymModel::Bsp => {
                            // w rides in m_op, h in m_rw; the ledger
                            // records m_rw = max(h, 1) and κ = 1, exactly
                            // as the numeric BSP fold does.
                            let (w, h) = (m_op, m_rw);
                            (
                                PhaseCost {
                                    m_op: w,
                                    m_rw: h.max(1),
                                    kappa: 1,
                                    cost: 0,
                                },
                                w.max(pt.g.saturating_mul(h)).max(pt.l),
                            )
                        }
                    };
                    out.push(PhaseCost { cost, ..cell });
                }
            }
        }
        Ok(out)
    }
}

/// The `k` recipe of a family, as a symbolic expression (mirrors
/// `parbounds_ir::FanRecipe`).
fn k_or() -> SymExpr {
    maxx(vec![SymExpr::G, c(2)])
}
fn k_broadcast() -> SymExpr {
    maxx(vec![add(vec![SymExpr::G, c(1)]), c(2)])
}
fn k_bsp() -> SymExpr {
    maxx(vec![fdiv(SymExpr::L, maxx(vec![SymExpr::G, c(1)])), c(2)])
}

/// A unit-triple phase: one op, one access, contention 1.
fn unit(label: &'static str) -> SymPhase {
    SymPhase {
        label,
        m_op: c(1),
        m_rw: c(1),
        kappa: c(1),
    }
}

/// `min(k − 1, ⌈(p − x)/k^m⌉ − 1)` — the BSP combinators' sender count
/// `fanin_senders(x, k, m, p)`, i.e. how many level-`m` children a node
/// at pid `x` actually has. Saturating: an empty tail yields 0.
fn bsp_children(k: SymExpr, x: SymExpr, m: SymExpr) -> SymExpr {
    minn(vec![
        sub(k.clone(), c(1)),
        sub(cdiv(sub(SymExpr::P, x), pow(k, m)), c(1)),
    ])
}

/// The QSM OR write tree (`fan-in-write-tree`, recipe `k = max(2, g)`).
///
/// Leaf read; `D = ⌈log_k n⌉` rounds of a guarded group write (contention
/// `min(k, ⌈n/k^R⌉)` at the densest group) followed by a representative
/// read; publish.
pub fn or_write_tree_ledger() -> SymLedger {
    let k = k_or();
    let depth = clog(SymExpr::N, k.clone());
    SymLedger {
        family: "or-write-tree",
        model: SymModel::Qsm,
        groups: vec![
            SymGroup {
                count: c(1),
                phases: vec![unit("leaf-read")],
            },
            SymGroup {
                count: depth,
                phases: vec![
                    SymPhase {
                        label: "level-write",
                        m_op: c(1),
                        m_rw: c(1),
                        kappa: minn(vec![k.clone(), cdiv(SymExpr::N, pow(k, SymExpr::R))]),
                    },
                    unit("level-read"),
                ],
            },
            SymGroup {
                count: c(1),
                phases: vec![unit("publish")],
            },
        ],
    }
}

/// The padded OR write tree: the regression fixture. Identical to
/// [`or_write_tree_ledger`] plus `⌈log₂ n⌉` root self-reads before the
/// publish phase, each a full gap `g` — enough to lift the total from
/// `Θ(g·log n/log g)` to `Θ(g·log n)`.
pub fn or_write_tree_padded_ledger() -> SymLedger {
    let mut ledger = or_write_tree_ledger();
    ledger.family = "or-write-tree-padded";
    let publish = ledger.groups.pop().expect("write tree ends in publish");
    ledger.groups.push(SymGroup {
        count: clog(SymExpr::N, c(2)),
        phases: vec![unit("pad")],
    });
    ledger.groups.push(publish);
    ledger
}

/// The s-QSM binary parity read tree (`fan-in-read-tree`, `k = 2`).
///
/// `D = ⌈log₂ n⌉` rounds of (node reads its two children; node writes
/// its fold one level up); all contentions are 1. Valid for `n ≥ 2`
/// (the degenerate single-leaf tree has a different two-phase shape).
pub fn parity_read_tree_ledger() -> SymLedger {
    SymLedger {
        family: "parity-read-tree",
        model: SymModel::SQsm,
        groups: vec![SymGroup {
            count: clog(SymExpr::N, c(2)),
            phases: vec![
                SymPhase {
                    label: "gather",
                    m_op: c(2),
                    m_rw: c(2),
                    kappa: c(1),
                },
                unit("fold"),
            ],
        }],
    }
}

/// The QSM broadcast (`fan-out k = max(2, g + 1)`).
///
/// Root round (read, write), then `R = ⌈log_k n⌉` rounds in which the
/// joiners of round `R+1` read their parent's cell — the residue-0 class
/// is the densest, with `min(k, ⌈n/k^R⌉) − 1` readers — and write their
/// own copy.
pub fn broadcast_ledger() -> SymLedger {
    let k = k_broadcast();
    SymLedger {
        family: "broadcast",
        model: SymModel::Qsm,
        groups: vec![
            SymGroup {
                count: c(1),
                phases: vec![unit("seed-read"), unit("seed-write")],
            },
            SymGroup {
                count: clog(SymExpr::N, k.clone()),
                phases: vec![
                    SymPhase {
                        label: "fan-read",
                        m_op: c(1),
                        m_rw: c(1),
                        kappa: sub(
                            minn(vec![k.clone(), cdiv(SymExpr::N, pow(k, SymExpr::R))]),
                            c(1),
                        ),
                    },
                    unit("fan-write"),
                ],
            },
        ],
    }
}

/// The QSM `k`-ary prefix sweep (`k = max(2, g)`).
///
/// Input read; window seed; `R = ⌈log_k n⌉` rounds of (strided gather of
/// up to `k − 1` cells — cell 0's stripe is the most contended, read by
/// `min(k − 1, ⌈n/k^R⌉ − 1)` processors — then a window write). Valid
/// for `n ≥ 2`.
pub fn prefix_sweep_ledger() -> SymLedger {
    let k = k_or();
    let reach = minn(vec![
        sub(k.clone(), c(1)),
        sub(cdiv(SymExpr::N, pow(k.clone(), SymExpr::R)), c(1)),
    ]);
    SymLedger {
        family: "prefix-sweep",
        model: SymModel::Qsm,
        groups: vec![
            SymGroup {
                count: c(1),
                phases: vec![unit("input-read")],
            },
            SymGroup {
                count: c(1),
                phases: vec![unit("window-seed")],
            },
            SymGroup {
                count: clog(SymExpr::N, k),
                phases: vec![
                    SymPhase {
                        label: "stride-read",
                        m_op: reach.clone(),
                        m_rw: reach.clone(),
                        kappa: reach,
                    },
                    unit("stride-write"),
                ],
            },
        ],
    }
}

/// The contention-free gather/scatter rotation: two unit phases.
pub fn scatter_gather_ledger() -> SymLedger {
    SymLedger {
        family: "scatter-gather",
        model: SymModel::Qsm,
        groups: vec![
            SymGroup {
                count: c(1),
                phases: vec![unit("gather")],
            },
            SymGroup {
                count: c(1),
                phases: vec![unit("scatter")],
            },
        ],
    }
}

/// The BSP fan-in reduction (`k = max(2, ⌊L/g⌋)`, `D = ⌈log_k p⌉`,
/// valid for `p ≥ 2`).
///
/// Superstep 0: every leaf sends to its parent (`w = 1`, `h` = the
/// root's child count). Supersteps `r = R + 1` for `R = 0..D−1`: a
/// surviving node folds the `c` messages of the previous round (2 ops
/// per message at the root, one extra op at the densest *non-root*
/// survivor `pid = k^{R+1}` which also sends), with `h` the root's
/// next-round in-degree. Root fold: `2·c` ops, no sends.
pub fn bsp_reduce_ledger() -> SymLedger {
    let k = k_bsp();
    let depth = clog(SymExpr::P, k.clone());
    let root_children = |m: SymExpr| bsp_children(k.clone(), c(0), m);
    SymLedger {
        family: "bsp-reduce",
        model: SymModel::Bsp,
        groups: vec![
            SymGroup {
                count: c(1),
                phases: vec![SymPhase {
                    label: "leaf-send",
                    m_op: c(1),
                    m_rw: root_children(c(0)),
                    kappa: c(1),
                }],
            },
            SymGroup {
                count: sub(depth.clone(), c(1)),
                phases: vec![SymPhase {
                    label: "fan-in",
                    // Round r = R+1 folds round-R messages: the root does
                    // 2·c_R(0) ops; the first surviving non-root,
                    // pid = k^{R+1}, does 1 (send) + 2·c_R(k^{R+1}).
                    m_op: maxx(vec![
                        mul(vec![c(2), root_children(SymExpr::R)]),
                        add(vec![
                            c(1),
                            mul(vec![
                                c(2),
                                bsp_children(
                                    k.clone(),
                                    pow(k.clone(), add(vec![SymExpr::R, c(1)])),
                                    SymExpr::R,
                                ),
                            ]),
                        ]),
                    ]),
                    m_rw: root_children(add(vec![SymExpr::R, c(1)])),
                    kappa: c(1),
                }],
            },
            SymGroup {
                count: c(1),
                phases: vec![SymPhase {
                    label: "root-fold",
                    m_op: mul(vec![c(2), root_children(sub(depth, c(1)))]),
                    m_rw: c(0),
                    kappa: c(1),
                }],
            },
        ],
    }
}

/// The BSP `k`-ary doubling prefix scan (`k = max(2, ⌊L/g⌋)`,
/// `R = ⌈log_k p⌉`, valid for `p ≥ 2`).
///
/// Step 0: pid 0 fans its value out to `min(k−1, p−1)` successors.
/// Steps `t = R + 1`: the active senders are pids `j·k^t` for
/// `j < min(k, ⌊(p−1)/k^R⌋ + 1)`…— the per-pid work is
/// `2·(arrivals so far) + (sends now)`, maximized over the candidate
/// residues by an explicit `max_j`. Final step: every pid folds, the
/// busiest having received `2·min(k−1, ⌊(p−1)/k^{R−1}⌋)` messages' worth
/// of work; nobody sends.
pub fn bsp_prefix_scan_ledger() -> SymLedger {
    let k = k_bsp();
    let rounds = clog(SymExpr::P, k.clone());
    // c_scan(m) = min(k − 1, ⌊(p − 1)/k^m⌋): messages a pid receives at
    // doubling distance k^m.
    let c_scan = |m: SymExpr| {
        minn(vec![
            sub(k.clone(), c(1)),
            fdiv(sub(SymExpr::P, c(1)), pow(k.clone(), m)),
        ])
    };
    SymLedger {
        family: "bsp-prefix-scan",
        model: SymModel::Bsp,
        groups: vec![
            SymGroup {
                count: c(1),
                phases: vec![SymPhase {
                    label: "scan-seed",
                    m_op: c_scan(c(0)),
                    m_rw: c_scan(c(0)),
                    kappa: c(1),
                }],
            },
            SymGroup {
                count: sub(rounds.clone(), c(1)),
                phases: vec![SymPhase {
                    label: "scan-step",
                    // Step t = R+1: candidate senders sit at pids
                    // j·k^{t−1}; sender j has folded 2j messages so far
                    // and now sends to min(k−1, ⌈(p − j·k^{t−1})/k^t⌉ − 1)
                    // successors.
                    m_op: maxover(
                        minn(vec![
                            k.clone(),
                            add(vec![
                                fdiv(sub(SymExpr::P, c(1)), pow(k.clone(), SymExpr::R)),
                                c(1),
                            ]),
                        ]),
                        add(vec![
                            mul(vec![c(2), SymExpr::J]),
                            minn(vec![
                                sub(k.clone(), c(1)),
                                sub(
                                    cdiv(
                                        sub(
                                            SymExpr::P,
                                            mul(vec![SymExpr::J, pow(k.clone(), SymExpr::R)]),
                                        ),
                                        pow(k.clone(), add(vec![SymExpr::R, c(1)])),
                                    ),
                                    c(1),
                                ),
                            ]),
                        ]),
                    ),
                    m_rw: c_scan(add(vec![SymExpr::R, c(1)])),
                    kappa: c(1),
                }],
            },
            SymGroup {
                count: c(1),
                phases: vec![SymPhase {
                    label: "scan-final",
                    m_op: mul(vec![c(2), c_scan(sub(rounds, c(1)))]),
                    m_rw: c(0),
                    kappa: c(1),
                }],
            },
        ],
    }
}

/// Families with symbolic coverage, in registry order (the numeric
/// `IR_FAMILIES` list; the padded fixture is reachable by name but
/// deliberately excluded, mirroring `racy-plan`).
pub const SYMBOLIC_FAMILIES: [&str; 7] = [
    "or-write-tree",
    "parity-read-tree",
    "broadcast",
    "prefix-sweep",
    "scatter-gather",
    "bsp-reduce",
    "bsp-prefix-scan",
];

/// Derives the symbolic ledger of a named family with all parameters
/// left free — the generalized `predict_ledger` of the tentpole.
pub fn predict_ledger_symbolic(family: &str) -> Result<SymLedger, ModelError> {
    Ok(match family {
        "or-write-tree" => or_write_tree_ledger(),
        "or-write-tree-padded" => or_write_tree_padded_ledger(),
        "parity-read-tree" => parity_read_tree_ledger(),
        "broadcast" => broadcast_ledger(),
        "prefix-sweep" => prefix_sweep_ledger(),
        "scatter-gather" => scatter_gather_ledger(),
        "bsp-reduce" => bsp_reduce_ledger(),
        "bsp-prefix-scan" => bsp_prefix_scan_ledger(),
        other => {
            return Err(ModelError::BadConfig(format!(
                "no symbolic ledger for family '{other}' (known: {})",
                SYMBOLIC_FAMILIES.join(", ")
            )))
        }
    })
}
