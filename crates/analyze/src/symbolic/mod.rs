//! Symbolic cost layer: Θ-normal-form static ledgers for the §8 plan
//! families, and the Table 1 bound-conformance machinery on top of them.
//!
//! * [`expr`] — the [`SymExpr`] algebra over free `n, p, g, L` with
//!   exact (bit-identical) evaluation semantics;
//! * [`mod@theta`] — Θ-normal forms and the dominance decision procedure;
//! * [`ledgers`] — per-family symbolic ledgers
//!   ([`predict_ledger_symbolic`]);
//! * [`conformance`] — Table 1 fixtures, Claim 2.1/2.2 checks, and the
//!   symbolic-vs-numeric grid differential.
//!
//! This module also hosts the *plan-level* entry points used by
//! [`crate::statics::lint_plan`] / [`crate::statics::analyze_plan`]:
//! [`recognize_plan`] decides whether a concrete [`PhasePlan`] is an
//! instance of a covered family (matching the fan recipe and the exact
//! phase count of the parameterized shape in `parbounds_ir::shape`), and
//! [`lint_plan_symbolic`] turns symbolic/numeric divergence and Table 1
//! regressions into ordinary [`Diagnostic`]s through the shared rule
//! table.

pub mod conformance;
pub mod expr;
pub mod ledgers;
pub mod theta;

pub use conformance::{
    bsp_grid, check_all_families, check_claims, check_family, default_grid, grid_differential,
    shared_grid, table1_fixture, ClaimCheck, DifferentialReport, FamilyConformance,
};
pub use expr::{GridPoint, SymError, SymExpr};
pub use ledgers::{
    predict_ledger_symbolic, SymGroup, SymLedger, SymModel, SymPhase, SYMBOLIC_FAMILIES,
};
pub use theta::{theta, Atom, Monomial, Theta};

use parbounds_ir::{shape_for_combinator, ModelKind, PhasePlan, ShapePoint};
use parbounds_models::ModelError;

use crate::diagnostics::{Diagnostic, Location, Rule};
use crate::rules;
use crate::statics::{predict_ledger, SUITE_BSP_L, SUITE_BSP_P, SUITE_G};

/// The parameter point the standard static suite instantiates `family`
/// at for problem size `n` (mirrors `statics::ir_family_plan`, including
/// its floor of `n` at 8).
pub fn suite_point(family: &str, n: usize) -> GridPoint {
    let n = n.max(8) as u64;
    match family {
        "bsp-reduce" | "bsp-prefix-scan" => {
            GridPoint::bsp(SUITE_BSP_P as u64, SUITE_G, SUITE_BSP_L)
        }
        _ => GridPoint::shared(n, SUITE_G),
    }
}

/// Number of internal nodes of the `k = 2` read tree over `n` leaves —
/// the processor count `fan_in_read_tree` declares. Used to reject
/// read-tree plans built with a non-recipe fan-in whose depth happens to
/// coincide.
fn binary_read_tree_procs(n: u64) -> u64 {
    let mut width = n.max(1);
    let mut procs = 0;
    while width > 1 {
        width = width.div_ceil(2);
        procs += width;
    }
    procs
}

/// Decides whether `plan` is an instance of a symbolically-covered
/// family, and at which parameter point.
///
/// The match is deliberately conservative — combinator tag, model kind,
/// declared contention bound equal to the family recipe's, and the exact
/// phase count of the parameterized shape — so the symbolic lint can
/// treat any later ledger divergence as an error rather than a guess.
pub fn recognize_plan(plan: &PhasePlan) -> Option<(&'static str, GridPoint)> {
    let shape = shape_for_combinator(&plan.family)?;
    let spt: ShapePoint =
        shape.point_from_plan(plan.model, plan.procs as u64, plan.input_cells as u64)?;
    if shape.size(spt) < 2 {
        return None; // degenerate single-leaf shapes have special forms
    }
    if shape.phase_count(spt) != plan.num_phases() as u64 {
        return None;
    }
    let k = shape.recipe.fan(spt);
    let recipe_bound = match shape.name {
        "or-write-tree" | "or-write-tree-padded" => Some(k),
        "parity-read-tree" | "scatter-gather" => Some(1),
        _ => Some((k - 1).max(1)),
    };
    if plan.contention_bound != recipe_bound {
        return None;
    }
    if shape.name == "parity-read-tree" && plan.procs as u64 != binary_read_tree_procs(spt.n) {
        return None;
    }
    let pt = match plan.model {
        ModelKind::Bsp { .. } => GridPoint::bsp(spt.p, spt.g, spt.l),
        _ => GridPoint {
            n: spt.n,
            p: spt.p,
            g: spt.g,
            l: spt.l,
        },
    };
    Some((shape.name, pt))
}

/// The symbolic side of one plan's static analysis.
#[derive(Debug, Clone)]
pub struct PlanSymbolicCheck {
    /// Recognized family.
    pub family: &'static str,
    /// The parameter point the plan instantiates.
    pub point: GridPoint,
    /// Symbolic ledger evaluated at `point` equals the numeric
    /// prediction cell for cell.
    pub matches_numeric: bool,
    /// Θ-normal form of the family's derived total.
    pub derived: Theta,
    /// Θ-normal form of the family's Table 1 fixture.
    pub fixture: Theta,
    /// The derived bound strictly dominates the fixture.
    pub regression: bool,
}

/// Runs the symbolic checks for a plan, if it is recognized. `Ok(None)`
/// means the plan is outside symbolic coverage (not an error: most
/// ad-hoc plans are).
pub fn check_plan(plan: &PhasePlan) -> Result<Option<PlanSymbolicCheck>, ModelError> {
    let Some((family, point)) = recognize_plan(plan) else {
        return Ok(None);
    };
    let ledger = predict_ledger_symbolic(family)?;
    let symbolic = ledger
        .eval_ledger(point)
        .map_err(|e| ModelError::BadConfig(format!("symbolic eval of {family}: {e}")))?;
    let numeric = predict_ledger(plan)?;
    let conf = check_family(family)?;
    Ok(Some(PlanSymbolicCheck {
        family,
        point,
        matches_numeric: symbolic == numeric,
        derived: conf.derived,
        fixture: conf.fixture,
        regression: conf.regression,
    }))
}

/// The symbolic lint pass appended to [`crate::statics::lint_plan`]:
/// emits [`Rule::SymbolicMismatch`] when the recognized family's ledger
/// evaluated at the plan's point diverges from the numeric prediction,
/// and [`Rule::BoundRegression`] when the family's derived Θ-form
/// strictly dominates its Table 1 row (both normal forms are quoted in
/// the message).
pub fn lint_plan_symbolic(plan: &PhasePlan) -> Result<Vec<Diagnostic>, ModelError> {
    let Some(check) = check_plan(plan)? else {
        return Ok(Vec::new());
    };
    let model = plan.model.name();
    let mut diags = Vec::new();
    if !check.matches_numeric {
        diags.push(Diagnostic::new(
            Rule::SymbolicMismatch,
            Location {
                model,
                phase: 0,
                pid: None,
                addr: None,
            },
            rules::symbolic_mismatch(
                check.family,
                check.point.n,
                check.point.p,
                check.point.g,
                check.point.l,
            ),
        ));
    }
    if check.regression {
        diags.push(Diagnostic::new(
            Rule::BoundRegression,
            Location {
                model,
                phase: 0,
                pid: None,
                addr: None,
            },
            rules::bound_regression(
                check.family,
                &check.derived.to_string(),
                &check.fixture.to_string(),
            ),
        ));
    }
    Ok(diags)
}

/// One family's full symbolic report: Θ-conformance, grid differential,
/// and the suite-point evaluation next to the numeric prediction.
#[derive(Debug, Clone)]
pub struct SymbolicFamilyReport {
    /// Θ-equivalence outcome.
    pub conformance: FamilyConformance,
    /// Symbolic-vs-numeric differential on the family's CI grid.
    pub differential: DifferentialReport,
    /// Phase count of the symbolic ledger at the suite point.
    pub phases: u64,
    /// Symbolic total at the suite point.
    pub symbolic_total: u64,
    /// Numeric `predict_ledger` total at the same point.
    pub numeric_total: u64,
}

impl SymbolicFamilyReport {
    /// Clean = Θ-equivalent to the paper row, no regression, and a
    /// bit-identical differential (the suite point is part of that).
    pub fn clean(&self) -> bool {
        self.conformance.equivalent
            && !self.conformance.regression
            && self.differential.clean()
            && self.symbolic_total == self.numeric_total
    }
}

/// Builds the symbolic report for one family at suite size `n`.
pub fn analyze_symbolic_family(family: &str, n: usize) -> Result<SymbolicFamilyReport, ModelError> {
    let conformance = check_family(family)?;
    let differential = grid_differential(family, &default_grid(family))?;
    let pt = suite_point(family, n);
    let ledger = predict_ledger_symbolic(family)?;
    let evaluated = ledger
        .eval_ledger(pt)
        .map_err(|e| ModelError::BadConfig(format!("symbolic eval of {family}: {e}")))?;
    let numeric = conformance::numeric_ledger_at(family, pt)?;
    Ok(SymbolicFamilyReport {
        conformance,
        phases: evaluated.num_phases() as u64,
        symbolic_total: evaluated.total_time(),
        numeric_total: numeric.total_time(),
        differential,
    })
}

/// The full symbolic conformance suite: every covered family plus the
/// Claim 2.1/2.2 mapping checks.
#[derive(Debug, Clone)]
pub struct SymbolicReport {
    /// Per-family reports, in registry order.
    pub families: Vec<SymbolicFamilyReport>,
    /// Cross-model mapping checks.
    pub claims: Vec<ClaimCheck>,
}

impl SymbolicReport {
    /// True when every family is clean and every claim holds.
    pub fn clean(&self) -> bool {
        self.families.iter().all(SymbolicFamilyReport::clean) && self.claims.iter().all(|c| c.holds)
    }
}

/// Runs [`analyze_symbolic_family`] over [`SYMBOLIC_FAMILIES`] and
/// [`check_claims`].
pub fn analyze_symbolic_all(n: usize) -> Result<SymbolicReport, ModelError> {
    let families = SYMBOLIC_FAMILIES
        .iter()
        .map(|f| analyze_symbolic_family(f, n))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(SymbolicReport {
        families,
        claims: check_claims()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use parbounds_algo::ir_families as fam;

    #[test]
    fn recognition_accepts_family_instances_and_rejects_lookalikes() {
        let (plan, _) = fam::or_write_tree_plan(64, 8);
        let (name, pt) = recognize_plan(&plan).expect("recipe instance recognized");
        assert_eq!(name, "or-write-tree");
        assert_eq!((pt.n, pt.g), (64, 8));

        // Non-recipe fan-in: same combinator, k ≠ max(2, g).
        let odd = parbounds_ir::fan_in_write_tree(64, 5, ModelKind::Qsm { g: 8 });
        assert!(recognize_plan(&odd).is_none());

        // Non-recipe read tree (k = 3) must be rejected even when the
        // depth coincides, via the processor-count witness.
        let k3 = parbounds_ir::fan_in_read_tree(
            9,
            3,
            parbounds_ir::CombineOp::Xor,
            ModelKind::SQsm { g: 2 },
        );
        assert!(recognize_plan(&k3).is_none());

        // Scatter/gather with duplicate destinations (bound > 1).
        let dup = parbounds_ir::scatter_gather(&[0, 1, 2], &[5, 5, 6], ModelKind::Qsm { g: 4 });
        assert!(recognize_plan(&dup).is_none());

        let (racy, _) = fam::racy_plan();
        assert!(recognize_plan(&racy).is_none());
    }

    #[test]
    fn check_plan_matches_numeric_for_every_suite_family() {
        for family in SYMBOLIC_FAMILIES {
            let (_, plan, _) = crate::statics::ir_family_plan(family, 64, 3).unwrap();
            let check = check_plan(&plan).unwrap().unwrap_or_else(|| {
                panic!("{family} instance not recognized");
            });
            assert_eq!(check.family, family);
            assert!(check.matches_numeric, "{family} symbolic != numeric");
            assert!(!check.regression, "{family} flagged as regression");
        }
    }

    #[test]
    fn padded_plan_lints_with_both_normal_forms() {
        let (plan, _) = fam::or_write_tree_padded_plan(64, 8);
        let diags = lint_plan_symbolic(&plan).unwrap();
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, Rule::BoundRegression);
        assert!(
            diags[0].message.contains("Θ(g·log n)"),
            "{}",
            diags[0].message
        );
        assert!(
            diags[0].message.contains("Θ(g·log n/(log g))"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn suite_report_is_clean_and_padded_family_is_not() {
        let report = analyze_symbolic_all(64).unwrap();
        assert!(report.clean());
        assert_eq!(report.families.len(), SYMBOLIC_FAMILIES.len());
        let padded = analyze_symbolic_family("or-write-tree-padded", 64).unwrap();
        assert!(!padded.clean());
        assert!(padded.conformance.regression);
        // The padded ledger still evaluates bit-identically — the
        // regression is asymptotic, not a modelling error.
        assert!(padded.differential.clean());
        assert_eq!(padded.symbolic_total, padded.numeric_total);
    }
}
