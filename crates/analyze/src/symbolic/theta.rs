//! Θ-normal forms: an asymptotic quotient of [`SymExpr`].
//!
//! A normal form is a set of [`Monomial`]s over a fixed atom vocabulary
//! (`n, p, g, L, L/g` and their logs), with dominated monomials pruned.
//! Two expressions are Θ-equivalent when their normal forms dominate
//! each other; a derived bound *regresses* against a fixture when it
//! strictly dominates it (grows strictly faster).
//!
//! ## The decision procedure
//!
//! Monomial dominance `a ⊒ b` is decided by certifying `a − b ≥ 0`
//! exponent-wise after *credit cancellation*: a negative exponent on an
//! atom may be paid for by a positive exponent on any atom known to be
//! pointwise at least as large under the paper's standing parameter
//! regime (`2 ≤ p ≤ n`, `1 ≤ g ≤ n`, `g ≤ L`, `L/g ≤ p`). The donor
//! table encodes exactly those inequalities:
//!
//! | needs credit | donors (tried in order) |
//! |--------------|-------------------------|
//! | `p`          | `n`                     |
//! | `g`          | `L`, `n`                |
//! | `L/g`        | `L`, `p`, `n`           |
//! | `log p`      | `log n`                 |
//! | `log g`      | `log L`, `log n`        |
//! | `log(L/g)`   | `log L`, `log p`, `log n` |
//!
//! This is deliberately a *decision procedure for this vocabulary*, not
//! a general asymptotics oracle: every Table 1 row and every derived
//! family ledger lands in it, and anything outside raises a typed
//! [`SymError::Unsupported`] instead of guessing.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use super::expr::{SymError, SymExpr};

/// The atom vocabulary of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Atom {
    /// Problem size `n`.
    N,
    /// BSP component count `p`.
    P,
    /// Bandwidth gap `g`.
    G,
    /// BSP periodicity `L`.
    L,
    /// The composite `L/g` (the BSP fan-in).
    LdivG,
    /// `log n`.
    LogN,
    /// `log p`.
    LogP,
    /// `log g`.
    LogG,
    /// `log L`.
    LogL,
    /// `log(L/g)`.
    LogLdivG,
}

impl Atom {
    fn render(self) -> &'static str {
        match self {
            Atom::N => "n",
            Atom::P => "p",
            Atom::G => "g",
            Atom::L => "L",
            Atom::LdivG => "L/g",
            Atom::LogN => "log n",
            Atom::LogP => "log p",
            Atom::LogG => "log g",
            Atom::LogL => "log L",
            Atom::LogLdivG => "log(L/g)",
        }
    }
}

/// A product of atom powers; the empty monomial is the constant 1.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Monomial(BTreeMap<Atom, i32>);

impl Monomial {
    /// The constant monomial `1`.
    pub fn one() -> Self {
        Monomial::default()
    }

    /// The single-atom monomial.
    pub fn atom(a: Atom) -> Self {
        let mut m = BTreeMap::new();
        m.insert(a, 1);
        Monomial(m)
    }

    /// Product of two monomials (exponents add; zeros are elided).
    pub fn mul(&self, other: &Monomial) -> Monomial {
        let mut out = self.0.clone();
        for (&a, &e) in &other.0 {
            let entry = out.entry(a).or_insert(0);
            *entry += e;
            if *entry == 0 {
                out.remove(&a);
            }
        }
        Monomial(out)
    }

    /// Quotient `self / other`.
    pub fn div(&self, other: &Monomial) -> Monomial {
        self.mul(&other.inverse())
    }

    fn inverse(&self) -> Monomial {
        Monomial(self.0.iter().map(|(&a, &e)| (a, -e)).collect())
    }

    /// `self` raised to a non-negative power.
    pub fn pow(&self, e: i32) -> Monomial {
        if e == 0 {
            return Monomial::one();
        }
        Monomial(self.0.iter().map(|(&a, &x)| (a, x * e)).collect())
    }

    fn exponent(&self, a: Atom) -> i32 {
        self.0.get(&a).copied().unwrap_or(0)
    }

    /// True when every atom is a machine parameter (`g`, `L`, `L/g` or
    /// a log of one) — i.e. the monomial does not grow with the problem
    /// size. Used to break `min` ties: a pure-machine bound is the
    /// asymptotic minimum against anything that grows in `n` or `p`.
    pub fn machine_only(&self) -> bool {
        self.0.keys().all(|a| {
            matches!(
                a,
                Atom::G | Atom::L | Atom::LdivG | Atom::LogG | Atom::LogL | Atom::LogLdivG
            )
        })
    }

    /// Certifies `self ≥ other` pointwise (up to constants) under the
    /// standing regime, by credit cancellation on the exponent vector of
    /// `self / other`.
    pub fn dominates(&self, other: &Monomial) -> bool {
        // Donor table: (debtor, donors ordered cheapest-first). Each
        // credit consumes one donor exponent to pay one debtor exponent,
        // justified by donor ≥ debtor pointwise in the regime.
        const DONORS: &[(Atom, &[Atom])] = &[
            (Atom::P, &[Atom::N]),
            (Atom::G, &[Atom::L, Atom::N]),
            (Atom::LdivG, &[Atom::L, Atom::P, Atom::N]),
            (Atom::LogP, &[Atom::LogN]),
            (Atom::LogG, &[Atom::LogL, Atom::LogN]),
            (Atom::LogLdivG, &[Atom::LogL, Atom::LogP, Atom::LogN]),
        ];
        let mut diff = self.div(other).0;
        for &(debtor, donors) in DONORS {
            while diff.get(&debtor).copied().unwrap_or(0) < 0 {
                let Some(&donor) = donors
                    .iter()
                    .find(|d| diff.get(d).copied().unwrap_or(0) > 0)
                else {
                    break;
                };
                *diff.entry(debtor).or_insert(0) += 1;
                *diff.entry(donor).or_insert(0) -= 1;
            }
        }
        diff.values().all(|&e| e >= 0)
    }

    fn render(&self) -> String {
        if self.0.is_empty() {
            return "1".to_string();
        }
        let fmt_side = |pairs: &[(Atom, i32)]| {
            pairs
                .iter()
                .map(|&(a, e)| {
                    if e == 1 {
                        a.render().to_string()
                    } else {
                        format!("{}^{}", a.render(), e)
                    }
                })
                .collect::<Vec<_>>()
                .join("·")
        };
        let num: Vec<(Atom, i32)> = self
            .0
            .iter()
            .filter(|&(_, &e)| e > 0)
            .map(|(&a, &e)| (a, e))
            .collect();
        let den: Vec<(Atom, i32)> = self
            .0
            .iter()
            .filter(|&(_, &e)| e < 0)
            .map(|(&a, &e)| (a, -e))
            .collect();
        match (num.is_empty(), den.is_empty()) {
            (true, true) => "1".to_string(),
            (false, true) => fmt_side(&num),
            (true, false) => format!("1/({})", fmt_side(&den)),
            (false, false) => format!("{}/({})", fmt_side(&num), fmt_side(&den)),
        }
    }
}

/// A Θ-normal form: the antichain of non-dominated monomials of a sum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Theta(BTreeSet<Monomial>);

impl Theta {
    /// The normal form of the constant 0 (the empty set).
    pub fn zero() -> Self {
        Theta(BTreeSet::new())
    }

    /// The monomials of the normal form.
    pub fn monomials(&self) -> impl Iterator<Item = &Monomial> {
        self.0.iter()
    }

    /// `self` is an asymptotic upper bound for `other`: every monomial
    /// of `other` is dominated by some monomial of `self`.
    pub fn dominates(&self, other: &Theta) -> bool {
        other
            .0
            .iter()
            .all(|m| self.0.iter().any(|s| s.dominates(m)))
    }

    /// Θ-equivalence: mutual domination.
    pub fn equivalent(&self, other: &Theta) -> bool {
        self.dominates(other) && other.dominates(self)
    }

    /// `self` grows *strictly* faster than `other`: it dominates, and
    /// some monomial of `self` is not matched by `other`. This is the
    /// bound-regression predicate (derived strictly dominating fixture).
    pub fn strictly_dominates(&self, other: &Theta) -> bool {
        self.dominates(other) && !other.dominates(self)
    }

    fn from_set(set: BTreeSet<Monomial>) -> Theta {
        // Prune: drop m when another element dominates it strictly (or
        // mutually — keep the lexicographically largest of a mutual
        // class so pruning is deterministic and one survivor remains).
        let kept: BTreeSet<Monomial> = set
            .iter()
            .filter(|m| {
                !set.iter().any(|other| {
                    other != *m && other.dominates(m) && (!m.dominates(other) || other > m)
                })
            })
            .cloned()
            .collect();
        Theta(kept)
    }
}

impl fmt::Display for Theta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return write!(f, "Θ(0)");
        }
        let terms: Vec<String> = self.0.iter().map(Monomial::render).collect();
        write!(f, "Θ({})", terms.join(" + "))
    }
}

/// Normalizes an expression to its Θ-normal form.
///
/// The expression must be closed (no free `R`/`J`; bound indices are
/// eliminated by the iterator rules below). Rules of note:
///
/// * `Σ_{r<c} body` → `Θ(c · body[r:=0])` — sound because every family
///   ledger's per-round cost is non-increasing in the round index, so
///   the round-0 term is the Θ-maximum and `c` of it bound the sum both
///   ways (up to the constant 2 the geometric tail costs).
/// * `max_{j<c} body` → `Θ(body[j:=c−1])` — the BSP scan's candidate
///   expression is maximized at the largest pid index.
/// * `min(a, b)` keeps a side the other provably dominates; otherwise a
///   pure-machine side wins against a size-growing side (machine
///   parameters are Θ-constants relative to `n, p`).
/// * `a ∸ b` normalizes as `a` (saturating subtraction only trims lower
///   order terms in this vocabulary).
pub fn theta(expr: &SymExpr) -> Result<Theta, SymError> {
    norm(&expr.simplify()).map(Theta::from_set)
}

fn norm(expr: &SymExpr) -> Result<BTreeSet<Monomial>, SymError> {
    let prune = |set: BTreeSet<Monomial>| Theta::from_set(set).0;
    Ok(match expr {
        SymExpr::Const(0) => BTreeSet::new(),
        SymExpr::Const(_) => BTreeSet::from([Monomial::one()]),
        SymExpr::N => BTreeSet::from([Monomial::atom(Atom::N)]),
        SymExpr::P => BTreeSet::from([Monomial::atom(Atom::P)]),
        SymExpr::G => BTreeSet::from([Monomial::atom(Atom::G)]),
        SymExpr::L => BTreeSet::from([Monomial::atom(Atom::L)]),
        SymExpr::R | SymExpr::J => return Err(SymError::FreeIndex("R/J in Θ-normalization")),
        SymExpr::Add(xs) | SymExpr::Max(xs) => {
            let mut out = BTreeSet::new();
            for x in xs {
                out.extend(norm(x)?);
            }
            prune(out)
        }
        SymExpr::Mul(xs) => {
            let mut out = BTreeSet::from([Monomial::one()]);
            for x in xs {
                let rhs = norm(x)?;
                let mut next = BTreeSet::new();
                for a in &out {
                    for b in &rhs {
                        next.insert(a.mul(b));
                    }
                }
                out = prune(next);
            }
            out
        }
        SymExpr::Min(xs) => {
            let mut arms: Vec<Result<BTreeSet<Monomial>, SymError>> = xs.iter().map(norm).collect();
            // Fold pairwise; an arm whose normalization fails is treated
            // as +∞ (min ignores it) as long as another arm succeeds.
            let mut acc: Option<BTreeSet<Monomial>> = None;
            for arm in arms.drain(..) {
                let Ok(arm) = arm else { continue };
                acc = Some(match acc {
                    None => arm,
                    Some(cur) => min_theta(cur, arm)?,
                });
            }
            acc.ok_or_else(|| {
                SymError::Unsupported(format!("min with no normalizable arm: {expr}"))
            })?
        }
        SymExpr::Sub(a, _) => norm(a)?,
        SymExpr::CeilDiv(a, b) => {
            let num = norm(a)?;
            let den = dominant(&norm(b)?);
            let mut out: BTreeSet<Monomial> = match den {
                Some(d) => num.iter().map(|m| m.div(&d)).collect(),
                None => num, // dividing by Θ(0): divisor floors at 1
            };
            out.insert(Monomial::one()); // a ceiling is at least 1
            prune(out)
        }
        SymExpr::FloorDiv(a, b) => {
            let num = norm(a)?;
            let den = dominant(&norm(b)?);
            match den {
                Some(d) => prune(num.iter().map(|m| m.div(&d)).collect()),
                None => num,
            }
        }
        SymExpr::Pow(a, b) => {
            let SymExpr::Const(e) = **b else {
                return Err(SymError::Unsupported(format!(
                    "non-constant exponent: {expr}"
                )));
            };
            let e = i32::try_from(e)
                .map_err(|_| SymError::Unsupported(format!("huge exponent: {expr}")))?;
            let base = norm(a)?;
            let mut out = BTreeSet::from([Monomial::one()]);
            for _ in 0..e {
                let mut next = BTreeSet::new();
                for x in &out {
                    for y in &base {
                        next.insert(x.mul(y));
                    }
                }
                out = prune(next);
            }
            out
        }
        SymExpr::CeilLog(a, b) => {
            let arg = norm(a)?;
            if arg.is_empty() {
                // log of Θ(0): the argument is ≤ 1, so the round count is 0.
                return Ok(BTreeSet::new());
            }
            let Some(arg_dom) = dominant(&arg) else {
                // Θ(1) argument: the round count is a constant.
                return Ok(BTreeSet::from([Monomial::one()]));
            };
            let Some(arg_log) = log_atom(&arg_dom)? else {
                return Ok(BTreeSet::from([Monomial::one()]));
            };
            let base_log = match dominant(&norm(b)?) {
                Some(base_dom) => log_atom(&base_dom)?,
                None => None,
            };
            let mut m = Monomial::atom(arg_log);
            if let Some(bl) = base_log {
                m = m.div(&Monomial::atom(bl));
            }
            BTreeSet::from([m])
        }
        SymExpr::FloorRoot(..) => {
            // Fractional powers (n^{2/3}-style adversary budgets) are outside
            // the Table 1 vocabulary on purpose: refuse rather than guess.
            return Err(SymError::Unsupported(format!(
                "floor root outside the Θ vocabulary: {expr}"
            )));
        }
        SymExpr::Sum { count, body } => {
            let head = body.subst_r(&SymExpr::Const(0)).simplify();
            norm(&SymExpr::Mul(vec![(**count).clone(), head]).simplify())?
        }
        SymExpr::MaxOver { count, body } => {
            let last = SymExpr::Sub(count.clone(), Box::new(SymExpr::Const(1)));
            norm(&body.subst_j(&last).simplify())?
        }
    })
}

/// `min` of two normal forms.
fn min_theta(a: BTreeSet<Monomial>, b: BTreeSet<Monomial>) -> Result<BTreeSet<Monomial>, SymError> {
    let ta = Theta(a.clone());
    let tb = Theta(b.clone());
    if tb.dominates(&ta) {
        return Ok(a); // a ≤ b everywhere ⇒ min is a
    }
    if ta.dominates(&tb) {
        return Ok(b);
    }
    let machine_a = a.iter().all(Monomial::machine_only);
    let machine_b = b.iter().all(Monomial::machine_only);
    match (machine_a, machine_b) {
        (true, false) => Ok(a),
        (false, true) => Ok(b),
        _ => Err(SymError::Unsupported(format!(
            "incomparable min arms: {ta} vs {tb}"
        ))),
    }
}

/// The dominant monomial of a normalized sum, when unique up to
/// domination ties; `None` for Θ(0) and Θ(1) (where logs vanish).
fn dominant(set: &BTreeSet<Monomial>) -> Option<Monomial> {
    let best = set.iter().max_by(|a, b| {
        use std::cmp::Ordering;
        match (a.dominates(b), b.dominates(a)) {
            (true, false) => Ordering::Greater,
            (false, true) => Ordering::Less,
            _ => a.cmp(b),
        }
    })?;
    if *best == Monomial::one() {
        return None;
    }
    Some(best.clone())
}

/// Maps a monomial to the log-scale atom of its logarithm:
/// `log Θ(n) = Θ(log n)` and so on. Products would need a log-sum the
/// vocabulary does not carry, so anything beyond a single atom (or the
/// `L/g` composite) is a typed error.
fn log_atom(m: &Monomial) -> Result<Option<Atom>, SymError> {
    if m.0.is_empty() {
        return Ok(None);
    }
    let single = |a: Atom| m.0.len() == 1 && m.exponent(a) == 1;
    if single(Atom::N) {
        return Ok(Some(Atom::LogN));
    }
    if single(Atom::P) {
        return Ok(Some(Atom::LogP));
    }
    if single(Atom::G) {
        return Ok(Some(Atom::LogG));
    }
    if single(Atom::L) {
        return Ok(Some(Atom::LogL));
    }
    if single(Atom::LdivG)
        || (m.0.len() == 2 && m.exponent(Atom::L) == 1 && m.exponent(Atom::G) == -1)
    {
        return Ok(Some(Atom::LogLdivG));
    }
    Err(SymError::Unsupported(format!(
        "log of composite monomial {}",
        m.render()
    )))
}

#[cfg(test)]
mod tests {
    use super::super::expr::build::*;
    use super::*;

    fn th(e: &SymExpr) -> Theta {
        theta(e).unwrap()
    }

    #[test]
    fn table1_shapes_normalize_to_their_rows() {
        // g·⌈log_g n⌉ — the QSM OR/broadcast row.
        let qsm = mul(vec![SymExpr::G, clog(SymExpr::N, SymExpr::G)]);
        assert_eq!(format!("{}", th(&qsm)), "Θ(g·log n/(log g))");
        // g·⌈log₂ n⌉ — the s-QSM row.
        let sqsm = mul(vec![SymExpr::G, clog(SymExpr::N, c(2))]);
        assert_eq!(format!("{}", th(&sqsm)), "Θ(g·log n)");
        // L·⌈log_{L/g} p⌉ — the BSP rows.
        let bsp = mul(vec![
            SymExpr::L,
            clog(SymExpr::P, cdiv(SymExpr::L, SymExpr::G)),
        ]);
        assert_eq!(format!("{}", th(&bsp)), "Θ(L·log p/(log(L/g)))");
    }

    #[test]
    fn log_of_one_and_constant_arguments_vanish() {
        assert_eq!(th(&clog(c(1), SymExpr::G)), Theta::zero());
        assert_eq!(th(&clog(c(0), c(2))), Theta::zero());
        // Θ(1) argument: constant round count, kept as Θ(1).
        let e = clog(c(7), SymExpr::G);
        assert!(th(&e).equivalent(&th(&c(1))));
    }

    #[test]
    fn dominated_terms_are_pruned() {
        // g·log n + g·log n/log g + 1 = Θ(g·log n).
        let e = add(vec![
            mul(vec![SymExpr::G, clog(SymExpr::N, c(2))]),
            mul(vec![SymExpr::G, clog(SymExpr::N, SymExpr::G)]),
            c(1),
        ]);
        let want = mul(vec![SymExpr::G, clog(SymExpr::N, c(2))]);
        assert!(th(&e).equivalent(&th(&want)));
        assert_eq!(th(&e).monomials().count(), 1);
    }

    #[test]
    fn dominated_term_ties_keep_one_survivor() {
        // n + n: identical monomials dedupe to one.
        let e = add(vec![SymExpr::N, SymExpr::N, mul(vec![c(3), SymExpr::N])]);
        assert_eq!(th(&e).monomials().count(), 1);
        // p vs n: n wins via the p ≤ n credit.
        let e = add(vec![SymExpr::P, SymExpr::N]);
        assert!(th(&e).equivalent(&th(&SymExpr::N)));
    }

    #[test]
    fn p_equals_one_collapse_is_sound_via_credits() {
        // n/p + p: both survive (incomparable), as they must — at p=1
        // the first term is n, at p=n the second is.
        let e = add(vec![cdiv(SymExpr::N, SymExpr::P), SymExpr::P]);
        assert_eq!(th(&e).monomials().count(), 2);
    }

    #[test]
    fn min_prefers_machine_bounds_against_size_growth() {
        // min(g, n) = Θ(g): machine parameter vs problem size.
        let e = minn(vec![SymExpr::G, SymExpr::N]);
        assert!(th(&e).equivalent(&th(&SymExpr::G)));
        // min(k−1, ⌈n/k^0⌉−1) with k = max(2, g): the fan-in side.
        let k = maxx(vec![SymExpr::G, c(2)]);
        let e = minn(vec![
            sub(k.clone(), c(1)),
            sub(cdiv(SymExpr::N, c(1)), c(1)),
        ]);
        assert!(th(&e).equivalent(&th(&SymExpr::G)));
    }

    #[test]
    fn strict_dominance_detects_regressions() {
        let paper = mul(vec![SymExpr::G, clog(SymExpr::N, SymExpr::G)]);
        let padded = mul(vec![SymExpr::G, clog(SymExpr::N, c(2))]);
        assert!(th(&padded).strictly_dominates(&th(&paper)));
        assert!(!th(&paper).strictly_dominates(&th(&padded)));
        assert!(!th(&paper).strictly_dominates(&th(&paper)));
    }

    #[test]
    fn claim_2_1_bsp_shape_normalizes() {
        // g · (L/g) · log(n/(n/p)) / log(L/g) = Θ(L·log p/log(L/g)).
        let ldg = cdiv(SymExpr::L, SymExpr::G);
        let mu = maxx(vec![ldg.clone(), ldg.clone(), c(2)]);
        let e = mul(vec![
            SymExpr::G,
            mu.clone(),
            clog(cdiv(SymExpr::N, cdiv(SymExpr::N, SymExpr::P)), mu),
        ]);
        let row = mul(vec![
            SymExpr::L,
            clog(SymExpr::P, cdiv(SymExpr::L, SymExpr::G)),
        ]);
        assert!(th(&e).equivalent(&th(&row)), "{} vs {}", th(&e), th(&row));
    }

    #[test]
    fn normalization_is_stable_under_simplify() {
        let exprs = vec![
            mul(vec![SymExpr::G, clog(SymExpr::N, SymExpr::G)]),
            sum(clog(SymExpr::N, c(2)), maxx(vec![c(2), SymExpr::G])),
            minn(vec![SymExpr::G, SymExpr::N]),
        ];
        for e in exprs {
            assert_eq!(theta(&e).unwrap(), theta(&e.simplify()).unwrap(), "{e}");
        }
    }
}
