//! The Table 1 bound-conformance checker.
//!
//! Three layers of evidence that the implementation meets the paper:
//!
//! 1. **Θ-equivalence** ([`check_family`]): each family's derived
//!    symbolic total is normalized and compared against the Table 1
//!    fixture row. A derived form that *strictly dominates* its fixture
//!    is a bound regression — the schedule is asymptotically worse than
//!    the paper claims.
//! 2. **Claim 2.1/2.2** ([`check_claims`]): the GSM→QSM/s-QSM/BSP
//!    parameter substitutions of the cross-model mapping, verified as
//!    Θ-equivalences of symbolic expressions rather than at sampled
//!    points.
//! 3. **Differential** ([`grid_differential`]): symbolic-eval-at-a-point
//!    must equal the numeric `predict_ledger` of the instantiated plan
//!    cell for cell, on a fixed `(n, p, g, L)` grid.

use parbounds_algo::ir_families as fam;
use parbounds_models::ModelError;

use super::expr::build::{c, cdiv, clog, maxx, mul};
use super::expr::{GridPoint, SymExpr};
use super::ledgers::{predict_ledger_symbolic, SymModel, SYMBOLIC_FAMILIES};
use super::theta::{theta, Theta};
use crate::statics::predict_ledger;

/// Table 1's Θ-formula for a family, as a symbolic fixture expression.
///
/// The prefix-sums row encodes the *implemented* `k`-ary sweep recipe
/// (`Θ(g²·log n/log g)` — each of the `⌈log_k n⌉` rounds pays `g·(k−1)`
/// with `k = max(2, g)`); the BSP rows are in `log p`, not `log n`,
/// because the per-component partition fold is free under the plan's
/// `InitRule` (components start holding their partition's fold).
pub fn table1_fixture(family: &str) -> Result<SymExpr, ModelError> {
    let qsm_tree = || mul(vec![SymExpr::G, clog(SymExpr::N, SymExpr::G)]);
    let bsp_tree = || {
        mul(vec![
            SymExpr::L,
            clog(SymExpr::P, cdiv(SymExpr::L, SymExpr::G)),
        ])
    };
    Ok(match family {
        // Table 1, OR on the QSM: Θ(g·log n/log g).
        "or-write-tree" => qsm_tree(),
        // The padded fixture is still *claimed* at the OR row — that is
        // the point: its derived ledger must strictly dominate this.
        "or-write-tree-padded" => qsm_tree(),
        // Table 1, parity on the s-QSM: Θ(g·log n).
        "parity-read-tree" => mul(vec![SymExpr::G, clog(SymExpr::N, c(2))]),
        // Broadcast rides the same QSM tree bound.
        "broadcast" => qsm_tree(),
        // The k-ary sweep's own recipe (see doc comment above).
        "prefix-sweep" => mul(vec![SymExpr::G, SymExpr::G, clog(SymExpr::N, SymExpr::G)]),
        // One permutation round-trip: Θ(g).
        "scatter-gather" => SymExpr::G,
        // Table 1, OR/parity/prefix on the BSP: Θ(L·log p/log(L/g)).
        "bsp-reduce" | "bsp-prefix-scan" => bsp_tree(),
        other => {
            return Err(ModelError::BadConfig(format!(
                "no Table 1 fixture for family '{other}'"
            )))
        }
    })
}

/// Outcome of the Θ-equivalence check for one family.
#[derive(Debug, Clone)]
pub struct FamilyConformance {
    /// Registry family name.
    pub family: &'static str,
    /// Human-readable model tag (`QSM`/`s-QSM`/`BSP`).
    pub model: &'static str,
    /// The derived symbolic total, simplified.
    pub derived_total: SymExpr,
    /// Θ-normal form of the derived total.
    pub derived: Theta,
    /// Θ-normal form of the Table 1 fixture.
    pub fixture: Theta,
    /// Derived ≡Θ fixture.
    pub equivalent: bool,
    /// Derived strictly dominates fixture — the bound-regression flag.
    pub regression: bool,
}

impl FamilyConformance {
    /// One-word verdict for tables and logs.
    pub fn verdict(&self) -> &'static str {
        if self.regression {
            "REGRESSION"
        } else if self.equivalent {
            "match"
        } else {
            "mismatch"
        }
    }
}

/// Runs the Θ-equivalence check for one family (the padded fixture is a
/// legal argument and is expected to report a regression).
pub fn check_family(family: &str) -> Result<FamilyConformance, ModelError> {
    let ledger = predict_ledger_symbolic(family)?;
    let model = match ledger.model {
        SymModel::Qsm => "QSM",
        SymModel::SQsm => "s-QSM",
        SymModel::Bsp => "BSP",
    };
    let derived_total = ledger.total_expr();
    let derived = theta(&derived_total)
        .map_err(|e| ModelError::BadConfig(format!("Θ-normalization of {family}: {e}")))?;
    let fixture = theta(&table1_fixture(family)?)
        .map_err(|e| ModelError::BadConfig(format!("Θ-normalization of {family} fixture: {e}")))?;
    Ok(FamilyConformance {
        family: ledger.family,
        model,
        equivalent: derived.equivalent(&fixture),
        regression: derived.strictly_dominates(&fixture),
        derived_total,
        derived,
        fixture,
    })
}

/// Checks every covered family (not the padded fixture).
pub fn check_all_families() -> Result<Vec<FamilyConformance>, ModelError> {
    SYMBOLIC_FAMILIES.iter().map(|f| check_family(f)).collect()
}

/// One verified cross-model mapping equivalence.
#[derive(Debug, Clone)]
pub struct ClaimCheck {
    /// Which claim and instantiation.
    pub claim: &'static str,
    /// Θ-normal form of the mapped GSM bound.
    pub mapped: Theta,
    /// Θ-normal form of the target model's Table 1 row.
    pub row: Theta,
    /// The two normal forms are Θ-equivalent.
    pub holds: bool,
}

/// The GSM deterministic parity theorem's time bound with the machine
/// parameters left symbolic: `μ·⌈log_μ⌈n/γ⌉⌉` with `μ = max(α, β, 2)`
/// (mirrors `parbounds_tables::gsm_parity_det_time`).
fn gsm_parity_time(alpha: SymExpr, beta: SymExpr, gamma: SymExpr) -> SymExpr {
    let mu = maxx(vec![alpha, beta, c(2)]);
    mul(vec![mu.clone(), clog(cdiv(SymExpr::N, gamma), mu)])
}

/// Verifies the Claim 2.1/2.2 model mappings symbolically: each
/// substitution of GSM parameters must land, Θ-exactly, on the target
/// model's Table 1 row.
pub fn check_claims() -> Result<Vec<ClaimCheck>, ModelError> {
    let norm = |e: &SymExpr, what: &str| {
        theta(e).map_err(|err| ModelError::BadConfig(format!("Θ-normalization of {what}: {err}")))
    };
    let ldg = cdiv(SymExpr::L, SymExpr::G);
    let cases: Vec<(&'static str, SymExpr, SymExpr)> = vec![
        (
            "Claim 2.1(1): QSM(g) = GSM(1, g, 1)",
            gsm_parity_time(c(1), SymExpr::G, c(1)),
            table1_fixture("or-write-tree")?,
        ),
        (
            "Claim 2.1(2): s-QSM(g) = g·GSM(1, 1, 1)",
            mul(vec![SymExpr::G, gsm_parity_time(c(1), c(1), c(1))]),
            table1_fixture("parity-read-tree")?,
        ),
        (
            "Claim 2.1(3): BSP(p, g, L) = g·GSM(L/g, L/g, n/p)",
            mul(vec![
                SymExpr::G,
                gsm_parity_time(ldg.clone(), ldg.clone(), cdiv(SymExpr::N, SymExpr::P)),
            ]),
            table1_fixture("bsp-reduce")?,
        ),
        (
            "Claim 2.2: QSM(g, d)|d=1 = d·GSM(1, ⌈g/d⌉, 1)",
            mul(vec![
                c(1),
                gsm_parity_time(c(1), cdiv(SymExpr::G, c(1)), c(1)),
            ]),
            table1_fixture("or-write-tree")?,
        ),
    ];
    cases
        .into_iter()
        .map(|(claim, mapped, row)| {
            let mapped = norm(&mapped, claim)?;
            let row = norm(&row, claim)?;
            Ok(ClaimCheck {
                claim,
                holds: mapped.equivalent(&row),
                mapped,
                row,
            })
        })
        .collect()
}

/// The fixed CI grid for shared-memory families.
pub fn shared_grid() -> Vec<GridPoint> {
    let mut pts = Vec::new();
    for n in [8u64, 9, 16, 33, 64, 100, 257, 1024] {
        for g in [1u64, 2, 3, 8, 16] {
            pts.push(GridPoint::shared(n, g));
        }
    }
    pts
}

/// The fixed CI grid for BSP families (`p ≥ 2`, `g ≤ L`).
pub fn bsp_grid() -> Vec<GridPoint> {
    let mut pts = Vec::new();
    for p in [2u64, 3, 8, 16, 64, 100] {
        for (g, l) in [(1u64, 2u64), (2, 8), (8, 64), (4, 12), (8, 12), (16, 32)] {
            pts.push(GridPoint::bsp(p, g, l));
        }
    }
    pts
}

/// The default differential grid for a family.
pub fn default_grid(family: &str) -> Vec<GridPoint> {
    match family {
        "bsp-reduce" | "bsp-prefix-scan" => bsp_grid(),
        _ => shared_grid(),
    }
}

/// Result of the symbolic-vs-numeric differential for one family.
#[derive(Debug, Clone)]
pub struct DifferentialReport {
    /// Registry family name.
    pub family: &'static str,
    /// Points compared.
    pub points: usize,
    /// Human-readable descriptions of any cell-level divergences.
    pub mismatches: Vec<String>,
}

impl DifferentialReport {
    /// No divergences.
    pub fn clean(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// Instantiates the family's plan at `pt` and returns its numeric
/// prediction.
pub fn numeric_ledger_at(
    family: &str,
    pt: GridPoint,
) -> Result<parbounds_models::CostLedger, ModelError> {
    let n = pt.n as usize;
    let p = pt.p as usize;
    let (plan, _input) = match family {
        "or-write-tree" => fam::or_write_tree_plan(n, pt.g),
        "or-write-tree-padded" => fam::or_write_tree_padded_plan(n, pt.g),
        "parity-read-tree" => fam::parity_read_tree_plan(n, pt.g, 1),
        "broadcast" => fam::broadcast_plan(n, pt.g),
        "prefix-sweep" => fam::prefix_sweep_plan(n, pt.g, 1),
        "scatter-gather" => fam::scatter_gather_plan(n, pt.g, 1),
        "bsp-reduce" => fam::bsp_reduce_plan(p, pt.g, pt.l, 64, 1),
        "bsp-prefix-scan" => fam::bsp_prefix_scan_plan(p, pt.g, pt.l, 64, 1),
        other => {
            return Err(ModelError::BadConfig(format!(
                "no numeric instantiation for family '{other}'"
            )))
        }
    };
    predict_ledger(&plan)
}

/// Cross-validates symbolic evaluation against the numeric predictor,
/// cell for cell, over `points`.
pub fn grid_differential(
    family: &str,
    points: &[GridPoint],
) -> Result<DifferentialReport, ModelError> {
    let ledger = predict_ledger_symbolic(family)?;
    let mut mismatches = Vec::new();
    for &pt in points {
        let symbolic = ledger
            .eval_ledger(pt)
            .map_err(|e| ModelError::BadConfig(format!("symbolic eval of {family}: {e}")))?;
        let numeric = numeric_ledger_at(family, pt)?;
        if symbolic != numeric {
            let detail = (0..symbolic.num_phases().max(numeric.num_phases()))
                .find_map(|i| {
                    let s = symbolic.phases().get(i);
                    let m = numeric.phases().get(i);
                    (s != m).then(|| format!("phase {i}: symbolic {s:?} vs numeric {m:?}"))
                })
                .unwrap_or_else(|| "phase counts differ".to_string());
            mismatches.push(format!(
                "{family} at n={} p={} g={} L={}: {detail}",
                pt.n, pt.p, pt.g, pt.l
            ));
        }
    }
    Ok(DifferentialReport {
        family: ledger.family,
        points: points.len(),
        mismatches,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_family_is_theta_equivalent_to_its_row() {
        for conf in check_all_families().unwrap() {
            assert!(
                conf.equivalent,
                "{}: derived {} vs fixture {}",
                conf.family, conf.derived, conf.fixture
            );
            assert!(!conf.regression, "{} regressed", conf.family);
        }
    }

    #[test]
    fn padded_fixture_regresses() {
        let conf = check_family("or-write-tree-padded").unwrap();
        assert!(
            conf.regression,
            "derived {} vs fixture {}",
            conf.derived, conf.fixture
        );
        assert!(!conf.equivalent);
    }

    #[test]
    fn claims_hold_symbolically() {
        for check in check_claims().unwrap() {
            assert!(
                check.holds,
                "{}: {} vs {}",
                check.claim, check.mapped, check.row
            );
        }
    }

    #[test]
    fn differential_is_bit_identical_on_the_ci_grid() {
        for family in SYMBOLIC_FAMILIES
            .iter()
            .chain(["or-write-tree-padded"].iter())
        {
            let report = grid_differential(family, &default_grid(family)).unwrap();
            assert!(
                report.clean(),
                "{family}: {} mismatches, first: {}",
                report.mismatches.len(),
                report.mismatches.first().map(String::as_str).unwrap_or("")
            );
        }
    }

    #[test]
    fn unknown_family_is_a_typed_error() {
        assert!(check_family("list-ranking").is_err());
        assert!(table1_fixture("list-ranking").is_err());
    }
}
