//! The symbolic cost-expression algebra over the free model parameters.
//!
//! [`SymExpr`] is a small closed term language — sums, products, `max`,
//! `min`, saturating subtraction, ceiling/floor division, powers,
//! `⌈log_k·⌉` by repeated ceiling division, and two bounded iterators
//! (`Σ` over a round index, `max` over an inner index) — whose
//! evaluation semantics mirror, operation for operation, the integer
//! arithmetic the combinators and the numeric predictor perform. That is
//! the whole point: `eval` at a concrete `(n, p, g, L)` point must be
//! *bit-identical* to `predict_ledger`, not merely asymptotically equal,
//! so the differential gate in [`crate::symbolic::conformance`] can
//! compare ledgers cell for cell.

use std::fmt;

/// A concrete evaluation point for the free parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GridPoint {
    /// Problem size `n`.
    pub n: u64,
    /// BSP component count `p`.
    pub p: u64,
    /// Bandwidth gap `g`.
    pub g: u64,
    /// BSP periodicity `L`.
    pub l: u64,
}

impl GridPoint {
    /// A shared-memory point (no BSP coordinates).
    pub fn shared(n: u64, g: u64) -> Self {
        GridPoint { n, p: n, g, l: 0 }
    }

    /// A BSP point (`n` unused by the BSP tree families' ledgers).
    pub fn bsp(p: u64, g: u64, l: u64) -> Self {
        GridPoint { n: 0, p, g, l }
    }
}

/// Errors from evaluation or normalization of a symbolic expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymError {
    /// A bound index (`R`/`J`) was evaluated outside its binder.
    FreeIndex(&'static str),
    /// An iterator count exceeded the sanity bound.
    RunawayIterator(u64),
    /// Θ-normalization met a construct it cannot classify.
    Unsupported(String),
}

impl fmt::Display for SymError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymError::FreeIndex(ix) => write!(f, "free index {ix} outside its binder"),
            SymError::RunawayIterator(c) => write!(f, "iterator count {c} exceeds sanity bound"),
            SymError::Unsupported(what) => write!(f, "unsupported for Θ-normalization: {what}"),
        }
    }
}

/// A symbolic cost expression over `n, p, g, L` and two bound indices.
///
/// All arithmetic saturates at `u64::MAX` and divisions floor their
/// divisor at 1, matching the defensive integer arithmetic used
/// everywhere else in the workspace.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SymExpr {
    /// A literal constant.
    Const(u64),
    /// Problem size `n`.
    N,
    /// BSP component count `p`.
    P,
    /// Bandwidth gap `g`.
    G,
    /// BSP periodicity `L`.
    L,
    /// The outer (round) index bound by [`SymExpr::Sum`], 0-based.
    R,
    /// The inner index bound by [`SymExpr::MaxOver`], 0-based.
    J,
    /// Saturating sum of the operands.
    Add(Vec<SymExpr>),
    /// Saturating product of the operands.
    Mul(Vec<SymExpr>),
    /// Maximum of the operands (0 when empty).
    Max(Vec<SymExpr>),
    /// Minimum of the operands.
    Min(Vec<SymExpr>),
    /// Saturating subtraction `a ∸ b`.
    Sub(Box<SymExpr>, Box<SymExpr>),
    /// `⌈a / max(1, b)⌉`.
    CeilDiv(Box<SymExpr>, Box<SymExpr>),
    /// `⌊a / max(1, b)⌋`.
    FloorDiv(Box<SymExpr>, Box<SymExpr>),
    /// `a^b`, saturating.
    Pow(Box<SymExpr>, Box<SymExpr>),
    /// `⌈log_max(2,b) max(1,a)⌉` by repeated ceiling division — the
    /// exact round count of every tree combinator.
    CeilLog(Box<SymExpr>, Box<SymExpr>),
    /// `⌊a^(1/max(1,b))⌋` — the integer `b`-th root, used by the
    /// adversary growth budgets (`r_t = t·n^{2/3}` is `t·⌊(n²)^{1/3}⌋`).
    /// Flooring understates the budget, i.e. errs on the strict side.
    FloorRoot(Box<SymExpr>, Box<SymExpr>),
    /// `Σ_{R=0}^{count-1} body`.
    Sum {
        /// Number of summands.
        count: Box<SymExpr>,
        /// The summand, which may reference [`SymExpr::R`].
        body: Box<SymExpr>,
    },
    /// `max_{J=0}^{count-1} body` (0 when `count` is 0).
    MaxOver {
        /// Number of candidates.
        count: Box<SymExpr>,
        /// The candidate, which may reference [`SymExpr::J`].
        body: Box<SymExpr>,
    },
}

/// Iterator sanity bound: every legitimate count in this codebase is a
/// `⌈log⌉` or a fan-in, far below this.
const MAX_ITER: u64 = 1 << 20;

/// Shorthand constructors, used heavily by the family ledgers.
pub mod build {
    use super::SymExpr;

    /// Constant.
    pub fn c(v: u64) -> SymExpr {
        SymExpr::Const(v)
    }
    /// Saturating sum.
    pub fn add(xs: Vec<SymExpr>) -> SymExpr {
        SymExpr::Add(xs)
    }
    /// Saturating product.
    pub fn mul(xs: Vec<SymExpr>) -> SymExpr {
        SymExpr::Mul(xs)
    }
    /// Maximum.
    pub fn maxx(xs: Vec<SymExpr>) -> SymExpr {
        SymExpr::Max(xs)
    }
    /// Minimum.
    pub fn minn(xs: Vec<SymExpr>) -> SymExpr {
        SymExpr::Min(xs)
    }
    /// Saturating subtraction.
    pub fn sub(a: SymExpr, b: SymExpr) -> SymExpr {
        SymExpr::Sub(Box::new(a), Box::new(b))
    }
    /// Ceiling division.
    pub fn cdiv(a: SymExpr, b: SymExpr) -> SymExpr {
        SymExpr::CeilDiv(Box::new(a), Box::new(b))
    }
    /// Floor division.
    pub fn fdiv(a: SymExpr, b: SymExpr) -> SymExpr {
        SymExpr::FloorDiv(Box::new(a), Box::new(b))
    }
    /// Saturating power.
    pub fn pow(a: SymExpr, b: SymExpr) -> SymExpr {
        SymExpr::Pow(Box::new(a), Box::new(b))
    }
    /// Ceiling logarithm.
    pub fn clog(a: SymExpr, b: SymExpr) -> SymExpr {
        SymExpr::CeilLog(Box::new(a), Box::new(b))
    }
    /// Floor root.
    pub fn froot(a: SymExpr, b: SymExpr) -> SymExpr {
        SymExpr::FloorRoot(Box::new(a), Box::new(b))
    }
    /// Bounded sum over the round index `R`.
    pub fn sum(count: SymExpr, body: SymExpr) -> SymExpr {
        SymExpr::Sum {
            count: Box::new(count),
            body: Box::new(body),
        }
    }
    /// Bounded maximum over the inner index `J`.
    pub fn maxover(count: SymExpr, body: SymExpr) -> SymExpr {
        SymExpr::MaxOver {
            count: Box::new(count),
            body: Box::new(body),
        }
    }
}

/// `⌈log_k n⌉` on `u64`, identical to `parbounds_ir::ceil_log`.
pub fn ceil_log_u64(n: u64, k: u64) -> u64 {
    let k = k.max(2);
    let mut width = n.max(1);
    let mut levels = 0;
    while width > 1 {
        width = width.div_ceil(k);
        levels += 1;
    }
    levels
}

/// `k^e`, saturating — identical to the combinators' `kpow`.
pub fn kpow_u64(k: u64, e: u64) -> u64 {
    let mut x = 1u64;
    for _ in 0..e {
        x = x.saturating_mul(k);
    }
    x
}

/// Does `b^k <= x` hold, decided without saturation artifacts? An
/// overflowing partial product already exceeds `u64::MAX >= x`.
fn pow_leq(b: u64, k: u64, x: u64) -> bool {
    if b <= 1 {
        return b <= x;
    }
    let mut acc = 1u64;
    for _ in 0..k {
        acc = match acc.checked_mul(b) {
            Some(v) => v,
            None => return false,
        };
        if acc > x {
            return false;
        }
    }
    true
}

/// `⌊x^(1/k)⌋` on `u64` by binary search (`k` floored at 1, matching
/// the divisor convention; `k = 1` is the identity).
pub fn floor_root_u64(x: u64, k: u64) -> u64 {
    let k = k.max(1);
    if k == 1 || x <= 1 {
        return x;
    }
    // For k >= 2 the root is below 2^32.
    let (mut lo, mut hi) = (1u64, x.min((1 << 32) - 1));
    while lo < hi {
        let mid = lo + (hi - lo).div_ceil(2);
        if pow_leq(mid, k, x) {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    lo
}

impl SymExpr {
    /// Evaluates at `pt` with no bound indices in scope.
    pub fn eval(&self, pt: GridPoint) -> Result<u64, SymError> {
        self.eval_with(pt, None, None)
    }

    /// Evaluates at `pt` with the round index `R` (and optionally `J`)
    /// bound.
    pub fn eval_with(
        &self,
        pt: GridPoint,
        r: Option<u64>,
        j: Option<u64>,
    ) -> Result<u64, SymError> {
        Ok(match self {
            SymExpr::Const(v) => *v,
            SymExpr::N => pt.n,
            SymExpr::P => pt.p,
            SymExpr::G => pt.g,
            SymExpr::L => pt.l,
            SymExpr::R => r.ok_or(SymError::FreeIndex("R"))?,
            SymExpr::J => j.ok_or(SymError::FreeIndex("J"))?,
            SymExpr::Add(xs) => {
                let mut acc = 0u64;
                for x in xs {
                    acc = acc.saturating_add(x.eval_with(pt, r, j)?);
                }
                acc
            }
            SymExpr::Mul(xs) => {
                let mut acc = 1u64;
                for x in xs {
                    acc = acc.saturating_mul(x.eval_with(pt, r, j)?);
                }
                acc
            }
            SymExpr::Max(xs) => {
                let mut acc = 0u64;
                for x in xs {
                    acc = acc.max(x.eval_with(pt, r, j)?);
                }
                acc
            }
            SymExpr::Min(xs) => {
                let mut acc = u64::MAX;
                for x in xs {
                    acc = acc.min(x.eval_with(pt, r, j)?);
                }
                acc
            }
            SymExpr::Sub(a, b) => a
                .eval_with(pt, r, j)?
                .saturating_sub(b.eval_with(pt, r, j)?),
            SymExpr::CeilDiv(a, b) => a
                .eval_with(pt, r, j)?
                .div_ceil(b.eval_with(pt, r, j)?.max(1)),
            SymExpr::FloorDiv(a, b) => a.eval_with(pt, r, j)? / b.eval_with(pt, r, j)?.max(1),
            SymExpr::Pow(a, b) => kpow_u64(a.eval_with(pt, r, j)?, b.eval_with(pt, r, j)?),
            SymExpr::CeilLog(a, b) => ceil_log_u64(a.eval_with(pt, r, j)?, b.eval_with(pt, r, j)?),
            SymExpr::FloorRoot(a, b) => {
                floor_root_u64(a.eval_with(pt, r, j)?, b.eval_with(pt, r, j)?)
            }
            SymExpr::Sum { count, body } => {
                let count = count.eval_with(pt, r, j)?;
                if count > MAX_ITER {
                    return Err(SymError::RunawayIterator(count));
                }
                let mut acc = 0u64;
                for i in 0..count {
                    acc = acc.saturating_add(body.eval_with(pt, Some(i), j)?);
                }
                acc
            }
            SymExpr::MaxOver { count, body } => {
                let count = count.eval_with(pt, r, j)?;
                if count > MAX_ITER {
                    return Err(SymError::RunawayIterator(count));
                }
                let mut acc = 0u64;
                for i in 0..count {
                    acc = acc.max(body.eval_with(pt, r, Some(i))?);
                }
                acc
            }
        })
    }

    /// True when the expression references the round index `R`.
    pub fn uses_r(&self) -> bool {
        match self {
            SymExpr::R => true,
            SymExpr::Const(_) | SymExpr::N | SymExpr::P | SymExpr::G | SymExpr::L | SymExpr::J => {
                false
            }
            SymExpr::Add(xs) | SymExpr::Mul(xs) | SymExpr::Max(xs) | SymExpr::Min(xs) => {
                xs.iter().any(SymExpr::uses_r)
            }
            SymExpr::Sub(a, b)
            | SymExpr::CeilDiv(a, b)
            | SymExpr::FloorDiv(a, b)
            | SymExpr::Pow(a, b)
            | SymExpr::CeilLog(a, b)
            | SymExpr::FloorRoot(a, b) => a.uses_r() || b.uses_r(),
            // A Sum rebinds R; only its count can leak an outer R. Our
            // ledgers never nest Sums, but stay precise anyway.
            SymExpr::Sum { count, .. } => count.uses_r(),
            SymExpr::MaxOver { count, body } => count.uses_r() || body.uses_r(),
        }
    }

    /// Substitutes the round index `R` with `replacement` (not entering
    /// nested `Sum` binders, which rebind it).
    pub fn subst_r(&self, replacement: &SymExpr) -> SymExpr {
        self.subst(&SymExpr::R, replacement)
    }

    /// Substitutes the inner index `J` with `replacement` (not entering
    /// nested `MaxOver` binders).
    pub fn subst_j(&self, replacement: &SymExpr) -> SymExpr {
        self.subst(&SymExpr::J, replacement)
    }

    fn subst(&self, var: &SymExpr, replacement: &SymExpr) -> SymExpr {
        if self == var {
            return replacement.clone();
        }
        let go = |x: &SymExpr| x.subst(var, replacement);
        let gob = |x: &SymExpr| Box::new(go(x));
        match self {
            SymExpr::Add(xs) => SymExpr::Add(xs.iter().map(go).collect()),
            SymExpr::Mul(xs) => SymExpr::Mul(xs.iter().map(go).collect()),
            SymExpr::Max(xs) => SymExpr::Max(xs.iter().map(go).collect()),
            SymExpr::Min(xs) => SymExpr::Min(xs.iter().map(go).collect()),
            SymExpr::Sub(a, b) => SymExpr::Sub(gob(a), gob(b)),
            SymExpr::CeilDiv(a, b) => SymExpr::CeilDiv(gob(a), gob(b)),
            SymExpr::FloorDiv(a, b) => SymExpr::FloorDiv(gob(a), gob(b)),
            SymExpr::Pow(a, b) => SymExpr::Pow(gob(a), gob(b)),
            SymExpr::CeilLog(a, b) => SymExpr::CeilLog(gob(a), gob(b)),
            SymExpr::FloorRoot(a, b) => SymExpr::FloorRoot(gob(a), gob(b)),
            SymExpr::Sum { count, body } => SymExpr::Sum {
                count: gob(count),
                // R is rebound inside; only substitute J through.
                body: if *var == SymExpr::R {
                    body.clone()
                } else {
                    gob(body)
                },
            },
            SymExpr::MaxOver { count, body } => SymExpr::MaxOver {
                count: gob(count),
                body: if *var == SymExpr::J {
                    body.clone()
                } else {
                    gob(body)
                },
            },
            other => other.clone(),
        }
    }

    /// Structural simplification: constant folding, flattening of nested
    /// variadic nodes, identity/absorbing elements, canonical operand
    /// ordering, and iterator unrolling into closed products where the
    /// body ignores its index. Evaluation is preserved *exactly* at every
    /// point (the proptests assert this), and the pass is idempotent.
    pub fn simplify(&self) -> SymExpr {
        match self {
            SymExpr::Add(xs) => {
                let mut flat = Vec::new();
                let mut konst = 0u64;
                for x in xs {
                    match x.simplify() {
                        SymExpr::Const(v) => konst = konst.saturating_add(v),
                        SymExpr::Add(inner) => {
                            for y in inner {
                                if let SymExpr::Const(v) = y {
                                    konst = konst.saturating_add(v);
                                } else {
                                    flat.push(y);
                                }
                            }
                        }
                        other => flat.push(other),
                    }
                }
                if konst > 0 {
                    flat.push(SymExpr::Const(konst));
                }
                flat.sort();
                match flat.len() {
                    0 => SymExpr::Const(0),
                    1 => flat.pop().unwrap(),
                    _ => SymExpr::Add(flat),
                }
            }
            SymExpr::Mul(xs) => {
                let mut flat = Vec::new();
                let mut konst = 1u64;
                for x in xs {
                    match x.simplify() {
                        SymExpr::Const(0) => return SymExpr::Const(0),
                        SymExpr::Const(v) => konst = konst.saturating_mul(v),
                        SymExpr::Mul(inner) => {
                            for y in inner {
                                match y {
                                    SymExpr::Const(0) => return SymExpr::Const(0),
                                    SymExpr::Const(v) => konst = konst.saturating_mul(v),
                                    other => flat.push(other),
                                }
                            }
                        }
                        other => flat.push(other),
                    }
                }
                if konst == 0 {
                    return SymExpr::Const(0);
                }
                if konst != 1 {
                    flat.push(SymExpr::Const(konst));
                }
                flat.sort();
                match flat.len() {
                    0 => SymExpr::Const(1),
                    1 => flat.pop().unwrap(),
                    _ => SymExpr::Mul(flat),
                }
            }
            SymExpr::Max(xs) => {
                let mut flat = Vec::new();
                let mut konst: Option<u64> = None;
                for x in xs {
                    match x.simplify() {
                        SymExpr::Const(v) => konst = Some(konst.unwrap_or(0).max(v)),
                        SymExpr::Max(inner) => {
                            for y in inner {
                                if let SymExpr::Const(v) = y {
                                    konst = Some(konst.unwrap_or(0).max(v));
                                } else {
                                    flat.push(y);
                                }
                            }
                        }
                        other => flat.push(other),
                    }
                }
                // max's identity is 0: a 0 constant is droppable once any
                // operand remains.
                match konst {
                    Some(0) if !flat.is_empty() => {}
                    Some(v) => flat.push(SymExpr::Const(v)),
                    None => {}
                }
                flat.sort();
                flat.dedup();
                match flat.len() {
                    0 => SymExpr::Const(0),
                    1 => flat.pop().unwrap(),
                    _ => SymExpr::Max(flat),
                }
            }
            SymExpr::Min(xs) => {
                let mut flat = Vec::new();
                let mut konst: Option<u64> = None;
                for x in xs {
                    match x.simplify() {
                        SymExpr::Const(v) => konst = Some(konst.map_or(v, |k: u64| k.min(v))),
                        SymExpr::Min(inner) => {
                            for y in inner {
                                if let SymExpr::Const(v) = y {
                                    konst = Some(konst.map_or(v, |k: u64| k.min(v)));
                                } else {
                                    flat.push(y);
                                }
                            }
                        }
                        other => flat.push(other),
                    }
                }
                if konst == Some(0) {
                    return SymExpr::Const(0);
                }
                if let Some(v) = konst {
                    flat.push(SymExpr::Const(v));
                }
                flat.sort();
                flat.dedup();
                match flat.len() {
                    0 => SymExpr::Const(u64::MAX),
                    1 => flat.pop().unwrap(),
                    _ => SymExpr::Min(flat),
                }
            }
            SymExpr::Sub(a, b) => match (a.simplify(), b.simplify()) {
                (SymExpr::Const(x), SymExpr::Const(y)) => SymExpr::Const(x.saturating_sub(y)),
                (a, SymExpr::Const(0)) => a,
                (a, b) => SymExpr::Sub(Box::new(a), Box::new(b)),
            },
            SymExpr::CeilDiv(a, b) => match (a.simplify(), b.simplify()) {
                (SymExpr::Const(x), SymExpr::Const(y)) => SymExpr::Const(x.div_ceil(y.max(1))),
                (a, SymExpr::Const(0) | SymExpr::Const(1)) => a,
                (a, b) => SymExpr::CeilDiv(Box::new(a), Box::new(b)),
            },
            SymExpr::FloorDiv(a, b) => match (a.simplify(), b.simplify()) {
                (SymExpr::Const(x), SymExpr::Const(y)) => SymExpr::Const(x / y.max(1)),
                (a, SymExpr::Const(0) | SymExpr::Const(1)) => a,
                (a, b) => SymExpr::FloorDiv(Box::new(a), Box::new(b)),
            },
            SymExpr::Pow(a, b) => match (a.simplify(), b.simplify()) {
                (SymExpr::Const(x), SymExpr::Const(y)) => SymExpr::Const(kpow_u64(x, y)),
                (_, SymExpr::Const(0)) => SymExpr::Const(1),
                (a, SymExpr::Const(1)) => a,
                (a, b) => SymExpr::Pow(Box::new(a), Box::new(b)),
            },
            SymExpr::CeilLog(a, b) => match (a.simplify(), b.simplify()) {
                (SymExpr::Const(x), SymExpr::Const(y)) => SymExpr::Const(ceil_log_u64(x, y)),
                (SymExpr::Const(0) | SymExpr::Const(1), _) => SymExpr::Const(0),
                (a, b) => SymExpr::CeilLog(Box::new(a), Box::new(b)),
            },
            SymExpr::FloorRoot(a, b) => match (a.simplify(), b.simplify()) {
                (SymExpr::Const(x), SymExpr::Const(y)) => SymExpr::Const(floor_root_u64(x, y)),
                (a, SymExpr::Const(0) | SymExpr::Const(1)) => a,
                (a, b) => SymExpr::FloorRoot(Box::new(a), Box::new(b)),
            },
            SymExpr::Sum { count, body } => {
                let count = count.simplify();
                let body = body.simplify();
                if count == SymExpr::Const(0) || body == SymExpr::Const(0) {
                    return SymExpr::Const(0);
                }
                if !body.uses_r() {
                    // Σ_{r<c} b = c·b exactly (saturation included:
                    // repeated saturating add of b equals saturating c·b).
                    return SymExpr::Mul(vec![count, body]).simplify();
                }
                if count == SymExpr::Const(1) {
                    return body.subst_r(&SymExpr::Const(0)).simplify();
                }
                SymExpr::Sum {
                    count: Box::new(count),
                    body: Box::new(body),
                }
            }
            SymExpr::MaxOver { count, body } => {
                let count = count.simplify();
                let body = body.simplify();
                if count == SymExpr::Const(0) || body == SymExpr::Const(0) {
                    return SymExpr::Const(0);
                }
                if let SymExpr::Const(c) = count {
                    if !body.contains_j() {
                        // Constant positive count, index-free body: the
                        // max over c ≥ 1 copies is the body itself.
                        debug_assert!(c >= 1);
                        return body;
                    }
                    if c == 1 {
                        return body.subst_j(&SymExpr::Const(0)).simplify();
                    }
                }
                SymExpr::MaxOver {
                    count: Box::new(count),
                    body: Box::new(body),
                }
            }
            leaf => leaf.clone(),
        }
    }

    /// True when the expression references the inner index `J`.
    pub fn contains_j(&self) -> bool {
        match self {
            SymExpr::J => true,
            SymExpr::Const(_) | SymExpr::N | SymExpr::P | SymExpr::G | SymExpr::L | SymExpr::R => {
                false
            }
            SymExpr::Add(xs) | SymExpr::Mul(xs) | SymExpr::Max(xs) | SymExpr::Min(xs) => {
                xs.iter().any(SymExpr::contains_j)
            }
            SymExpr::Sub(a, b)
            | SymExpr::CeilDiv(a, b)
            | SymExpr::FloorDiv(a, b)
            | SymExpr::Pow(a, b)
            | SymExpr::CeilLog(a, b)
            | SymExpr::FloorRoot(a, b) => a.contains_j() || b.contains_j(),
            SymExpr::Sum { count, body } => count.contains_j() || body.contains_j(),
            SymExpr::MaxOver { count, .. } => count.contains_j(),
        }
    }
}

impl fmt::Display for SymExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn join(f: &mut fmt::Formatter<'_>, xs: &[SymExpr], sep: &str) -> fmt::Result {
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    write!(f, "{sep}")?;
                }
                write!(f, "{x}")?;
            }
            Ok(())
        }
        match self {
            SymExpr::Const(v) => write!(f, "{v}"),
            SymExpr::N => write!(f, "n"),
            SymExpr::P => write!(f, "p"),
            SymExpr::G => write!(f, "g"),
            SymExpr::L => write!(f, "L"),
            SymExpr::R => write!(f, "r"),
            SymExpr::J => write!(f, "j"),
            SymExpr::Add(xs) => {
                write!(f, "(")?;
                join(f, xs, " + ")?;
                write!(f, ")")
            }
            SymExpr::Mul(xs) => join(f, xs, "·"),
            SymExpr::Max(xs) => {
                write!(f, "max(")?;
                join(f, xs, ", ")?;
                write!(f, ")")
            }
            SymExpr::Min(xs) => {
                write!(f, "min(")?;
                join(f, xs, ", ")?;
                write!(f, ")")
            }
            SymExpr::Sub(a, b) => write!(f, "({a} - {b})"),
            SymExpr::CeilDiv(a, b) => write!(f, "⌈{a}/{b}⌉"),
            SymExpr::FloorDiv(a, b) => write!(f, "⌊{a}/{b}⌋"),
            SymExpr::Pow(a, b) => write!(f, "{a}^{b}"),
            SymExpr::CeilLog(a, b) => write!(f, "⌈log_{b}({a})⌉"),
            SymExpr::FloorRoot(a, b) => write!(f, "⌊{a}^(1/{b})⌋"),
            SymExpr::Sum { count, body } => write!(f, "Σ_{{r<{count}}} {body}"),
            SymExpr::MaxOver { count, body } => write!(f, "max_{{j<{count}}} {body}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::build::*;
    use super::*;

    #[test]
    fn eval_matches_saturating_integer_semantics() {
        let pt = GridPoint {
            n: 100,
            p: 16,
            g: 8,
            l: 64,
        };
        assert_eq!(add(vec![SymExpr::N, c(1)]).eval(pt).unwrap(), 101);
        assert_eq!(cdiv(SymExpr::N, c(0)).eval(pt).unwrap(), 100); // divisor floored at 1
        assert_eq!(sub(c(3), c(7)).eval(pt).unwrap(), 0);
        assert_eq!(
            clog(SymExpr::N, SymExpr::G).eval(pt).unwrap(),
            ceil_log_u64(100, 8)
        );
        assert_eq!(clog(c(1), c(2)).eval(pt).unwrap(), 0); // log 1 = 0
        assert_eq!(pow(c(2), c(70)).eval(pt).unwrap(), u64::MAX);
        let s = sum(c(4), add(vec![SymExpr::R, c(1)]));
        assert_eq!(s.eval(pt).unwrap(), 1 + 2 + 3 + 4);
        let m = maxover(c(3), mul(vec![c(2), SymExpr::J]));
        assert_eq!(m.eval(pt).unwrap(), 4);
        assert_eq!(maxover(c(0), SymExpr::J).eval(pt).unwrap(), 0);
    }

    #[test]
    fn floor_root_matches_integer_root_semantics() {
        // ⌊(n²)^(1/3)⌋ at n = 4096: (2^24)^(1/3) = 2^8 = 256 exactly.
        let pt = GridPoint {
            n: 4096,
            p: 4096,
            g: 1,
            l: 0,
        };
        let e = froot(pow(SymExpr::N, c(2)), c(3));
        assert_eq!(e.eval(pt).unwrap(), 256);
        // Exhaustive check of ⌊x^(1/k)⌋ on a grid against the definition.
        for x in (0u64..200).chain([u64::MAX - 1, u64::MAX]) {
            for k in 1u64..6 {
                let r = floor_root_u64(x, k);
                assert!(pow_leq(r, k, x), "root {r} too big for x={x}, k={k}");
                if r < u64::MAX {
                    assert!(!pow_leq(r + 1, k, x), "root {r} too small for x={x}, k={k}");
                }
            }
        }
        assert_eq!(floor_root_u64(u64::MAX, 2), (1 << 32) - 1);
        assert_eq!(floor_root_u64(7, 1), 7);
        assert_eq!(floor_root_u64(5, 0), 5); // k floored at 1
        assert_eq!(floor_root_u64(0, 3), 0);
        // Huge exponents terminate and land on 1 for any x ≥ 1.
        assert_eq!(floor_root_u64(u64::MAX, u64::MAX), 1);
        // simplify const-folds and treats root-1 as identity.
        assert_eq!(froot(c(4096), c(3)).simplify(), c(16));
        assert_eq!(froot(SymExpr::N, c(1)).simplify(), SymExpr::N);
        assert_eq!(format!("{}", froot(SymExpr::N, c(3))), "⌊n^(1/3)⌋");
    }

    #[test]
    fn free_index_is_an_error() {
        let pt = GridPoint {
            n: 4,
            p: 2,
            g: 1,
            l: 2,
        };
        assert_eq!(SymExpr::R.eval(pt), Err(SymError::FreeIndex("R")));
        assert_eq!(SymExpr::J.eval(pt), Err(SymError::FreeIndex("J")));
        // Bound occurrences are fine.
        assert!(sum(c(2), SymExpr::R).eval(pt).is_ok());
    }

    #[test]
    fn simplify_folds_and_flattens() {
        let e = add(vec![c(2), add(vec![c(3), SymExpr::N]), c(0)]);
        assert_eq!(e.simplify(), add(vec![c(5), SymExpr::N]));
        let e = mul(vec![c(1), SymExpr::G, mul(vec![c(4), SymExpr::N])]);
        assert_eq!(e.simplify(), mul(vec![c(4), SymExpr::N, SymExpr::G]));
        let e = mul(vec![SymExpr::N, c(0)]);
        assert_eq!(e.simplify(), c(0));
        assert_eq!(pow(SymExpr::G, c(0)).simplify(), c(1));
        assert_eq!(cdiv(SymExpr::N, c(1)).simplify(), SymExpr::N);
        assert_eq!(clog(c(1), SymExpr::G).simplify(), c(0));
        // Index-free sums collapse to products.
        assert_eq!(
            sum(SymExpr::N, SymExpr::G).simplify(),
            mul(vec![SymExpr::N, SymExpr::G]).simplify()
        );
    }

    #[test]
    fn simplify_preserves_eval_on_a_grid() {
        let exprs = vec![
            add(vec![c(2), add(vec![c(3), SymExpr::N]), c(0)]),
            mul(vec![
                maxx(vec![SymExpr::G, c(2)]),
                clog(SymExpr::N, SymExpr::G),
            ]),
            sum(
                clog(SymExpr::N, c(2)),
                minn(vec![SymExpr::G, cdiv(SymExpr::N, pow(c(2), SymExpr::R))]),
            ),
            maxover(
                minn(vec![SymExpr::G, SymExpr::P]),
                add(vec![SymExpr::J, c(1)]),
            ),
            sub(fdiv(SymExpr::L, SymExpr::G), c(1)),
        ];
        for n in [1u64, 2, 7, 64, 100] {
            for g in [1u64, 3, 8] {
                let pt = GridPoint {
                    n,
                    p: n.max(2),
                    g,
                    l: 8 * g,
                };
                for e in &exprs {
                    assert_eq!(e.eval(pt), e.simplify().eval(pt), "{e} at {pt:?}");
                }
            }
        }
    }

    #[test]
    fn simplify_is_idempotent_on_samples() {
        let exprs = vec![
            add(vec![c(2), add(vec![c(3), SymExpr::N]), c(0)]),
            maxx(vec![c(0), SymExpr::G, maxx(vec![SymExpr::G, c(2)])]),
            minn(vec![SymExpr::G, minn(vec![c(5), SymExpr::N])]),
            sum(clog(SymExpr::N, c(2)), add(vec![SymExpr::R, SymExpr::G])),
        ];
        for e in &exprs {
            let once = e.simplify();
            assert_eq!(once, once.simplify(), "{e}");
        }
    }
}
