//! # parbounds-analyze
//!
//! Model-conformance analyzer for the SPAA'98 simulators: audits programs
//! and executions of the QSM, s-QSM, BSP and GSM machines on three axes.
//!
//! 1. **Race / determinism detection** ([`race`]): replays a program under
//!    perturbed concurrent-write arbitration ([`WinnerPolicy`] adversaries
//!    and, for small choice spaces, exhaustive scripted enumeration) and
//!    reports observable-output divergence with a minimized witness — the
//!    cell, phase and contending processors of the first divergent
//!    arbitration. The QSM resolves concurrent writes *arbitrarily*
//!    (Section 2.1), so any algorithm whose output depends on the winner
//!    is wrong.
//! 2. **Trace lints** ([`lints`]): typed [`Diagnostic`]s over
//!    [`ExecTrace`]/[`GsmTrace`]/BSP superstep traces — same-phase
//!    read/write conflicts, per-cell queue contention over a declared
//!    bound, s-QSM read/write asymmetry, BSP sends that can never be
//!    delivered, GSM γ-region violations, dead reads and unconsumed
//!    writes.
//! 3. **Cost contracts** ([`contracts`]): each algorithm family declares
//!    its asymptotic envelope (a
//!    [`CostContract`](parbounds_models::CostContract)); the checker fits
//!    measured ledger sweeps against it and fails on super-envelope
//!    growth.
//! 4. **Static plan analysis** ([`statics`]): for schedules declared as a
//!    `parbounds-ir` [`PhasePlan`](parbounds_ir::PhasePlan), predicts the
//!    exact per-phase `(m_op, m_rw, κ)` / BSP `h` ledger *without
//!    executing*, certifies race-freedom by write-set disjointness, and
//!    applies the same rule table as the dynamic lints ([`rules`] is the
//!    single source of truth for both passes). [`cross_validate`] then
//!    runs the plan and asserts predicted == measured, cell for cell.
//!
//! [`suite`] wires all Section 8 families through the dynamic analyses and
//! [`statics`] cross-validates the IR-lifted families; the `parbounds
//! lint` / `parbounds analyze --static` CLI subcommands render the results
//! and exit non-zero when anything is flagged.
//!
//! [`WinnerPolicy`]: parbounds_models::WinnerPolicy
//! [`ExecTrace`]: parbounds_models::ExecTrace
//! [`GsmTrace`]: parbounds_models::GsmTrace

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod contracts;
pub mod diagnostics;
pub mod lints;
pub mod race;
pub mod rules;
pub mod statics;
pub mod suite;
pub mod symbolic;

pub use contracts::{check_contract, ContractPoint, ContractReport};
pub use diagnostics::{Diagnostic, Location, Rule, Severity};
pub use lints::{
    lint_bsp_trace, lint_gsm_trace, lint_qsm_trace, BspLintConfig, LintConfig, OutputSpec,
};
pub use race::{detect_races_qsm, detect_races_with, Probe, RaceConfig, RaceReport, RaceWitness};
pub use statics::{
    analyze_plan, analyze_static_all, analyze_static_family, certify_writes, cross_validate,
    ir_family_plan, lint_compile, lint_parallelism, lint_plan, predict_ledger, predict_ledger_with,
    CrossValidation, StaticAnalysis, StaticFamilyReport, StaticRaceWitness, StaticReport,
    WriteCertificate, IR_FAMILIES,
};
pub use suite::{analyze_all, analyze_family, AnalysisReport, FamilyReport, SuiteConfig, FAMILIES};
pub use symbolic::{
    analyze_symbolic_all, analyze_symbolic_family, check_all_families, check_claims, check_family,
    predict_ledger_symbolic, recognize_plan, table1_fixture, theta, ClaimCheck, FamilyConformance,
    GridPoint, PlanSymbolicCheck, SymExpr, SymLedger, SymbolicFamilyReport, SymbolicReport, Theta,
    SYMBOLIC_FAMILIES,
};
