//! Static plan analysis: cost prediction, race certification and lints
//! over a [`PhasePlan`] — all without executing anything.
//!
//! The dynamic passes of this crate look at what a run *did*; this module
//! looks at what a declared schedule *must* do. Because a [`PhasePlan`]
//! names every request of every processor in every phase, the per-phase
//! `(m_op, m_rw, κ)` triple (or BSP `(w, h)` pair) can be read straight
//! off the plan and folded through the model's Section 2 cost formula,
//! producing the *exact* [`CostLedger`] the simulator will measure —
//! [`cross_validate`] asserts that equality cell for cell.
//!
//! The analysis is **saturating**: every [`Guard`](parbounds_ir::Guard)
//! is assumed to fire. For data-independent families the prediction is
//! therefore exact on every input; for guarded families (the OR write
//! tree) it is a worst case, attained on the all-ones input the family
//! ships for cross-validation.
//!
//! Three entry points mirror the three dynamic axes:
//!
//! 1. [`predict_ledger`] — the symbolic cost ledger.
//! 2. [`certify_writes`] — race-freedom by static write-set disjointness:
//!    a cell written by two processors in one phase is safe only if both
//!    provably store the same constant (the arbitrary-winner rule of
//!    Section 2.1 cannot perturb a common write).
//! 3. [`lint_plan`] — the same rule table as the dynamic trace lints
//!    ([`crate::rules`]), applied pre-execution, plus [`Rule::DeadPhase`],
//!    which only a static view can see.

use std::collections::BTreeMap;

use parbounds_algo::broadcast::broadcast_cost_max;
use parbounds_algo::ir_families::{
    broadcast_plan, bsp_prefix_scan_plan, bsp_reduce_plan, or_write_tree_padded_plan,
    or_write_tree_plan, parity_read_tree_plan, prefix_sweep_plan, racy_plan, scatter_gather_plan,
};
use parbounds_algo::or_tree::{or_default_fanin, or_write_tree_cost_max};
use parbounds_algo::reduce::tree_reduce_cost;
use parbounds_ir::{
    compile_plan, execute_plan, CompileOutcome, ModelKind, OutputDecl, PhasePlan, PlanBody,
    ValueRule,
};
use parbounds_models::{
    Addr, BspMachine, CancelToken, CostLedger, GsmMachine, ModelError, PhaseCost, QsmMachine,
    Result, Word,
};

use crate::diagnostics::{Diagnostic, Location, Rule, Severity};
use crate::rules;

/// Folds a plan through its model's cost formula and returns the ledger
/// the simulator will produce, without executing. Saturating: guarded
/// requests are assumed issued.
pub fn predict_ledger(plan: &PhasePlan) -> Result<CostLedger> {
    predict_ledger_with(plan, &CancelToken::new())
}

/// [`predict_ledger`] with a cooperative [`CancelToken`]: the fold checks
/// the token at every phase boundary and stops with
/// [`ModelError::DeadlineExceeded`] once it trips, so even static analysis
/// of adversarially long plans respects a caller's deadline.
pub fn predict_ledger_with(plan: &PhasePlan, cancel: &CancelToken) -> Result<CostLedger> {
    plan.validate()?;
    let mut ledger = CostLedger::new();
    match &plan.body {
        PlanBody::Shared(phases) => {
            for (t, phase) in phases.iter().enumerate() {
                cancel.check(t)?;
                let mut m_op = 0u64;
                let mut m_rw = 0u64;
                let mut any_access = false;
                let mut reads: BTreeMap<Addr, u64> = BTreeMap::new();
                let mut writes: BTreeMap<Addr, u64> = BTreeMap::new();
                for e in &phase.procs {
                    let r = e.reads.len() as u64;
                    let w = e.writes.len() as u64;
                    m_op = m_op.max(e.local_ops + r + w);
                    m_rw = m_rw.max(r.max(w));
                    any_access |= r + w > 0;
                    for &a in &e.reads {
                        *reads.entry(a).or_insert(0) += 1;
                    }
                    for ws in &e.writes {
                        *writes.entry(ws.addr).or_insert(0) += 1;
                    }
                }
                let write_contention = writes.values().copied().max().unwrap_or(1);
                match plan.model {
                    ModelKind::Qsm { g } | ModelKind::SQsm { g } | ModelKind::QsmUnitCr { g } => {
                        let read_contention = reads.values().copied().max().unwrap_or(1);
                        let kappa = match plan.model {
                            // Unit-cost concurrent reads: only write
                            // contention queues.
                            ModelKind::QsmUnitCr { .. } => write_contention,
                            _ if any_access => read_contention.max(write_contention),
                            _ => 1,
                        };
                        let machine = match plan.model {
                            ModelKind::SQsm { .. } => QsmMachine::sqsm(g),
                            ModelKind::QsmUnitCr { .. } => QsmMachine::qsm_unit_cr(g),
                            _ => QsmMachine::qsm(g),
                        };
                        let cost = machine.phase_cost(m_op, m_rw, kappa);
                        ledger.push(PhaseCost {
                            m_op,
                            m_rw: m_rw.max(1),
                            kappa,
                            cost,
                        });
                    }
                    ModelKind::Gsm { alpha, beta, gamma } => {
                        // Strong queuing charges reads and writes alike.
                        let kappa = if any_access {
                            reads
                                .values()
                                .chain(writes.values())
                                .copied()
                                .max()
                                .unwrap_or(1)
                        } else {
                            1
                        };
                        let machine = GsmMachine::new(alpha, beta, gamma);
                        let cost = machine.phase_cost(m_rw.max(1), kappa);
                        ledger.push(PhaseCost {
                            m_op: 0,
                            m_rw: m_rw.max(1),
                            kappa,
                            cost,
                        });
                    }
                    ModelKind::Bsp { .. } => unreachable!("validate ties the BSP to Msg bodies"),
                }
            }
        }
        PlanBody::Msg { steps, .. } => {
            let ModelKind::Bsp { p, g, l } = plan.model else {
                unreachable!("validate ties Msg bodies to the BSP");
            };
            let machine = BspMachine::new(p, g, l)?;
            let finish = plan.finish_phases()?;
            // Messages awaiting consumption at the start of each superstep.
            let mut inbox = vec![0u64; p];
            for (t, step) in steps.iter().enumerate() {
                cancel.check(t)?;
                let mut declared = vec![(0u64, 0u64); p];
                let mut received = vec![0u64; p];
                let mut next_inbox = vec![0u64; p];
                for e in &step.comps {
                    declared[e.pid] = (e.local_ops, e.sends.len() as u64);
                    for s in &e.sends {
                        // Every send counts toward h; only sends to a
                        // component still alive next superstep are ever
                        // consumed (Section 2.1.3 delivery rule).
                        received[s.dest] += 1;
                        if finish[s.dest] > t {
                            next_inbox[s.dest] += 1;
                        }
                    }
                }
                let mut w = 0u64;
                let mut max_sent = 0u64;
                for (pid, &(ops, sent)) in declared.iter().enumerate() {
                    if finish[pid] >= t {
                        w = w.max(ops + sent + inbox[pid]);
                        max_sent = max_sent.max(sent);
                    }
                }
                let h = max_sent.max(received.iter().copied().max().unwrap_or(0));
                let cost = machine.superstep_cost(w, h);
                ledger.push(PhaseCost {
                    m_op: w,
                    m_rw: h.max(1),
                    kappa: 1,
                    cost,
                });
                inbox = next_inbox;
            }
        }
    }
    Ok(ledger)
}

/// A `(phase, cell, writers)` triple the certifier could not prove safe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticRaceWitness {
    /// Phase with the contended write.
    pub phase: usize,
    /// The contended cell.
    pub addr: Addr,
    /// The processors writing it in that phase.
    pub pids: Vec<usize>,
}

/// The outcome of static write-set disjointness certification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WriteCertificate {
    /// Every phase's write sets are pairwise disjoint, except possibly
    /// cells where all writers store the same compile-time constant — a
    /// common write the arbitrary-winner rule cannot perturb.
    RaceFree {
        /// Number of phases certified.
        phases: usize,
        /// Multi-writer cells that needed the equal-constant argument.
        common_value_cells: usize,
    },
    /// Some cell has writers whose values are not provably equal: the
    /// arbitration winner is observable and the plan is refused a
    /// certificate.
    Racy {
        /// One witness per non-disjoint `(phase, cell)`.
        witnesses: Vec<StaticRaceWitness>,
    },
}

impl WriteCertificate {
    /// True when the plan was certified race-free.
    pub fn is_race_free(&self) -> bool {
        matches!(self, WriteCertificate::RaceFree { .. })
    }
}

/// Certifies race-freedom by static write-set disjointness. Sound under
/// the saturating convention: guards can only *remove* writes, and a
/// subset of equal-constant writers is still an equal-constant set.
pub fn certify_writes(plan: &PhasePlan) -> Result<WriteCertificate> {
    plan.validate()?;
    let phases = plan.num_phases();
    let PlanBody::Shared(shared) = &plan.body else {
        // Message passing has no shared cells: nothing to arbitrate.
        return Ok(WriteCertificate::RaceFree {
            phases,
            common_value_cells: 0,
        });
    };
    let mut witnesses = Vec::new();
    let mut common = 0usize;
    for (t, phase) in shared.iter().enumerate() {
        let mut writers: BTreeMap<Addr, Vec<(usize, ValueRule)>> = BTreeMap::new();
        for e in &phase.procs {
            for w in &e.writes {
                writers.entry(w.addr).or_default().push((e.pid, w.value));
            }
        }
        for (addr, list) in writers {
            if list.len() < 2 {
                continue;
            }
            let common_write = match list[0].1 {
                ValueRule::Const(v0) => list.iter().all(|&(_, v)| v == ValueRule::Const(v0)),
                _ => false,
            };
            if common_write {
                common += 1;
            } else {
                witnesses.push(StaticRaceWitness {
                    phase: t,
                    addr,
                    pids: list.iter().map(|&(pid, _)| pid).collect(),
                });
            }
        }
    }
    if witnesses.is_empty() {
        Ok(WriteCertificate::RaceFree {
            phases,
            common_value_cells: common,
        })
    } else {
        Ok(WriteCertificate::Racy { witnesses })
    }
}

/// Runs the shared rule table of [`crate::rules`] over a plan without
/// executing it, plus the static-only [`Rule::DeadPhase`] check.
pub fn lint_plan(plan: &PhasePlan) -> Result<Vec<Diagnostic>> {
    plan.validate()?;
    let model = plan.model.name();
    let mut diags = Vec::new();
    match &plan.body {
        PlanBody::Shared(phases) => {
            let mut writes_at: BTreeMap<Addr, Vec<usize>> = BTreeMap::new();
            let mut reads_at: BTreeMap<Addr, Vec<usize>> = BTreeMap::new();
            for (t, phase) in phases.iter().enumerate() {
                let mut reads: BTreeMap<Addr, u64> = BTreeMap::new();
                let mut writes: BTreeMap<Addr, u64> = BTreeMap::new();
                let mut dead = true;
                for e in &phase.procs {
                    if !e.reads.is_empty() || !e.writes.is_empty() || e.local_ops > 0 {
                        dead = false;
                    }
                    if !e.reads.is_empty() && phase.finish.contains(&e.pid) {
                        diags.push(Diagnostic::new(
                            Rule::DeadRead,
                            Location {
                                model,
                                phase: t,
                                pid: Some(e.pid),
                                addr: None,
                            },
                            rules::dead_read(e.reads.len()),
                        ));
                    }
                    for &a in &e.reads {
                        *reads.entry(a).or_insert(0) += 1;
                        reads_at.entry(a).or_default().push(t);
                    }
                    for w in &e.writes {
                        *writes.entry(w.addr).or_insert(0) += 1;
                        writes_at.entry(w.addr).or_default().push(t);
                        if matches!(plan.model, ModelKind::Gsm { .. })
                            && plan.input_cells > 0
                            && w.addr < plan.input_cells
                        {
                            diags.push(Diagnostic::new(
                                Rule::GsmGammaViolation,
                                Location {
                                    model,
                                    phase: t,
                                    pid: Some(e.pid),
                                    addr: Some(w.addr),
                                },
                                rules::gsm_gamma_violation(w.addr, plan.input_cells),
                            ));
                        }
                    }
                }
                if dead && phase.finish.is_empty() {
                    diags.push(Diagnostic::new(
                        Rule::DeadPhase,
                        Location {
                            model,
                            phase: t,
                            pid: None,
                            addr: None,
                        },
                        rules::dead_phase(&phase.label),
                    ));
                }
                for (&addr, &r) in &reads {
                    if let Some(&w) = writes.get(&addr) {
                        diags.push(Diagnostic::new(
                            Rule::SamePhaseReadWrite,
                            Location {
                                model,
                                phase: t,
                                pid: None,
                                addr: Some(addr),
                            },
                            rules::same_phase_read_write(r, w),
                        ));
                    }
                }
                if let Some(bound) = plan.contention_bound {
                    for (&addr, &k) in reads.iter().chain(writes.iter()) {
                        if k <= bound {
                            continue;
                        }
                        diags.push(Diagnostic::new(
                            Rule::ContentionOverBound,
                            Location {
                                model,
                                phase: t,
                                pid: None,
                                addr: Some(addr),
                            },
                            rules::contention_over_bound(k, bound),
                        ));
                        if matches!(plan.model, ModelKind::SQsm { .. }) {
                            diags.push(Diagnostic::new(
                                Rule::SqsmAsymmetry,
                                Location {
                                    model,
                                    phase: t,
                                    pid: None,
                                    addr: Some(addr),
                                },
                                rules::sqsm_asymmetry(k, bound),
                            ));
                        }
                    }
                }
            }
            if let OutputDecl::Region { base, len } = plan.output {
                for (&addr, wts) in &writes_at {
                    if addr >= base && addr < base + len {
                        continue;
                    }
                    let last_write = *wts.iter().max().expect("non-empty by construction");
                    let consumed = reads_at
                        .get(&addr)
                        .is_some_and(|rs| rs.iter().any(|&r| r > last_write));
                    if !consumed {
                        diags.push(Diagnostic::new(
                            Rule::UnconsumedWrite,
                            Location {
                                model,
                                phase: last_write,
                                pid: None,
                                addr: Some(addr),
                            },
                            rules::unconsumed_write(),
                        ));
                    }
                }
            }
        }
        PlanBody::Msg { steps, .. } => {
            let ModelKind::Bsp { p, .. } = plan.model else {
                unreachable!("validate ties Msg bodies to the BSP");
            };
            let finish = plan.finish_phases()?;
            let mut inbox = vec![0u64; p];
            for (t, step) in steps.iter().enumerate() {
                let mut next_inbox = vec![0u64; p];
                let mut declared_sent = vec![0u64; p];
                let mut dead = true;
                for e in &step.comps {
                    if !e.sends.is_empty() || e.local_ops > 0 {
                        dead = false;
                    }
                    declared_sent[e.pid] = e.sends.len() as u64;
                    for s in &e.sends {
                        if finish[s.dest] <= t {
                            diags.push(Diagnostic::new(
                                Rule::BspUndeliverableSend,
                                Location {
                                    model,
                                    phase: t,
                                    pid: Some(e.pid),
                                    addr: None,
                                },
                                rules::bsp_undeliverable_send(
                                    s.tag,
                                    s.value,
                                    s.dest,
                                    finish[s.dest],
                                ),
                            ));
                        } else {
                            next_inbox[s.dest] += 1;
                        }
                    }
                }
                if dead && step.finish.is_empty() && inbox.iter().all(|&c| c == 0) {
                    diags.push(Diagnostic::new(
                        Rule::DeadPhase,
                        Location {
                            model,
                            phase: t,
                            pid: None,
                            addr: None,
                        },
                        rules::dead_phase(&step.label),
                    ));
                }
                if let Some(bound) = plan.contention_bound {
                    for (pid, &sent) in declared_sent.iter().enumerate() {
                        if finish[pid] < t {
                            continue;
                        }
                        let recv = inbox[pid];
                        let h = sent.max(recv);
                        if h > bound {
                            diags.push(Diagnostic::new(
                                Rule::ContentionOverBound,
                                Location {
                                    model,
                                    phase: t,
                                    pid: Some(pid),
                                    addr: None,
                                },
                                rules::h_over_bound(h, sent, recv, bound),
                            ));
                        }
                    }
                }
                inbox = next_inbox;
            }
        }
    }
    diags.extend(crate::symbolic::lint_plan_symbolic(plan)?);
    Ok(diags)
}

/// Checks whether a plan is large enough to feed the requested intra-phase
/// parallelism ([`Parallelism`](parbounds_models::Parallelism)).
///
/// The parallel executor shards processors into contiguous pid ranges,
/// one per host worker, so a plan with fewer processors than requested
/// workers leaves `workers - procs` shards empty in *every* phase: the
/// run is still bit-identical, but the extra threads only pay barrier
/// overhead. Emits a single [`Rule::ParallelUnderfill`] warning anchored
/// at phase 0 when that happens, nothing otherwise.
pub fn lint_parallelism(plan: &PhasePlan, workers: usize) -> Result<Vec<Diagnostic>> {
    plan.validate()?;
    let mut diags = Vec::new();
    if workers > plan.procs {
        diags.push(Diagnostic::new(
            Rule::ParallelUnderfill,
            Location {
                model: plan.model.name(),
                phase: 0,
                pid: None,
                addr: None,
            },
            rules::parallel_underfill(plan.procs, workers),
        ));
    }
    Ok(diags)
}

/// Statics handoff to the plan compiler: decides whether `plan` can take
/// the compiled straight-line fast path (`ir::compile`) and, if not,
/// reports the first offending node as a [`Rule::CompileIneligible`]
/// warning through the shared rule table. An empty report means
/// [`parbounds_ir::compile_plan`] yields a schedule; the warning means the
/// plan still runs, on the checked interpreter.
pub fn lint_compile(plan: &PhasePlan) -> Result<Vec<Diagnostic>> {
    match compile_plan(plan)? {
        CompileOutcome::Compiled(_) => Ok(Vec::new()),
        CompileOutcome::Ineligible(why) => Ok(vec![Diagnostic::new(
            Rule::CompileIneligible,
            Location {
                model: plan.model.name(),
                phase: why.phase.unwrap_or(0),
                pid: why.pid,
                addr: why.addr,
            },
            rules::compile_ineligible(&why.node, &why.reason),
        )]),
    }
}

/// Everything the static analyzer can say about a plan, bundled.
#[derive(Debug)]
pub struct StaticAnalysis {
    /// The predicted cost ledger.
    pub predicted: CostLedger,
    /// The race-freedom certificate (or its refusal).
    pub certificate: WriteCertificate,
    /// Static lint findings.
    pub diagnostics: Vec<Diagnostic>,
}

/// Runs all three static passes over a plan.
pub fn analyze_plan(plan: &PhasePlan) -> Result<StaticAnalysis> {
    Ok(StaticAnalysis {
        predicted: predict_ledger(plan)?,
        certificate: certify_writes(plan)?,
        diagnostics: lint_plan(plan)?,
    })
}

/// The static prediction next to the measured execution of the same plan.
#[derive(Debug)]
pub struct CrossValidation {
    /// Ledger derived without executing.
    pub predicted: CostLedger,
    /// Ledger the simulator measured.
    pub measured: CostLedger,
    /// The executed plan's declared output.
    pub output: Vec<Word>,
}

impl CrossValidation {
    /// True when prediction and measurement agree cell for cell.
    pub fn matches(&self) -> bool {
        self.predicted == self.measured
    }
}

/// Predicts the ledger, executes the plan on `input`, and returns both.
pub fn cross_validate(plan: &PhasePlan, input: &[Word]) -> Result<CrossValidation> {
    let predicted = predict_ledger(plan)?;
    let run = execute_plan(plan, input)?;
    Ok(CrossValidation {
        predicted,
        measured: run.ledger,
        output: run.output,
    })
}

/// The Section 8 families lifted onto the IR and cross-validated by
/// `parbounds analyze --static --all` (the `racy-plan` fixture is
/// reachable via `--family` but deliberately excluded here).
pub const IR_FAMILIES: [&str; 7] = [
    "or-write-tree",
    "parity-read-tree",
    "broadcast",
    "prefix-sweep",
    "scatter-gather",
    "bsp-reduce",
    "bsp-prefix-scan",
];

/// Gap used by the standard static suite (matches the dynamic suite).
pub const SUITE_G: u64 = 8;
/// BSP width used by the standard static suite.
pub const SUITE_BSP_P: usize = 16;
/// BSP latency used by the standard static suite.
pub const SUITE_BSP_L: u64 = 8 * SUITE_G;

/// One family's static report: prediction, measurement, certificate,
/// lints and (where the paper gives one) the closed-form anchor.
#[derive(Debug)]
pub struct StaticFamilyReport {
    /// Family name.
    pub family: &'static str,
    /// Model name ("QSM", "s-QSM", "BSP", "GSM").
    pub model: &'static str,
    /// Number of phases / supersteps in the plan.
    pub phases: usize,
    /// Predicted total time.
    pub predicted_time: u64,
    /// Measured total time.
    pub measured_time: u64,
    /// Whether predicted and measured ledgers agree cell for cell.
    pub matches: bool,
    /// The write-disjointness certificate.
    pub certificate: WriteCertificate,
    /// Static lint findings.
    pub diagnostics: Vec<Diagnostic>,
    /// Closed-form cost from the paper's analysis, when exact enough to
    /// anchor against (§8 OR/Parity trees; the broadcast upper bound).
    pub formula: Option<u64>,
}

impl StaticFamilyReport {
    /// Clean = ledgers agree, certificate granted, no error-severity
    /// findings.
    pub fn clean(&self) -> bool {
        self.matches
            && self.certificate.is_race_free()
            && self
                .diagnostics
                .iter()
                .all(|d| d.severity != Severity::Error)
    }
}

/// Builds the plan (and a matching input) for one named [`IR_FAMILIES`]
/// entry at problem size `n` (floored to 8). This is the same registry
/// [`analyze_static_family`] analyzes; it is public so callers (e.g. the
/// CLI) can run additional plan-level lints such as [`lint_parallelism`]
/// without re-deriving the Section 8 schedules.
pub fn ir_family_plan(
    family: &str,
    n: usize,
    seed: u64,
) -> Result<(&'static str, PhasePlan, Vec<Word>)> {
    let n = n.max(8);
    let (name, (plan, input)) = match family {
        "or-write-tree" => ("or-write-tree", or_write_tree_plan(n, SUITE_G)),
        "or-write-tree-padded" => (
            "or-write-tree-padded",
            or_write_tree_padded_plan(n, SUITE_G),
        ),
        "parity-read-tree" => ("parity-read-tree", parity_read_tree_plan(n, SUITE_G, seed)),
        "broadcast" => ("broadcast", broadcast_plan(n, SUITE_G)),
        "prefix-sweep" => ("prefix-sweep", prefix_sweep_plan(n, SUITE_G, seed)),
        "scatter-gather" => ("scatter-gather", scatter_gather_plan(n, SUITE_G, seed)),
        "bsp-reduce" => (
            "bsp-reduce",
            bsp_reduce_plan(SUITE_BSP_P, SUITE_G, SUITE_BSP_L, n, seed),
        ),
        "bsp-prefix-scan" => (
            "bsp-prefix-scan",
            bsp_prefix_scan_plan(SUITE_BSP_P, SUITE_G, SUITE_BSP_L, n, seed),
        ),
        "racy-plan" => ("racy-plan", racy_plan()),
        other => {
            return Err(ModelError::BadConfig(format!(
                "unknown static analysis family '{other}' (see `parbounds analyze --list`)"
            )))
        }
    };
    Ok((name, plan, input))
}

/// Builds, statically analyzes and cross-validates one named family at
/// problem size `n` (floored to 8).
pub fn analyze_static_family(family: &str, n: usize, seed: u64) -> Result<StaticFamilyReport> {
    let n = n.max(8);
    let (name, plan, input) = ir_family_plan(family, n, seed)?;
    let cv = cross_validate(&plan, &input)?;
    let certificate = certify_writes(&plan)?;
    let diagnostics = lint_plan(&plan)?;
    let formula = match name {
        "or-write-tree" => Some(or_write_tree_cost_max(
            n,
            or_default_fanin(SUITE_G),
            SUITE_G,
        )),
        "parity-read-tree" => Some(tree_reduce_cost(n, 2, SUITE_G)),
        "broadcast" => Some(broadcast_cost_max(
            n,
            (SUITE_G as usize + 1).max(2),
            SUITE_G,
        )),
        _ => None,
    };
    Ok(StaticFamilyReport {
        family: name,
        model: plan.model.name(),
        phases: plan.num_phases(),
        predicted_time: cv.predicted.total_time(),
        measured_time: cv.measured.total_time(),
        matches: cv.matches(),
        certificate,
        diagnostics,
        formula,
    })
}

/// The full static suite over [`IR_FAMILIES`].
#[derive(Debug)]
pub struct StaticReport {
    /// One report per family, in [`IR_FAMILIES`] order.
    pub families: Vec<StaticFamilyReport>,
}

impl StaticReport {
    /// True when every family is [`StaticFamilyReport::clean`].
    pub fn clean(&self) -> bool {
        self.families.iter().all(StaticFamilyReport::clean)
    }

    /// Text rendering, one line per family plus finding details.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "static plan analysis (predicted ledger \u{b7} write-set certificate \u{b7} plan lints)\n",
        );
        out.push_str(&"-".repeat(96));
        out.push('\n');
        for f in &self.families {
            let marker = if f.matches { "exact" } else { "DIVERGES" };
            let cert = match &f.certificate {
                WriteCertificate::RaceFree {
                    common_value_cells: 0,
                    ..
                } => "disjoint write sets".to_string(),
                WriteCertificate::RaceFree {
                    common_value_cells, ..
                } => format!("race-free ({common_value_cells} common-write cell(s))"),
                WriteCertificate::Racy { witnesses } => {
                    format!("RACY ({} witness(es))", witnesses.len())
                }
            };
            out.push_str(&format!(
                "{:<17} {:<5} phases: {:<3} predicted: {:<7} measured: {:<7} [{marker:<8}] race: {:<34} lint: {}\n",
                f.family,
                f.model,
                f.phases,
                f.predicted_time,
                f.measured_time,
                cert,
                f.diagnostics.len(),
            ));
            for d in &f.diagnostics {
                out.push_str(&format!("    {d}\n"));
            }
            if let WriteCertificate::Racy { witnesses } = &f.certificate {
                for w in witnesses {
                    out.push_str(&format!(
                        "    witness: phase {} cell {} written by pids {:?}\n",
                        w.phase, w.addr, w.pids
                    ));
                }
            }
        }
        out.push_str(if self.clean() {
            "result: clean\n"
        } else {
            "result: NOT CLEAN\n"
        });
        out
    }
}

/// Runs [`analyze_static_family`] for every entry of [`IR_FAMILIES`].
pub fn analyze_static_all(n: usize, seed: u64) -> Result<StaticReport> {
    let families = IR_FAMILIES
        .iter()
        .map(|f| analyze_static_family(f, n, seed))
        .collect::<Result<Vec<_>>>()?;
    Ok(StaticReport { families })
}

#[cfg(test)]
mod tests {
    use super::*;
    use parbounds_ir::{CompStep, Guard, MsgStep, ProcPhase, SharedPhase, Update};

    fn shared_fixture(model: ModelKind, phases: Vec<SharedPhase>) -> PhasePlan {
        PhasePlan {
            family: "fixture".into(),
            model,
            procs: 2,
            input_cells: 0,
            contention_bound: None,
            output: OutputDecl::Region { base: 10, len: 1 },
            body: PlanBody::Shared(phases),
        }
    }

    fn bsp_fixture(steps: Vec<MsgStep>, bound: Option<u64>) -> PhasePlan {
        PhasePlan {
            family: "fixture".into(),
            model: ModelKind::Bsp { p: 2, g: 2, l: 4 },
            procs: 2,
            input_cells: 0,
            contention_bound: bound,
            output: OutputDecl::ComponentState,
            body: PlanBody::Msg {
                init: parbounds_ir::InitRule::Const(0),
                steps,
            },
        }
    }

    #[test]
    fn gsm_prediction_matches_hand_computed_costs() {
        let mut read = SharedPhase::new("read");
        read.procs
            .push(ProcPhase::idle(0).update(Update::Load).read(0));
        read.procs
            .push(ProcPhase::idle(1).update(Update::Load).read(1));
        let mut write = SharedPhase::new("write");
        write
            .procs
            .push(ProcPhase::idle(0).write(10, ValueRule::Reg(0)));
        write
            .procs
            .push(ProcPhase::idle(1).write(11, ValueRule::Reg(0)));
        write.finish = vec![0, 1];
        let mut plan = shared_fixture(
            ModelKind::Gsm {
                alpha: 4,
                beta: 4,
                gamma: 4,
            },
            vec![read, write],
        );
        plan.output = OutputDecl::Region { base: 10, len: 2 };
        let ledger = predict_ledger(&plan).unwrap();
        // μ = 4, one big-step per phase: m_rw = 1 ≤ α, κ = 1 ≤ β.
        let want = PhaseCost {
            m_op: 0,
            m_rw: 1,
            kappa: 1,
            cost: 4,
        };
        assert_eq!(ledger.phases(), &[want, want]);
    }

    #[test]
    fn certifier_grants_common_writes_and_refuses_racy_plans() {
        let (or_plan, _) = or_write_tree_plan(33, 8);
        match certify_writes(&or_plan).unwrap() {
            WriteCertificate::RaceFree {
                common_value_cells, ..
            } => assert!(common_value_cells > 0, "OR tree relies on common writes"),
            other => panic!("OR tree should certify, got {other:?}"),
        }

        let (racy, _) = racy_plan();
        match certify_writes(&racy).unwrap() {
            WriteCertificate::Racy { witnesses } => {
                assert_eq!(witnesses.len(), 1);
                assert_eq!(witnesses[0].addr, 0);
                assert_eq!(witnesses[0].pids, vec![0, 1, 2, 3]);
            }
            other => panic!("racy plan must be refused, got {other:?}"),
        }
    }

    #[test]
    fn compile_lint_clears_every_suite_family() {
        for family in IR_FAMILIES {
            let (_, plan, _) = ir_family_plan(family, 64, 42).unwrap();
            let diags = lint_compile(&plan).unwrap();
            assert!(
                diags.is_empty(),
                "{family} should take the compiled path, got {diags:?}"
            );
        }
    }

    #[test]
    fn compile_lint_flags_racy_plan_as_ineligible() {
        let (racy, _) = racy_plan();
        let diags = lint_compile(&racy).unwrap();
        assert_eq!(diags.len(), 1);
        let d = &diags[0];
        assert_eq!(d.rule, Rule::CompileIneligible);
        assert_eq!(d.rule.name(), "compile-ineligible");
        assert_eq!(d.severity, Severity::Warning);
        assert_eq!(d.location.addr, Some(0));
        assert!(
            d.message.contains("blocks plan compilation"),
            "shared rule table must phrase the finding: {}",
            d.message
        );
    }

    #[test]
    fn lints_flag_dead_phase_dead_read_and_unconsumed_write() {
        let mut p0 = SharedPhase::new("reads");
        p0.procs.push(ProcPhase::idle(0).read(0));
        p0.procs.push(ProcPhase::idle(1).read(1));
        let dead = SharedPhase::new("nothing happens");
        let mut last = SharedPhase::new("writes");
        last.procs
            .push(ProcPhase::idle(0).write(10, ValueRule::Const(1)));
        last.procs
            .push(ProcPhase::idle(1).read(5).write(11, ValueRule::Const(2)));
        last.finish = vec![0, 1];
        let plan = shared_fixture(ModelKind::Qsm { g: 4 }, vec![p0, dead, last]);
        let diags = lint_plan(&plan).unwrap();
        let rules_hit: Vec<Rule> = diags.iter().map(|d| d.rule).collect();
        assert!(rules_hit.contains(&Rule::DeadPhase));
        assert!(rules_hit.contains(&Rule::DeadRead));
        // Cell 11 is outside the declared output [10, 11) and never read.
        assert!(rules_hit.contains(&Rule::UnconsumedWrite));
        assert_eq!(diags.len(), 3);
    }

    #[test]
    fn parallelism_lint_flags_undersized_plans_only() {
        let (plan, _) = or_write_tree_plan(16, 2);
        assert!(lint_parallelism(&plan, 1).unwrap().is_empty());
        assert!(lint_parallelism(&plan, plan.procs).unwrap().is_empty());
        let diags = lint_parallelism(&plan, plan.procs + 3).unwrap();
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, Rule::ParallelUnderfill);
        assert_eq!(diags[0].severity, Severity::Warning);
        assert!(
            diags[0].message.contains("3 shard(s) stay empty"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn lints_flag_same_phase_conflict_and_sqsm_contention() {
        let mut clash = SharedPhase::new("clash");
        clash.procs.push(ProcPhase::idle(0).read(3).read(0));
        clash
            .procs
            .push(ProcPhase::idle(1).read(0).write(3, ValueRule::Const(1)));
        let mut last = SharedPhase::new("out");
        last.procs
            .push(ProcPhase::idle(0).write(10, ValueRule::Const(0)));
        last.finish = vec![0, 1];
        let mut plan = shared_fixture(ModelKind::SQsm { g: 4 }, vec![clash, last]);
        plan.contention_bound = Some(1);
        let diags = lint_plan(&plan).unwrap();
        let errors: Vec<Rule> = diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .map(|d| d.rule)
            .collect();
        assert!(errors.contains(&Rule::SamePhaseReadWrite), "{diags:?}");
        // Cell 0 has two concurrent readers against a declared bound of 1.
        assert!(errors.contains(&Rule::ContentionOverBound), "{diags:?}");
        assert!(
            diags.iter().any(|d| d.rule == Rule::SqsmAsymmetry),
            "{diags:?}"
        );
    }

    #[test]
    fn lints_flag_gsm_gamma_violation() {
        let mut phase = SharedPhase::new("clobber input");
        phase
            .procs
            .push(ProcPhase::idle(0).write(1, ValueRule::Const(9)));
        phase
            .procs
            .push(ProcPhase::idle(1).write(10, ValueRule::Const(9)));
        phase.finish = vec![0, 1];
        let mut plan = shared_fixture(
            ModelKind::Gsm {
                alpha: 4,
                beta: 4,
                gamma: 4,
            },
            vec![phase],
        );
        plan.input_cells = 2;
        let diags = lint_plan(&plan).unwrap();
        assert!(diags.iter().any(|d| d.rule == Rule::GsmGammaViolation
            && d.location.addr == Some(1)
            && d.severity == Severity::Error));
    }

    #[test]
    fn lints_flag_undeliverable_sends_and_h_over_bound() {
        let mut s0 = MsgStep::new("send into the void");
        s0.comps
            .push(CompStep::idle(0).send(1, 0, ValueRule::Const(1)).send(
                1,
                1,
                ValueRule::Const(2),
            ));
        s0.comps.push(CompStep::idle(1));
        s0.finish = vec![1];
        let mut s1 = MsgStep::new("wrap up");
        s1.comps.push(CompStep::idle(0).update(Update::Keep));
        s1.finish = vec![0];
        let plan = bsp_fixture(vec![s0, s1], Some(1));
        let diags = lint_plan(&plan).unwrap();
        let undeliverable = diags
            .iter()
            .filter(|d| d.rule == Rule::BspUndeliverableSend)
            .count();
        assert_eq!(undeliverable, 2, "{diags:?}");
        // Component 0 sends 2 messages against a declared h-bound of 1.
        assert!(
            diags
                .iter()
                .any(|d| d.rule == Rule::ContentionOverBound && d.location.pid == Some(0)),
            "{diags:?}"
        );
    }

    #[test]
    fn static_suite_is_clean_and_racy_fixture_is_not() {
        let report = analyze_static_all(48, 7).unwrap();
        assert_eq!(report.families.len(), IR_FAMILIES.len());
        assert!(report.clean(), "{}", report.render());
        let rendered = report.render();
        assert!(rendered.contains("result: clean"));
        assert!(rendered.contains("or-write-tree"));

        let racy = analyze_static_family("racy-plan", 48, 7).unwrap();
        assert!(!racy.clean());
        assert!(racy.matches, "even a racy plan's cost is predictable");
        assert!(!racy.certificate.is_race_free());

        assert!(analyze_static_family("no-such-family", 48, 7).is_err());
    }

    #[test]
    fn guard_annotation_does_not_change_the_saturating_prediction() {
        // Two plans differing only in guards predict the same ledger.
        let mut a0 = SharedPhase::new("write");
        a0.procs
            .push(ProcPhase::idle(0).write(10, ValueRule::Const(1)));
        a0.procs.push(
            ProcPhase::idle(1)
                .guard(Guard::NonZero)
                .write(10, ValueRule::Const(1)),
        );
        a0.finish = vec![0, 1];
        let guarded = shared_fixture(ModelKind::Qsm { g: 4 }, vec![a0.clone()]);
        let mut unguarded = guarded.clone();
        if let PlanBody::Shared(ref mut ph) = unguarded.body {
            for e in &mut ph[0].procs {
                *e = e.clone().guard(Guard::Always);
            }
        }
        assert_eq!(
            predict_ledger(&guarded).unwrap(),
            predict_ledger(&unguarded).unwrap()
        );
    }
}
