//! Every cell of Table 1, as a typed, evaluable bound.
//!
//! The four sub-tables of the paper are flattened into one registry of
//! [`Bound`] entries keyed by `(Problem, Model, Mode, Metric)`. Each entry
//! carries the formula as text (matching the paper's table), a `f64`
//! evaluator over concrete [`Params`], the tightness flag (a `Θ` entry in
//! the paper means the bound is matched by an upper bound), and the side
//! conditions the paper attaches (processor-count regimes etc.).

use crate::math::{at_least_1, lg, lglg, log_star, log_star_diff};

/// The problems of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Problem {
    /// Linear Approximate Compaction (and, per Theorem 6.1, Load Balancing
    /// and Padded Sort).
    Lac,
    /// The OR function.
    Or,
    /// Parity (and, by size-preserving reductions, list ranking & sorting).
    Parity,
}

/// The machine models of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Model {
    /// QSM(g).
    Qsm,
    /// s-QSM(g).
    SQsm,
    /// BSP(p, g, L).
    Bsp,
}

/// Deterministic or randomized algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Deterministic lower bound.
    Deterministic,
    /// Randomized lower bound (success probability ≥ 1/2 + ε).
    Randomized,
}

/// Time (sub-tables 1–3) or rounds (sub-table 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Metric {
    /// Total model time.
    Time,
    /// Number of rounds of a p-processor algorithm (Section 2.3).
    Rounds,
}

/// Is the bound known to be tight (a `Θ` entry in the paper)?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tightness {
    /// Lower bound only (`Ω`).
    LowerOnly,
    /// Matched by an upper bound (`Θ`).
    Tight,
}

/// Concrete machine/input parameters a formula is evaluated at.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Input size.
    pub n: f64,
    /// Gap parameter.
    pub g: f64,
    /// BSP latency (`L ≥ g`); ignored by the shared-memory models.
    pub l: f64,
    /// Number of processors.
    pub p: f64,
}

impl Params {
    /// Shared-memory parameters (p defaults to n — "unlimited processors").
    pub fn qsm(n: f64, g: f64) -> Self {
        Params { n, g, l: g, p: n }
    }

    /// BSP parameters.
    pub fn bsp(n: f64, g: f64, l: f64, p: f64) -> Self {
        Params { n, g, l, p }
    }

    /// With an explicit processor count.
    pub fn with_p(mut self, p: f64) -> Self {
        self.p = p;
        self
    }

    /// `q = min{n, p}` — the BSP tables' effective size.
    pub fn q(&self) -> f64 {
        self.n.min(self.p)
    }
}

/// One cell of Table 1.
#[derive(Clone, Copy)]
pub struct Bound {
    /// Which problem.
    pub problem: Problem,
    /// Which model.
    pub model: Model,
    /// Deterministic or randomized.
    pub mode: Mode,
    /// Time or rounds.
    pub metric: Metric,
    /// `Ω` or `Θ`.
    pub tightness: Tightness,
    /// The formula as printed in the paper's table.
    pub expr: &'static str,
    /// Side condition attached by the paper (empty if none).
    pub condition: &'static str,
    /// Evaluator (order-of-growth proxy; constants are 1).
    pub eval: fn(&Params) -> f64,
}

impl std::fmt::Debug for Bound {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Bound")
            .field("problem", &self.problem)
            .field("model", &self.model)
            .field("mode", &self.mode)
            .field("metric", &self.metric)
            .field("tightness", &self.tightness)
            .field("expr", &self.expr)
            .finish()
    }
}

/// `L/g`, floored at 2 so `log(L/g)` stays positive.
fn l_over_g(pr: &Params) -> f64 {
    (pr.l / pr.g).max(2.0)
}

/// The full registry: all 24 cells of the four sub-tables.
/// Within a `(problem, model, mode, metric)` key the paper sometimes states
/// two incomparable bounds (e.g. randomized LAC on QSM); both appear, and
/// [`lower_bounds`] returns every matching entry.
pub static TABLE1: &[Bound] = &[
    // ----- Sub-table 1: QSM time (unlimited processors unless noted) -----
    Bound {
        problem: Problem::Lac,
        model: Model::Qsm,
        mode: Mode::Deterministic,
        metric: Metric::Time,
        tightness: Tightness::LowerOnly,
        expr: "g·sqrt(log n / (log log n + log g))",
        condition: "",
        eval: |pr| pr.g * (lg(pr.n) / at_least_1(lglg(pr.n) + lg(pr.g))).sqrt(),
    },
    Bound {
        problem: Problem::Lac,
        model: Model::Qsm,
        mode: Mode::Randomized,
        metric: Metric::Time,
        tightness: Tightness::LowerOnly,
        expr: "g·log log n / log g",
        condition: "",
        eval: |pr| pr.g * lglg(pr.n) / lg(pr.g),
    },
    Bound {
        problem: Problem::Lac,
        model: Model::Qsm,
        mode: Mode::Randomized,
        metric: Metric::Time,
        tightness: Tightness::LowerOnly,
        expr: "g·log* n",
        condition: "with n processors",
        eval: |pr| pr.g * log_star(pr.n),
    },
    Bound {
        problem: Problem::Or,
        model: Model::Qsm,
        mode: Mode::Deterministic,
        metric: Metric::Time,
        tightness: Tightness::LowerOnly,
        expr: "g·log n / (log log n + log g)",
        condition: "",
        eval: |pr| pr.g * lg(pr.n) / at_least_1(lglg(pr.n) + lg(pr.g)),
    },
    Bound {
        problem: Problem::Or,
        model: Model::Qsm,
        mode: Mode::Randomized,
        metric: Metric::Time,
        tightness: Tightness::LowerOnly,
        expr: "g·(log* n − log* g)",
        condition: "",
        eval: |pr| pr.g * log_star_diff(pr.n, pr.g),
    },
    Bound {
        problem: Problem::Parity,
        model: Model::Qsm,
        mode: Mode::Deterministic,
        metric: Metric::Time,
        tightness: Tightness::LowerOnly,
        expr: "g·log n / log g",
        condition: "Θ with unit-time concurrent reads",
        eval: |pr| pr.g * lg(pr.n) / lg(pr.g),
    },
    Bound {
        problem: Problem::Parity,
        model: Model::Qsm,
        mode: Mode::Randomized,
        metric: Metric::Time,
        tightness: Tightness::LowerOnly,
        expr: "g·log n / (log log n + min(log log g, log log p))",
        condition: "Ω(g·log n/log log n) if p polynomial in n",
        eval: |pr| pr.g * lg(pr.n) / at_least_1(lglg(pr.n) + lglg(pr.g).min(lglg(pr.p))),
    },
    // ----- Sub-table 2: s-QSM time -----
    Bound {
        problem: Problem::Lac,
        model: Model::SQsm,
        mode: Mode::Deterministic,
        metric: Metric::Time,
        tightness: Tightness::LowerOnly,
        expr: "g·sqrt(log n / log log n)",
        condition: "",
        eval: |pr| pr.g * (lg(pr.n) / lglg(pr.n)).sqrt(),
    },
    Bound {
        problem: Problem::Lac,
        model: Model::SQsm,
        mode: Mode::Randomized,
        metric: Metric::Time,
        tightness: Tightness::LowerOnly,
        expr: "g·log log n",
        condition: "",
        eval: |pr| pr.g * lglg(pr.n),
    },
    Bound {
        problem: Problem::Or,
        model: Model::SQsm,
        mode: Mode::Deterministic,
        metric: Metric::Time,
        tightness: Tightness::LowerOnly,
        expr: "g·log n / log log n",
        condition: "",
        eval: |pr| pr.g * lg(pr.n) / lglg(pr.n),
    },
    Bound {
        problem: Problem::Or,
        model: Model::SQsm,
        mode: Mode::Randomized,
        metric: Metric::Time,
        tightness: Tightness::LowerOnly,
        expr: "g·log* n",
        condition: "",
        eval: |pr| pr.g * log_star(pr.n),
    },
    Bound {
        problem: Problem::Parity,
        model: Model::SQsm,
        mode: Mode::Deterministic,
        metric: Metric::Time,
        tightness: Tightness::Tight,
        expr: "g·log n",
        condition: "",
        eval: |pr| pr.g * lg(pr.n),
    },
    Bound {
        problem: Problem::Parity,
        model: Model::SQsm,
        mode: Mode::Randomized,
        metric: Metric::Time,
        tightness: Tightness::LowerOnly,
        expr: "g·log n / log log n",
        condition: "",
        eval: |pr| pr.g * lg(pr.n) / lglg(pr.n),
    },
    // ----- Sub-table 3: BSP time (q = min{n, p}) -----
    Bound {
        problem: Problem::Lac,
        model: Model::Bsp,
        mode: Mode::Deterministic,
        metric: Metric::Time,
        tightness: Tightness::LowerOnly,
        expr: "L·sqrt(log q / (log log q + log(L/g)))",
        condition: "",
        eval: |pr| pr.l * (lg(pr.q()) / at_least_1(lglg(pr.q()) + lg(l_over_g(pr)))).sqrt(),
    },
    Bound {
        problem: Problem::Lac,
        model: Model::Bsp,
        mode: Mode::Randomized,
        metric: Metric::Time,
        tightness: Tightness::LowerOnly,
        expr: "L·log log n / log(L/g)",
        condition: "p = Ω(n/(log n)^{1/8−ε})",
        eval: |pr| pr.l * lglg(pr.n) / lg(l_over_g(pr)),
    },
    Bound {
        problem: Problem::Or,
        model: Model::Bsp,
        mode: Mode::Deterministic,
        metric: Metric::Time,
        tightness: Tightness::LowerOnly,
        expr: "L·log q / (log log q + log(L/g))",
        condition: "",
        eval: |pr| pr.l * lg(pr.q()) / at_least_1(lglg(pr.q()) + lg(l_over_g(pr))),
    },
    Bound {
        problem: Problem::Or,
        model: Model::Bsp,
        mode: Mode::Randomized,
        metric: Metric::Time,
        tightness: Tightness::LowerOnly,
        expr: "L·(log* q − log*(L/g))",
        condition: "",
        eval: |pr| pr.l * log_star_diff(pr.q(), l_over_g(pr)),
    },
    Bound {
        problem: Problem::Parity,
        model: Model::Bsp,
        mode: Mode::Deterministic,
        metric: Metric::Time,
        tightness: Tightness::Tight,
        expr: "L·log q / log(L/g)",
        condition: "",
        eval: |pr| pr.l * lg(pr.q()) / lg(l_over_g(pr)),
    },
    Bound {
        problem: Problem::Parity,
        model: Model::Bsp,
        mode: Mode::Randomized,
        metric: Metric::Time,
        tightness: Tightness::LowerOnly,
        expr: "L·sqrt(log q / (log log q + log(L/g)))",
        condition: "",
        eval: |pr| pr.l * (lg(pr.q()) / at_least_1(lglg(pr.q()) + lg(l_over_g(pr)))).sqrt(),
    },
    // ----- Sub-table 4: rounds for p-processor algorithms (p ≤ n) -----
    // The paper's rounds rows hold for randomized algorithms; we register
    // them under Randomized (they imply the deterministic case a fortiori).
    Bound {
        problem: Problem::Lac,
        model: Model::Qsm,
        mode: Mode::Randomized,
        metric: Metric::Rounds,
        tightness: Tightness::LowerOnly,
        expr: "(log* n − log*(n/p)) + sqrt(log n / log(gn/p))",
        condition: "",
        eval: |pr| {
            log_star_diff(pr.n, pr.n / pr.p) + (lg(pr.n) / lg((pr.g * pr.n / pr.p).max(2.0))).sqrt()
        },
    },
    Bound {
        problem: Problem::Lac,
        model: Model::SQsm,
        mode: Mode::Randomized,
        metric: Metric::Rounds,
        tightness: Tightness::LowerOnly,
        expr: "sqrt(log n / log(n/p))",
        condition: "",
        eval: |pr| (lg(pr.n) / lg((pr.n / pr.p).max(2.0))).sqrt(),
    },
    Bound {
        problem: Problem::Lac,
        model: Model::Bsp,
        mode: Mode::Randomized,
        metric: Metric::Rounds,
        tightness: Tightness::LowerOnly,
        expr: "sqrt(log n / log(n/p))",
        condition: "p = Ω(n/(log n)^{1/8−ε})",
        eval: |pr| (lg(pr.n) / lg((pr.n / pr.p).max(2.0))).sqrt(),
    },
    Bound {
        problem: Problem::Or,
        model: Model::Qsm,
        mode: Mode::Randomized,
        metric: Metric::Rounds,
        tightness: Tightness::Tight,
        expr: "log n / log(ng/p)",
        condition: "",
        eval: |pr| lg(pr.n) / lg((pr.n * pr.g / pr.p).max(2.0)),
    },
    Bound {
        problem: Problem::Or,
        model: Model::SQsm,
        mode: Mode::Randomized,
        metric: Metric::Rounds,
        tightness: Tightness::Tight,
        expr: "log n / log(n/p)",
        condition: "",
        eval: |pr| lg(pr.n) / lg((pr.n / pr.p).max(2.0)),
    },
    Bound {
        problem: Problem::Or,
        model: Model::Bsp,
        mode: Mode::Randomized,
        metric: Metric::Rounds,
        tightness: Tightness::Tight,
        expr: "log n / log(n/p)",
        condition: "",
        eval: |pr| lg(pr.n) / lg((pr.n / pr.p).max(2.0)),
    },
    Bound {
        problem: Problem::Parity,
        model: Model::Qsm,
        mode: Mode::Randomized,
        metric: Metric::Rounds,
        tightness: Tightness::LowerOnly,
        expr: "log n / (log(n/p) + min(log g, log log p))",
        condition: "",
        eval: |pr| lg(pr.n) / at_least_1(lg((pr.n / pr.p).max(2.0)) + lg(pr.g).min(lglg(pr.p))),
    },
    Bound {
        problem: Problem::Parity,
        model: Model::SQsm,
        mode: Mode::Randomized,
        metric: Metric::Rounds,
        tightness: Tightness::Tight,
        expr: "log n / log(n/p)",
        condition: "",
        eval: |pr| lg(pr.n) / lg((pr.n / pr.p).max(2.0)),
    },
    Bound {
        problem: Problem::Parity,
        model: Model::Bsp,
        mode: Mode::Randomized,
        metric: Metric::Rounds,
        tightness: Tightness::Tight,
        expr: "log n / log(n/p)",
        condition: "",
        eval: |pr| lg(pr.n) / lg((pr.n / pr.p).max(2.0)),
    },
];

/// All lower-bound entries for a `(problem, model, mode, metric)` key (the
/// paper sometimes gives two incomparable bounds for one cell).
pub fn lower_bounds(
    problem: Problem,
    model: Model,
    mode: Mode,
    metric: Metric,
) -> Vec<&'static Bound> {
    TABLE1
        .iter()
        .filter(|b| {
            b.problem == problem && b.model == model && b.mode == mode && b.metric == metric
        })
        .collect()
}

/// The strongest (largest-valued) lower bound for the key at `params`.
pub fn best_lower_bound(
    problem: Problem,
    model: Model,
    mode: Mode,
    metric: Metric,
    params: &Params,
) -> Option<f64> {
    lower_bounds(problem, model, mode, metric)
        .into_iter()
        .map(|b| (b.eval)(params))
        .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: Params = Params {
        n: 1048576.0,
        g: 8.0,
        l: 64.0,
        p: 4096.0,
    };

    #[test]
    fn registry_covers_all_sub_tables() {
        // Sub-tables 1-3: 3 problems x det/rand, with the two extra
        // double-entry rows (LAC rand on QSM). Sub-table 4: 3 problems x 3
        // models.
        let time_cells = TABLE1.iter().filter(|b| b.metric == Metric::Time).count();
        let round_cells = TABLE1.iter().filter(|b| b.metric == Metric::Rounds).count();
        assert_eq!(time_cells, 19); // 18 cells + 1 double entry
        assert_eq!(round_cells, 9);
        for problem in [Problem::Lac, Problem::Or, Problem::Parity] {
            for model in [Model::Qsm, Model::SQsm, Model::Bsp] {
                for mode in [Mode::Deterministic, Mode::Randomized] {
                    assert!(
                        !lower_bounds(problem, model, mode, Metric::Time).is_empty()
                            || mode == Mode::Deterministic,
                        "{problem:?} {model:?} {mode:?} missing"
                    );
                }
                assert!(
                    !lower_bounds(problem, model, Mode::Randomized, Metric::Rounds).is_empty(),
                    "{problem:?} {model:?} rounds missing"
                );
            }
        }
    }

    #[test]
    fn every_bound_is_positive_and_finite_across_a_sweep() {
        for b in TABLE1 {
            for n in [16.0, 1024.0, 1e6, 1e9] {
                for g in [1.0, 4.0, 64.0] {
                    for p in [4.0, 256.0, n] {
                        let pr = Params {
                            n,
                            g,
                            l: 8.0 * g,
                            p,
                        };
                        let v = (b.eval)(&pr);
                        assert!(
                            v.is_finite() && v > 0.0,
                            "{:?} at n={n} g={g} p={p} gave {v}",
                            b
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn deterministic_parity_dominates_or_dominates_lac_shape() {
        // On the s-QSM: parity Θ(g log n) > OR Ω(g log n/loglog n) >
        // LAC Ω(g sqrt(log n/loglog n)) for large n.
        let parity = best_lower_bound(
            Problem::Parity,
            Model::SQsm,
            Mode::Deterministic,
            Metric::Time,
            &P,
        )
        .unwrap();
        let or = best_lower_bound(
            Problem::Or,
            Model::SQsm,
            Mode::Deterministic,
            Metric::Time,
            &P,
        )
        .unwrap();
        let lac = best_lower_bound(
            Problem::Lac,
            Model::SQsm,
            Mode::Deterministic,
            Metric::Time,
            &P,
        )
        .unwrap();
        assert!(parity > or && or > lac, "parity={parity} or={or} lac={lac}");
    }

    #[test]
    fn randomized_bounds_are_below_deterministic_for_or() {
        // Randomized OR is log*; deterministic is log/loglog. The gap is
        // asymptotic — at n = 2^20 the two are still close — so test at a
        // size where the order has separated.
        let pr = Params { n: 1e30, ..P };
        for model in [Model::Qsm, Model::SQsm, Model::Bsp] {
            let det = best_lower_bound(Problem::Or, model, Mode::Deterministic, Metric::Time, &pr)
                .unwrap();
            let rand =
                best_lower_bound(Problem::Or, model, Mode::Randomized, Metric::Time, &pr).unwrap();
            assert!(rand < det, "{model:?}: rand={rand} det={det}");
        }
    }

    #[test]
    fn qsm_or_rounds_beat_sqsm_or_rounds() {
        // log n/log(gn/p) <= log n/log(n/p): the QSM's raw-contention rounds
        // advantage.
        let q = best_lower_bound(
            Problem::Or,
            Model::Qsm,
            Mode::Randomized,
            Metric::Rounds,
            &P,
        )
        .unwrap();
        let s = best_lower_bound(
            Problem::Or,
            Model::SQsm,
            Mode::Randomized,
            Metric::Rounds,
            &P,
        )
        .unwrap();
        assert!(q <= s);
    }

    #[test]
    fn bsp_time_bounds_scale_with_l() {
        let small = Params { l: 16.0, ..P };
        let large = Params { l: 256.0, ..P };
        for problem in [Problem::Lac, Problem::Or, Problem::Parity] {
            let a = best_lower_bound(
                problem,
                Model::Bsp,
                Mode::Deterministic,
                Metric::Time,
                &small,
            )
            .unwrap();
            let b = best_lower_bound(
                problem,
                Model::Bsp,
                Mode::Deterministic,
                Metric::Time,
                &large,
            )
            .unwrap();
            assert!(b > a, "{problem:?}: {b} !> {a}");
        }
    }

    #[test]
    fn tight_entries_match_the_paper() {
        let tight: Vec<_> = TABLE1
            .iter()
            .filter(|b| b.tightness == Tightness::Tight)
            .collect();
        // Parity det on s-QSM & BSP (time); OR rounds x3; Parity rounds on
        // s-QSM & BSP.
        assert_eq!(tight.len(), 7);
    }

    #[test]
    fn rounds_bounds_grow_as_p_approaches_n() {
        let few = Params { p: 64.0, ..P };
        let many = Params { p: P.n / 2.0, ..P };
        for problem in [Problem::Lac, Problem::Or, Problem::Parity] {
            let a = best_lower_bound(problem, Model::SQsm, Mode::Randomized, Metric::Rounds, &few)
                .unwrap();
            let b = best_lower_bound(
                problem,
                Model::SQsm,
                Mode::Randomized,
                Metric::Rounds,
                &many,
            )
            .unwrap();
            assert!(b > a, "{problem:?}: {b} !> {a}");
        }
    }
}
