//! The Section 8 upper-bound formulas, for the bound-vs-algorithm ratio
//! columns the bench harness prints.

use crate::cells::{Model, Params, Problem};
use crate::math::{lg, lglg};

/// Section 8 upper bound for the given problem/model, as a formula value.
/// Returns `None` where the paper gives no (deterministic or w.h.p.) upper
/// bound for that combination.
pub fn upper_bound_time(problem: Problem, model: Model, params: &Params) -> Option<f64> {
    let n = params.n;
    let g = params.g;
    let l = params.l;
    let log = (l / g).max(2.0);
    Some(match (problem, model) {
        // Parity: O(g log n / log log g) on QSM (depth-2 circuit emulation),
        // O(g log n) on s-QSM, O(L log n / log(L/g)) on BSP.
        (Problem::Parity, Model::Qsm) => g * lg(n) / lglg(g),
        (Problem::Parity, Model::SQsm) => g * lg(n),
        (Problem::Parity, Model::Bsp) => l * lg(n) / lg(log),
        // OR: O((g/log g)·log n) on QSM, O(g log n) on s-QSM,
        // O(L log n/log(L/g)) on BSP (Juurlink–Wijshoff).
        (Problem::Or, Model::Qsm) => g * lg(n) / lg(g),
        (Problem::Or, Model::SQsm) => g * lg(n),
        (Problem::Or, Model::Bsp) => l * lg(n) / lg(log),
        // LAC (randomized, w.h.p.): O(sqrt(g log n) + g log log n) on QSM,
        // O(g sqrt(log n)) on s-QSM,
        // O(sqrt(Lg log n)/log(L/g) + L log log n/log(L/g)) on BSP.
        (Problem::Lac, Model::Qsm) => (g * lg(n)).sqrt() + g * lglg(n),
        (Problem::Lac, Model::SQsm) => g * lg(n).sqrt(),
        (Problem::Lac, Model::Bsp) => (l * g * lg(n)).sqrt() / lg(log) + l * lglg(n) / lg(log),
    })
}

/// Parity upper bound on the QSM *with unit-time concurrent reads*:
/// `O(g·log n / log g)` — the variant that makes the Theorem 3.1 bound Θ.
pub fn parity_unit_cr_upper(params: &Params) -> f64 {
    params.g * lg(params.n) / lg(params.g)
}

/// Section 8 rounds upper bounds (all via prefix-sums style algorithms):
/// `log n / log(n/p)` everywhere, improved to `log n / log(gn/p)` for OR on
/// the QSM (write-combining absorbs contention `g·n/p` within one round).
pub fn upper_bound_rounds(problem: Problem, model: Model, params: &Params) -> f64 {
    let n = params.n;
    let p = params.p;
    let b = (n / p).max(2.0);
    match (problem, model) {
        (Problem::Or, Model::Qsm) => lg(n) / lg((params.g * n / p).max(2.0)),
        _ => lg(n) / lg(b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::{best_lower_bound, Metric, Mode};

    const P: Params = Params {
        n: 1048576.0,
        g: 16.0,
        l: 128.0,
        p: 4096.0,
    };

    #[test]
    fn upper_bounds_exist_for_all_time_cells() {
        for problem in [Problem::Lac, Problem::Or, Problem::Parity] {
            for model in [Model::Qsm, Model::SQsm, Model::Bsp] {
                assert!(upper_bound_time(problem, model, &P).is_some());
            }
        }
    }

    #[test]
    fn upper_dominates_lower_everywhere() {
        // Every Section 8 upper bound must sit at or above the strongest
        // matching lower bound (deterministic LB vs deterministic-capable
        // UB; LAC's UB is randomized so compare against the randomized LB).
        // n >= 2^16: below that, sqrt(log n) has not yet overtaken
        // loglog n and the LAC comparison is meaningless.
        for n in [65536.0, 1e7, 1e12] {
            for g in [2.0, 8.0, 64.0] {
                let pr = Params {
                    n,
                    g,
                    l: 8.0 * g,
                    p: n,
                };
                for model in [Model::Qsm, Model::SQsm, Model::Bsp] {
                    for (problem, mode) in [
                        (Problem::Parity, Mode::Deterministic),
                        (Problem::Or, Mode::Deterministic),
                        (Problem::Lac, Mode::Randomized),
                    ] {
                        let ub = upper_bound_time(problem, model, &pr).unwrap();
                        let lb = best_lower_bound(problem, model, mode, Metric::Time, &pr).unwrap();
                        assert!(
                            ub >= lb * 0.99,
                            "{problem:?} {model:?} n={n} g={g}: ub {ub} < lb {lb}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn sqsm_parity_is_tight() {
        // Θ entry: upper equals lower exactly under our convention.
        let ub = upper_bound_time(Problem::Parity, Model::SQsm, &P).unwrap();
        let lb = best_lower_bound(
            Problem::Parity,
            Model::SQsm,
            Mode::Deterministic,
            Metric::Time,
            &P,
        )
        .unwrap();
        assert_eq!(ub, lb);
    }

    #[test]
    fn unit_cr_parity_matches_its_theta() {
        // Theorem 3.1's Θ(g log n/log g) with concurrent reads.
        let det_lb = best_lower_bound(
            Problem::Parity,
            Model::Qsm,
            Mode::Deterministic,
            Metric::Time,
            &P,
        )
        .unwrap();
        assert_eq!(parity_unit_cr_upper(&P), det_lb);
    }

    #[test]
    fn rounds_upper_matches_tight_rows() {
        for model in [Model::SQsm, Model::Bsp] {
            for problem in [Problem::Or, Problem::Parity] {
                let ub = upper_bound_rounds(problem, model, &P);
                let lb =
                    best_lower_bound(problem, model, Mode::Randomized, Metric::Rounds, &P).unwrap();
                assert_eq!(ub, lb, "{problem:?} {model:?}");
            }
        }
        // QSM OR: tight at log n/log(gn/p).
        let ub = upper_bound_rounds(Problem::Or, Model::Qsm, &P);
        let lb = best_lower_bound(
            Problem::Or,
            Model::Qsm,
            Mode::Randomized,
            Metric::Rounds,
            &P,
        )
        .unwrap();
        assert_eq!(ub, lb);
    }
}
