//! # parbounds-tables
//!
//! Every cell of **Table 1** of MacKenzie & Ramachandran (SPAA 1998) as a
//! typed, evaluable bound, plus:
//!
//! * [`cells`] — the registry of all 28 lower-bound entries across the four
//!   sub-tables (QSM time, s-QSM time, BSP time, rounds), each carrying the
//!   paper's formula text, a numeric evaluator, tightness, and side
//!   conditions;
//! * [`upper`] — the Section 8 upper-bound formulas, for upper/lower ratio
//!   columns;
//! * [`mapping`] — Claims 2.1 and 2.2: the combinators that instantiate a
//!   GSM lower bound into QSM / s-QSM / BSP / QSM(g,d) bounds, together
//!   with the paper's GSM theorems (3.1, 3.2, 6.1, 7.1–7.3) as bound
//!   functions;
//! * [`gd`] — the full derived QSM(g,d) bound table (the paper notes it
//!   "can be obtained"; here it is);
//! * [`render`] — text rendering of the four sub-tables in the paper's
//!   layout;
//! * [`math`] — the safe-logarithm conventions all evaluators share.
//!
//! ```
//! use parbounds_tables::{best_lower_bound, Metric, Mode, Model, Params, Problem};
//!
//! let pr = Params::qsm(1048576.0, 8.0);
//! // Deterministic Parity on the s-QSM: Θ(g·log n) = 8 · 20.
//! let b = best_lower_bound(Problem::Parity, Model::SQsm, Mode::Deterministic, Metric::Time, &pr);
//! assert_eq!(b, Some(160.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cells;
pub mod gd;
pub mod mapping;
pub mod math;
pub mod render;
pub mod upper;

pub use cells::{
    best_lower_bound, lower_bounds, Bound, Metric, Mode, Model, Params, Problem, Tightness, TABLE1,
};
pub use render::{
    render_audit_table, render_rounds_table, render_static_table, render_symbolic_table,
    render_time_table, AuditRow, StaticRow, SymbolicRow,
};
pub use upper::{parity_unit_cr_upper, upper_bound_rounds, upper_bound_time};
