//! Claims 2.1 and 2.2: mapping GSM lower bounds to the QSM, s-QSM, BSP and
//! QSM(g,d) models.
//!
//! The paper proves most lower bounds once, on the GSM(α, β, γ), and then
//! reads off bounds for the weaker models by instantiating the GSM
//! parameters. These combinators encode that instantiation: given a GSM
//! time (or rounds) bound as a function of `(n, α, β, γ[, p])`, they return
//! the induced bound for the target model. The unit tests re-derive several
//! Table 1 rows from the GSM theorems this way.

/// A GSM time-bound: `T_GSM(n, α, β, γ)`.
pub type GsmTimeBound = fn(n: f64, alpha: f64, beta: f64, gamma: f64) -> f64;

/// A GSM rounds-bound: `R_GSM(n, α, β, γ, p)`.
pub type GsmRoundsBound = fn(n: f64, alpha: f64, beta: f64, gamma: f64, p: f64) -> f64;

/// Claim 2.1(1): `T_QSM(n, g) = Ω(T_GSM(n, 1, g, 1))`.
pub fn qsm_time(t: GsmTimeBound, n: f64, g: f64) -> f64 {
    t(n, 1.0, g, 1.0)
}

/// Claim 2.1(2): `T_sQSM(n, g) = Ω(g · T_GSM(n, 1, 1, 1))`.
pub fn sqsm_time(t: GsmTimeBound, n: f64, g: f64) -> f64 {
    g * t(n, 1.0, 1.0, 1.0)
}

/// Claim 2.1(3): `T_BSP(n, g, L, p) = Ω(g · T_GSM(n, L/g, L/g, n/p))`.
pub fn bsp_time(t: GsmTimeBound, n: f64, g: f64, l: f64, p: f64) -> f64 {
    g * t(n, l / g, l / g, n / p)
}

/// Claim 2.1(4): rounds from time —
/// `R_GSM(n, α, β, γ, p) = Ω(T_GSM(n, αn/(λp), βn/(λp), γ) / (μn/(λp)))`
/// with `μ = max{α,β}`, `λ = min{α,β}`.
pub fn gsm_rounds_from_time(
    t: GsmTimeBound,
    n: f64,
    alpha: f64,
    beta: f64,
    gamma: f64,
    p: f64,
) -> f64 {
    let mu = alpha.max(beta);
    let lambda = alpha.min(beta);
    let scale = n / (lambda * p);
    t(n, alpha * scale, beta * scale, gamma) / (mu * scale)
}

/// Claim 2.1(5): `R_QSM(n, g, p) = Ω(R_GSM(n, 1, g, 1, p))`.
pub fn qsm_rounds(r: GsmRoundsBound, n: f64, g: f64, p: f64) -> f64 {
    r(n, 1.0, g, 1.0, p)
}

/// Claim 2.1(6): `R_sQSM(n, g, p) = Ω(R_GSM(n, 1, 1, 1, p))`.
pub fn sqsm_rounds(r: GsmRoundsBound, n: f64, _g: f64, p: f64) -> f64 {
    r(n, 1.0, 1.0, 1.0, p)
}

/// Claim 2.1(7): `R_BSP(n, g, L, p) = Ω(R_GSM(n, 1, 1, n/p, p))`.
pub fn bsp_rounds(r: GsmRoundsBound, n: f64, p: f64) -> f64 {
    r(n, 1.0, 1.0, n / p, p)
}

/// Claim 2.2(1): `T_{g>d}-QSM(n, g, d) = Ω(d · T_GSM(n, 1, g/d, 1))`.
pub fn qsm_gd_time_g_gt_d(t: GsmTimeBound, n: f64, g: f64, d: f64) -> f64 {
    d * t(n, 1.0, g / d, 1.0)
}

/// Claim 2.2(2): `T_{d>g}-QSM(n, g, d) = Ω(g · T_GSM(n, d/g, 1, 1))`.
pub fn qsm_gd_time_d_gt_g(t: GsmTimeBound, n: f64, g: f64, d: f64) -> f64 {
    g * t(n, d / g, 1.0, 1.0)
}

/// Claim 2.2(3): `R_{g>d}-QSM(n, g, d, p) = Ω(R_GSM(n, 1, g/d, 1, p))`.
pub fn qsm_gd_rounds_g_gt_d(r: GsmRoundsBound, n: f64, g: f64, d: f64, p: f64) -> f64 {
    r(n, 1.0, g / d, 1.0, p)
}

/// Claim 2.2(4): `R_{d>g}-QSM(n, g, d, p) = Ω(R_GSM(n, d/g, 1, 1, p))`.
pub fn qsm_gd_rounds_d_gt_g(r: GsmRoundsBound, n: f64, g: f64, d: f64, p: f64) -> f64 {
    r(n, d / g, 1.0, 1.0, p)
}

// ---------------------------------------------------------------------------
// The paper's GSM theorems as bound functions, usable with the combinators.
// ---------------------------------------------------------------------------

use crate::math::{at_least_1, lg, lglg, log_star};

/// Theorem 3.1 / 7.2: deterministic Parity (and OR) on the GSM needs
/// `Ω(μ·log(n/γ)/log μ)` time (the OR version divides by
/// `log log(n/γ) + log μ`; this is the Parity shape).
pub fn gsm_parity_det_time(n: f64, alpha: f64, beta: f64, gamma: f64) -> f64 {
    let mu = alpha.max(beta).max(2.0);
    let r = (n / gamma).max(2.0);
    mu * lg(r) / lg(mu)
}

/// Theorem 3.2: randomized Parity on the GSM needs
/// `Ω(μ·sqrt(log(n/γ)/(log log(n/γ) + log μ)))`.
pub fn gsm_parity_rand_time(n: f64, alpha: f64, beta: f64, gamma: f64) -> f64 {
    let mu = alpha.max(beta).max(2.0);
    let r = (n / gamma).max(2.0);
    mu * (lg(r) / at_least_1(lglg(r) + lg(mu))).sqrt()
}

/// Theorem 7.1: randomized OR on the GSM needs
/// `Ω(μ·(log*(n/γ) − log* μ))`.
pub fn gsm_or_rand_time(n: f64, alpha: f64, beta: f64, gamma: f64) -> f64 {
    let mu = alpha.max(beta).max(2.0);
    let r = (n / gamma).max(2.0);
    mu * (log_star(r) - log_star(mu)).max(1.0)
}

/// Theorem 7.2: deterministic OR on the GSM needs
/// `Ω(μ·log(n/γ)/(log log(n/γ) + log μ))`.
pub fn gsm_or_det_time(n: f64, alpha: f64, beta: f64, gamma: f64) -> f64 {
    let mu = alpha.max(beta).max(2.0);
    let r = (n / gamma).max(2.0);
    mu * lg(r) / at_least_1(lglg(r) + lg(mu))
}

/// Theorem 6.1: randomized LAC / Load Balancing / Padded Sort on the GSM
/// need `Ω(μ·log log n / log μ)` time (the `−O(m)` slack absorbed).
pub fn gsm_lac_rand_time(n: f64, alpha: f64, beta: f64, _gamma: f64) -> f64 {
    let mu = alpha.max(beta).max(2.0);
    mu * lglg(n) / lg(mu)
}

/// Theorem 6.3: rounds for `((μh/λ)+1)`-LAC with destination size `d` on a
/// GSM(h) (the relaxed round = a phase of `O(μh/λ)` time):
/// `Ω(√(log(n/(d·γ)) / log(μh/λ)))`.
pub fn gsm_lac_rounds_h(n: f64, alpha: f64, beta: f64, gamma: f64, h: f64, d: f64) -> f64 {
    let mu = alpha.max(beta);
    let lambda = alpha.min(beta);
    let inner = (n / (d * gamma)).max(2.0);
    (inner.log2() / ((mu * h / lambda).max(2.0)).log2()).sqrt()
}

/// Theorem 7.3: randomized OR rounds on the GSM:
/// `Ω(log(n/γ) / log(μn/(λp)))`.
pub fn gsm_or_rounds(n: f64, alpha: f64, beta: f64, gamma: f64, p: f64) -> f64 {
    let mu = alpha.max(beta);
    let lambda = alpha.min(beta);
    let r = (n / gamma).max(2.0);
    lg(r) / lg((mu * n / (lambda * p)).max(2.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: f64 = 1048576.0;

    #[test]
    fn corollary_3_1_qsm_parity_from_gsm() {
        // T_QSM = Ω(T_GSM(n,1,g,1)) = Ω(g·log n/log g): matches Table 1.
        let g = 16.0;
        let got = qsm_time(gsm_parity_det_time, N, g);
        let expect = g * 20.0 / 4.0;
        assert!((got - expect).abs() < 1e-9, "{got} vs {expect}");
    }

    #[test]
    fn corollary_3_1_sqsm_parity_from_gsm() {
        // T_sQSM = Ω(g·T_GSM(n,1,1,1)) = Ω(g·log n) (μ floors at 2).
        let g = 8.0;
        let got = sqsm_time(gsm_parity_det_time, N, g);
        assert!((got - g * 2.0 * 20.0).abs() < 1e-9);
    }

    #[test]
    fn corollary_3_1_bsp_parity_from_gsm() {
        // T_BSP = Ω(g·T_GSM(n, L/g, L/g, n/p))
        //       = Ω(L·log(np/ n... ) ) — with q = p when p < n the (n/γ)
        // term becomes p: Ω(L·log p / log(L/g)).
        let g = 4.0;
        let l = 64.0; // L/g = 16
        let p = 4096.0;
        let got = bsp_time(gsm_parity_det_time, N, g, l, p);
        let expect = g * (l / g) * lg(p) / lg(l / g); // L·log p/log(L/g)
        assert!((got - expect).abs() < 1e-9, "{got} vs {expect}");
    }

    #[test]
    fn corollary_7_3_rounds_from_gsm() {
        // R_sQSM = Ω(R_GSM(n,1,1,1,p)) = Ω(log n/log(n/p)).
        let p = 65536.0;
        let got = sqsm_rounds(gsm_or_rounds, N, 2.0, p);
        assert!((got - lg(N) / lg(N / p)).abs() < 1e-9);
        // R_QSM = Ω(R_GSM(n,1,g,1,p)) = Ω(log n/log(gn/p)).
        let g = 16.0;
        let got = qsm_rounds(gsm_or_rounds, N, g, p);
        assert!((got - lg(N) / lg(g * N / p)).abs() < 1e-9);
        // R_BSP = Ω(R_GSM(n,1,1,n/p,p)) = Ω(log p/log(n/p)).
        let got = bsp_rounds(gsm_or_rounds, N, p);
        assert!((got - lg(p) / lg(N / p)).abs() < 1e-9);
    }

    #[test]
    fn rounds_from_time_reduction() {
        // Claim 2.1(4) on the Parity time bound reproduces the
        // log n / log(n/p)-flavoured rounds shape.
        let p = 1024.0;
        let got = gsm_rounds_from_time(gsm_parity_det_time, N, 1.0, 1.0, 1.0, p);
        let scale = N / p;
        let expect = gsm_parity_det_time(N, scale, scale, 1.0) / (scale);
        assert!((got - expect).abs() < 1e-9);
        // Shape: log n / log(n/p).
        assert!((got - lg(N) / lg(scale)).abs() < 1e-9);
    }

    #[test]
    fn claim_2_2_degenerates_to_claim_2_1_at_d_equals_1() {
        // QSM(g, 1) is the QSM: Claim 2.2(1) with d = 1 = Claim 2.1(1).
        let g = 8.0;
        let a = qsm_gd_time_g_gt_d(gsm_or_det_time, N, g, 1.0);
        let b = qsm_time(gsm_or_det_time, N, g);
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn gd_model_bounds_are_monotone_in_d() {
        // Growing d (gap at memory) cannot shrink the g>d bound.
        let g = 64.0;
        let a = qsm_gd_time_g_gt_d(gsm_parity_det_time, N, g, 1.0);
        let b = qsm_gd_time_g_gt_d(gsm_parity_det_time, N, g, 8.0);
        assert!(b >= a * 0.99, "{b} !>= {a}");
    }

    #[test]
    fn theorem_6_3_recovers_corollary_6_3() {
        // Corollary 6.3: ((gn/p)+1)-LAC on a QSM needs
        // Ω(sqrt(log n / log(gn/p))) rounds — instantiate Theorem 6.3 with
        // (α, β) = (1, g), h = n/p, d = O(h) and compare shapes.
        let g = 8.0;
        let p = 4096.0;
        let h = N / p;
        let got = gsm_lac_rounds_h(N, 1.0, g, 1.0, h, g * h);
        let expect = ((N / (g * h)).log2() / (g * h).log2()).sqrt();
        assert!((got - expect).abs() < 1e-9);
        // Monotone: more destination slack weakens the bound.
        assert!(gsm_lac_rounds_h(N, 1.0, g, 1.0, h, 4.0 * g * h) <= got);
        // Bigger rounds budget h weakens the bound.
        assert!(gsm_lac_rounds_h(N, 1.0, g, 1.0, 4.0 * h, g * h) <= got + 1e-9);
    }

    #[test]
    fn lac_gsm_bound_maps_to_table_rows() {
        // s-QSM: Ω(g·loglog n); QSM: Ω(g·loglog n/log g).
        let g = 16.0;
        let s = sqsm_time(gsm_lac_rand_time, N, g);
        assert!((s - g * 2.0 * lglg(N) / 1.0).abs() < 1e-9);
        let q = qsm_time(gsm_lac_rand_time, N, g);
        assert!((q - g * lglg(N) / lg(g)).abs() < 1e-9);
    }
}
