//! Asymptotic-formula arithmetic: safe logarithms and iterated logarithm.
//!
//! The bound formulas divide by `log log n`, `log g`, `log(L/g)` and
//! friends; evaluated at small concrete parameters these can hit 0 or go
//! negative. Every helper here floors at 1 so the formula *values* stay
//! meaningful order-of-growth proxies across the whole sweep range (the
//! convention is stated in the table docs and applied uniformly to lower
//! and upper bound formulas, so ratios remain fair).

/// `max(1, log2 x)`.
pub fn lg(x: f64) -> f64 {
    if x <= 2.0 {
        1.0
    } else {
        x.log2()
    }
}

/// `max(1, log2 log2 x)`.
pub fn lglg(x: f64) -> f64 {
    lg(lg(x))
}

/// The iterated logarithm `log* x` (base 2): the number of times `log2`
/// must be applied to bring `x` to at most 1. `log*(x) = 0` for `x ≤ 1`.
pub fn log_star(x: f64) -> f64 {
    let mut v = x;
    let mut count = 0u32;
    while v > 1.0 && count < 64 {
        v = v.log2();
        count += 1;
    }
    f64::from(count)
}

/// `max(1, log* x − log* y)` — the paper's `log* n − log* g` shapes, floored
/// so the formula never evaluates non-positive on small sweeps.
pub fn log_star_diff(x: f64, y: f64) -> f64 {
    (log_star(x) - log_star(y)).max(1.0)
}

/// `max(1, x)` — generic floor for denominators.
pub fn at_least_1(x: f64) -> f64 {
    x.max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lg_floors_at_one() {
        assert_eq!(lg(0.5), 1.0);
        assert_eq!(lg(1.0), 1.0);
        assert_eq!(lg(2.0), 1.0);
        assert_eq!(lg(1024.0), 10.0);
    }

    #[test]
    fn lglg_composes() {
        assert_eq!(lglg(65536.0), 4.0);
        assert_eq!(lglg(4.0), 1.0);
    }

    #[test]
    fn log_star_values() {
        assert_eq!(log_star(1.0), 0.0);
        assert_eq!(log_star(2.0), 1.0);
        assert_eq!(log_star(4.0), 2.0);
        assert_eq!(log_star(16.0), 3.0);
        assert_eq!(log_star(65536.0), 4.0);
        // 2^65536 would be 5; f64 can't hold it, but large finite values cap.
        assert_eq!(log_star(1e300), 5.0);
    }

    #[test]
    fn log_star_is_monotone() {
        let mut prev = 0.0;
        for e in 0..200 {
            let v = log_star(2f64.powi(e));
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn log_star_diff_floors() {
        assert_eq!(log_star_diff(16.0, 65536.0), 1.0);
        assert_eq!(log_star_diff(65536.0, 2.0), 3.0);
    }
}
