//! Derived bounds for the **QSM(g, d)** model via Claim 2.2 — the bound
//! table the paper says "can be obtained" for the two-gap model, written
//! out: every GSM theorem instantiated through the Claim 2.2 mappings,
//! with the g > d and d > g regimes handled per the claim.

use crate::cells::{Mode, Problem};
use crate::mapping::{
    gsm_lac_rand_time, gsm_or_det_time, gsm_or_rand_time, gsm_or_rounds, gsm_parity_det_time,
    gsm_parity_rand_time, qsm_gd_rounds_d_gt_g, qsm_gd_rounds_g_gt_d, qsm_gd_time_d_gt_g,
    qsm_gd_time_g_gt_d, GsmRoundsBound, GsmTimeBound,
};

/// Instantiates a GSM time bound on the QSM(g, d), picking the Claim 2.2
/// branch by the sign of `g − d` (at `g = d` both branches agree up to the
/// claim's constants; we take the max).
pub fn gd_time(t: GsmTimeBound, n: f64, g: f64, d: f64) -> f64 {
    if g > d {
        qsm_gd_time_g_gt_d(t, n, g, d)
    } else if d > g {
        qsm_gd_time_d_gt_g(t, n, g, d)
    } else {
        qsm_gd_time_g_gt_d(t, n, g, d).max(qsm_gd_time_d_gt_g(t, n, g, d))
    }
}

/// Instantiates a GSM rounds bound on the QSM(g, d).
pub fn gd_rounds(r: GsmRoundsBound, n: f64, g: f64, d: f64, p: f64) -> f64 {
    if g > d {
        qsm_gd_rounds_g_gt_d(r, n, g, d, p)
    } else if d > g {
        qsm_gd_rounds_d_gt_g(r, n, g, d, p)
    } else {
        qsm_gd_rounds_g_gt_d(r, n, g, d, p).max(qsm_gd_rounds_d_gt_g(r, n, g, d, p))
    }
}

/// The QSM(g, d) lower bound for a problem/mode, derived from the matching
/// GSM theorem (time metric).
pub fn gd_lower_bound_time(problem: Problem, mode: Mode, n: f64, g: f64, d: f64) -> f64 {
    let theorem: GsmTimeBound = match (problem, mode) {
        (Problem::Parity, Mode::Deterministic) => gsm_parity_det_time,
        (Problem::Parity, Mode::Randomized) => gsm_parity_rand_time,
        (Problem::Or, Mode::Deterministic) => gsm_or_det_time,
        (Problem::Or, Mode::Randomized) => gsm_or_rand_time,
        (Problem::Lac, _) => gsm_lac_rand_time,
    };
    gd_time(theorem, n, g, d)
}

/// The QSM(g, d) OR rounds lower bound (Theorem 7.3 through Claim 2.2).
pub fn gd_or_rounds(n: f64, g: f64, d: f64, p: f64) -> f64 {
    gd_rounds(gsm_or_rounds, n, g, d, p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::{best_lower_bound, Metric, Model, Params};

    const N: f64 = 1_048_576.0;

    #[test]
    fn d_equals_one_recovers_qsm_rows() {
        // QSM(g, 1) is the QSM: derived bounds within a constant of the
        // registry entries.
        let g = 16.0;
        let pr = Params::qsm(N, g);
        for (problem, mode) in [
            (Problem::Parity, Mode::Deterministic),
            (Problem::Or, Mode::Deterministic),
        ] {
            let derived = gd_lower_bound_time(problem, mode, N, g, 1.0);
            let registry = best_lower_bound(problem, Model::Qsm, mode, Metric::Time, &pr).unwrap();
            let ratio = derived / registry;
            assert!((0.2..=5.0).contains(&ratio), "{problem:?}: ratio {ratio}");
        }
    }

    #[test]
    fn d_equals_g_recovers_sqsm_rows() {
        let g = 16.0;
        let pr = Params::qsm(N, g);
        for (problem, mode) in [
            (Problem::Parity, Mode::Deterministic),
            (Problem::Or, Mode::Deterministic),
        ] {
            let derived = gd_lower_bound_time(problem, mode, N, g, g);
            let registry = best_lower_bound(problem, Model::SQsm, mode, Metric::Time, &pr).unwrap();
            let ratio = derived / registry;
            assert!((0.2..=6.0).contains(&ratio), "{problem:?}: ratio {ratio}");
        }
    }

    #[test]
    fn bounds_interpolate_monotonically_in_d() {
        // Raising the memory gap can only make the model slower: derived
        // lower bounds are non-decreasing in d (for fixed g), up to the
        // claim's floor effects.
        let g = 64.0;
        let mut prev = 0.0;
        for d in [1.0, 2.0, 8.0, 32.0, 64.0] {
            let v = gd_lower_bound_time(Problem::Parity, Mode::Deterministic, N, g, d);
            assert!(v >= prev * 0.99, "d={d}: {v} < {prev}");
            prev = v;
        }
    }

    #[test]
    fn rounds_interpolate_between_qsm_and_sqsm() {
        let g = 16.0;
        let p = 65_536.0;
        // d = 1: Ω(log n / log(gn/p)); d = g: Ω(log n / log(n/p)).
        let qsm_like = gd_or_rounds(N, g, 1.0, p);
        let sqsm_like = gd_or_rounds(N, g, g, p);
        assert!(qsm_like <= sqsm_like);
        let mid = gd_or_rounds(N, g, 4.0, p);
        assert!(
            qsm_like <= mid && mid <= sqsm_like,
            "{qsm_like} {mid} {sqsm_like}"
        );
    }

    #[test]
    fn lac_gd_bound_positive_everywhere() {
        for d in [1.0, 3.0, 17.0] {
            for g in [1.0, 8.0, 64.0] {
                let v = gd_lower_bound_time(Problem::Lac, Mode::Randomized, N, g, d);
                assert!(v.is_finite() && v > 0.0);
            }
        }
    }
}
