//! Text rendering of the four sub-tables of Table 1, in the paper's layout,
//! with numeric columns for a chosen parameter point.

use crate::cells::{lower_bounds, Metric, Mode, Model, Params, Problem, Tightness};

fn problem_name(p: Problem) -> &'static str {
    match p {
        Problem::Lac => "Linear approx. compaction",
        Problem::Or => "OR",
        Problem::Parity => "Parity and related problems",
    }
}

fn cell_text(problem: Problem, model: Model, mode: Mode, metric: Metric) -> String {
    let bounds = lower_bounds(problem, model, mode, metric);
    bounds
        .iter()
        .map(|b| {
            let sym = match b.tightness {
                Tightness::Tight => "Θ",
                Tightness::LowerOnly => "Ω",
            };
            if b.condition.is_empty() {
                format!("{sym}({})", b.expr)
            } else {
                format!("{sym}({}) [{}]", b.expr, b.condition)
            }
        })
        .collect::<Vec<_>>()
        .join("; ")
}

fn cell_value(problem: Problem, model: Model, mode: Mode, metric: Metric, pr: &Params) -> f64 {
    crate::cells::best_lower_bound(problem, model, mode, metric, pr).unwrap_or(f64::NAN)
}

/// Renders one of the three time sub-tables (QSM, s-QSM, BSP) with the
/// symbolic bounds and their values at `pr`.
pub fn render_time_table(model: Model, pr: &Params) -> String {
    let title = match model {
        Model::Qsm => format!("Time Lower Bounds for QSM   (n={}, g={})", pr.n, pr.g),
        Model::SQsm => format!("Time Lower Bounds for s-QSM (n={}, g={})", pr.n, pr.g),
        Model::Bsp => format!(
            "Time Lower Bounds for BSP   (n={}, g={}, L={}, p={}, q=min(n,p))",
            pr.n, pr.g, pr.l, pr.p
        ),
    };
    let mut out = String::new();
    out.push_str(&title);
    out.push('\n');
    out.push_str(&format!(
        "{:<28} | {:<58} | {:>10} | {:<58} | {:>10}\n",
        "problem", "deterministic l.b.", "value", "randomized l.b.", "value"
    ));
    out.push_str(&"-".repeat(175));
    out.push('\n');
    for problem in [Problem::Lac, Problem::Or, Problem::Parity] {
        out.push_str(&format!(
            "{:<28} | {:<58} | {:>10.1} | {:<58} | {:>10.1}\n",
            problem_name(problem),
            cell_text(problem, model, Mode::Deterministic, Metric::Time),
            cell_value(problem, model, Mode::Deterministic, Metric::Time, pr),
            cell_text(problem, model, Mode::Randomized, Metric::Time),
            cell_value(problem, model, Mode::Randomized, Metric::Time, pr),
        ));
    }
    out
}

/// Renders the rounds sub-table (all three models side by side).
pub fn render_rounds_table(pr: &Params) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Number of Rounds for p-processor Algorithms (p <= n)   (n={}, g={}, p={})\n",
        pr.n, pr.g, pr.p
    ));
    out.push_str(&format!(
        "{:<28} | {:<52} | {:>8} | {:<28} | {:>8} | {:<28} | {:>8}\n",
        "problem", "QSM", "value", "s-QSM", "value", "BSP", "value"
    ));
    out.push_str(&"-".repeat(180));
    out.push('\n');
    for problem in [Problem::Lac, Problem::Or, Problem::Parity] {
        out.push_str(&format!(
            "{:<28} | {:<52} | {:>8.2} | {:<28} | {:>8.2} | {:<28} | {:>8.2}\n",
            problem_name(problem),
            cell_text(problem, Model::Qsm, Mode::Randomized, Metric::Rounds),
            cell_value(problem, Model::Qsm, Mode::Randomized, Metric::Rounds, pr),
            cell_text(problem, Model::SQsm, Mode::Randomized, Metric::Rounds),
            cell_value(problem, Model::SQsm, Mode::Randomized, Metric::Rounds, pr),
            cell_text(problem, Model::Bsp, Mode::Randomized, Metric::Rounds),
            cell_value(problem, Model::Bsp, Mode::Randomized, Metric::Rounds, pr),
        ));
    }
    out
}

/// One row of the static-analysis summary table: a PhaseIR family's
/// predicted and measured cost at a parameter point, with the paper's
/// closed-form anchor when the Section 8 analysis gives one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticRow {
    /// Family name (e.g. `or-write-tree`).
    pub family: String,
    /// Model name (`QSM`, `s-QSM`, `BSP`, `GSM`).
    pub model: String,
    /// Phases / supersteps in the plan.
    pub phases: usize,
    /// Statically predicted total model time.
    pub predicted: u64,
    /// Measured total model time; `None` for analyze-only plans (GSM).
    pub measured: Option<u64>,
    /// Closed-form cost from the paper's analysis, when available.
    pub formula: Option<u64>,
}

/// Renders the static cross-validation summary (predicted vs measured vs
/// closed form) in the same fixed-width style as the Table 1 renderers.
pub fn render_static_table(rows: &[StaticRow]) -> String {
    let mut out = String::new();
    out.push_str("Static PhaseIR cost prediction vs measured execution\n");
    out.push_str(&format!(
        "{:<18} | {:<5} | {:>6} | {:>9} | {:>9} | {:^5} | {:>11}\n",
        "family", "model", "phases", "predicted", "measured", "match", "closed form"
    ));
    out.push_str(&"-".repeat(80));
    out.push('\n');
    for r in rows {
        let measured = r
            .measured
            .map_or_else(|| "-".to_string(), |m| m.to_string());
        let mark = match r.measured {
            Some(m) if m == r.predicted => "=",
            Some(_) => "!=",
            None => "-",
        };
        let formula = r.formula.map_or_else(|| "-".to_string(), |f| f.to_string());
        out.push_str(&format!(
            "{:<18} | {:<5} | {:>6} | {:>9} | {:>9} | {:^5} | {:>11}\n",
            r.family, r.model, r.phases, r.predicted, measured, mark, formula
        ));
    }
    out
}

/// One row of the symbolic Table 1 conformance report: the Θ-normal
/// form derived from a family's symbolic ledger next to the paper's row,
/// plus the evaluation of the symbolic total at the suite point against
/// the numeric predictor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymbolicRow {
    /// Family name (e.g. `or-write-tree`).
    pub family: String,
    /// Model name (`QSM`, `s-QSM`, `BSP`).
    pub model: String,
    /// Θ-normal form derived from the symbolic ledger.
    pub derived: String,
    /// The family's Table 1 fixture in Θ-normal form.
    pub fixture: String,
    /// Conformance verdict (`match`, `mismatch`, `REGRESSION`).
    pub verdict: String,
    /// Symbolic total evaluated at the suite point.
    pub symbolic: u64,
    /// Numeric `predict_ledger` total at the same point.
    pub numeric: u64,
}

/// Renders the symbolic Θ-conformance table: derived normal form vs the
/// paper's Table 1 row, with the point evaluation as a bit-level anchor.
pub fn render_symbolic_table(rows: &[SymbolicRow]) -> String {
    let derived_w = rows
        .iter()
        .map(|r| r.derived.chars().count())
        .max()
        .unwrap_or(0)
        .max("derived Θ".chars().count());
    let fixture_w = rows
        .iter()
        .map(|r| r.fixture.chars().count())
        .max()
        .unwrap_or(0)
        .max("Table 1 row".chars().count());
    let mut out = String::new();
    out.push_str("Symbolic Θ-normal-form ledgers vs Table 1\n");
    out.push_str(&format!(
        "{:<18} | {:<5} | {:<derived_w$} | {:<fixture_w$} | {:<10} | {:>9} | {:>9} | {:^5}\n",
        "family", "model", "derived Θ", "Table 1 row", "verdict", "symbolic", "numeric", "match"
    ));
    out.push_str(&"-".repeat(80 + derived_w + fixture_w));
    out.push('\n');
    for r in rows {
        let mark = if r.symbolic == r.numeric { "=" } else { "!=" };
        out.push_str(&format!(
            "{:<18} | {:<5} | {:<derived_w$} | {:<fixture_w$} | {:<10} | {:>9} | {:>9} | {:^5}\n",
            r.family, r.model, r.derived, r.fixture, r.verdict, r.symbolic, r.numeric, mark
        ));
    }
    out
}

/// One row of the adversary-audit report: the lower bound audited by the
/// symbolic adversary next to the family's Table 1 upper-bound fixture,
/// with the trajectory facts backing it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditRow {
    /// Family name.
    pub family: String,
    /// Audited size (`n` on shared models, `p` on the BSP).
    pub size: u64,
    /// Tree fan-in / spread factor.
    pub fan: u64,
    /// Refinement steps whose t-goodness was checked.
    pub steps: usize,
    /// Steps clamped by the `r_t` fixing budget.
    pub clamped: usize,
    /// Audited lower bound in Θ-normal form.
    pub lower: String,
    /// Table 1 upper bound in Θ-normal form.
    pub upper: String,
    /// Pairing verdict (`tight`, `consistent`, `VIOLATION`).
    pub verdict: String,
}

/// Renders the adversary lower-bound audit table: audited Θ lower bound
/// next to the Table 1 upper fixture, with trajectory-step accounting.
pub fn render_audit_table(rows: &[AuditRow]) -> String {
    let lower_w = rows
        .iter()
        .map(|r| r.lower.chars().count())
        .max()
        .unwrap_or(0)
        .max("lower Θ".chars().count());
    let upper_w = rows
        .iter()
        .map(|r| r.upper.chars().count())
        .max()
        .unwrap_or(0)
        .max("Table 1 upper".chars().count());
    let mut out = String::new();
    out.push_str("Adversary lower-bound audits vs Table 1 upper bounds\n");
    out.push_str(&format!(
        "{:<18} | {:>6} | {:>3} | {:>5} | {:>7} | {:<lower_w$} | {:<upper_w$} | {:<10}\n",
        "family", "size", "fan", "steps", "clamped", "lower Θ", "Table 1 upper", "verdict"
    ));
    out.push_str(&"-".repeat(70 + lower_w + upper_w));
    out.push('\n');
    for r in rows {
        out.push_str(&format!(
            "{:<18} | {:>6} | {:>3} | {:>5} | {:>7} | {:<lower_w$} | {:<upper_w$} | {:<10}\n",
            r.family, r.size, r.fan, r.steps, r.clamped, r.lower, r.upper, r.verdict
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn audit_table_pairs_lower_and_upper_theta_forms() {
        let rows = vec![
            AuditRow {
                family: "parity-read-tree".into(),
                size: 4096,
                fan: 2,
                steps: 24,
                clamped: 3,
                lower: "Θ(g·log n)".into(),
                upper: "Θ(g·log n)".into(),
                verdict: "tight".into(),
            },
            AuditRow {
                family: "prefix-sweep".into(),
                size: 4096,
                fan: 8,
                steps: 8,
                clamped: 0,
                lower: "Θ(g·log n/(log g))".into(),
                upper: "Θ(g²·log n/(log g))".into(),
                verdict: "consistent".into(),
            },
        ];
        let s = render_audit_table(&rows);
        assert!(s.contains("Θ(g²·log n/(log g))"));
        assert!(s.contains("tight"));
        // Unicode widths align: every data row has the same char count.
        let data: Vec<&str> = s.lines().skip(3).collect();
        assert_eq!(data[0].chars().count(), data[1].chars().count(), "{s}");
    }

    #[test]
    fn symbolic_table_aligns_unicode_normal_forms() {
        let rows = vec![
            SymbolicRow {
                family: "or-write-tree".into(),
                model: "QSM".into(),
                derived: "Θ(g·log n/(log g))".into(),
                fixture: "Θ(g·log n/(log g))".into(),
                verdict: "match".into(),
                symbolic: 230,
                numeric: 230,
            },
            SymbolicRow {
                family: "or-write-tree-padded".into(),
                model: "QSM".into(),
                derived: "Θ(g·log n)".into(),
                fixture: "Θ(g·log n/(log g))".into(),
                verdict: "REGRESSION".into(),
                symbolic: 278,
                numeric: 278,
            },
        ];
        let s = render_symbolic_table(&rows);
        assert!(s.contains("Θ(g·log n/(log g))"));
        assert!(s.contains("REGRESSION"));
        assert!(s
            .lines()
            .any(|l| l.contains("or-write-tree ") && l.contains(" = ")));
    }

    #[test]
    fn static_table_marks_agreement_and_gaps() {
        let rows = vec![
            StaticRow {
                family: "or-write-tree".into(),
                model: "QSM".into(),
                phases: 8,
                predicted: 230,
                measured: Some(230),
                formula: Some(230),
            },
            StaticRow {
                family: "gsm-tree".into(),
                model: "GSM".into(),
                phases: 5,
                predicted: 40,
                measured: None,
                formula: None,
            },
        ];
        let s = render_static_table(&rows);
        assert!(s.contains("or-write-tree"));
        assert!(s.contains('='));
        assert!(s.contains("GSM"));
        assert!(s.lines().any(|l| l.contains("gsm-tree") && l.contains('-')));
    }

    #[test]
    fn time_tables_mention_every_problem_and_formula() {
        let pr = Params::qsm(1048576.0, 8.0);
        for model in [Model::Qsm, Model::SQsm, Model::Bsp] {
            let s = render_time_table(model, &pr);
            assert!(s.contains("OR"));
            assert!(s.contains("Parity"));
            assert!(s.contains("compaction"));
            assert!(s.contains('Ω'));
        }
        // Theta rows present where the paper has them.
        assert!(render_time_table(Model::SQsm, &pr).contains("Θ(g·log n)"));
    }

    #[test]
    fn rounds_table_has_three_model_columns() {
        let pr = Params::bsp(65536.0, 4.0, 32.0, 1024.0);
        let s = render_rounds_table(&pr);
        assert!(s.contains("QSM"));
        assert!(s.contains("s-QSM"));
        assert!(s.contains("BSP"));
        assert!(s.contains("Θ"));
    }

    #[test]
    fn rendered_values_are_numbers() {
        let pr = Params::qsm(1048576.0, 8.0);
        let s = render_time_table(Model::Qsm, &pr);
        assert!(!s.contains("NaN"));
    }
}
