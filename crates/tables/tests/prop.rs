//! Property tests of the bound registry: every formula positive, finite,
//! monotone where the paper's shapes are monotone, and consistent under
//! the Claim 2.1 mappings across random parameter points.

use proptest::prelude::*;

use parbounds_tables::mapping;
use parbounds_tables::math::{lg, lglg, log_star};
use parbounds_tables::{
    best_lower_bound, upper_bound_rounds, upper_bound_time, Metric, Mode, Model, Params, Problem,
    TABLE1,
};

fn arb_params() -> impl Strategy<Value = Params> {
    (8f64..1e12, 1f64..128.0, 1f64..64.0, 2f64..1e6).prop_map(|(n, g, lf, p)| Params {
        n,
        g,
        l: g * lf, // keep L >= g
        p: p.min(n),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every registry entry is positive and finite everywhere.
    #[test]
    fn all_bounds_positive_finite(pr in arb_params()) {
        for b in TABLE1 {
            let v = (b.eval)(&pr);
            prop_assert!(v.is_finite() && v > 0.0, "{:?} at {:?} gave {}", b, pr, v);
        }
    }

    /// Time bounds are non-decreasing in n (with the other parameters
    /// fixed) — every Table 1 formula grows with the input.
    #[test]
    fn time_bounds_monotone_in_n(pr in arb_params(), factor in 2f64..64.0) {
        let big = Params { n: pr.n * factor, ..pr };
        for b in TABLE1.iter().filter(|b| b.metric == Metric::Time) {
            let (a, c) = ((b.eval)(&pr), (b.eval)(&big));
            prop_assert!(c >= a * 0.999, "{:?}: {} -> {} as n x{}", b, a, c, factor);
        }
    }

    /// Shared-memory time bounds scale at least linearly in g... more
    /// precisely they are non-decreasing in g.
    #[test]
    fn qsm_family_bounds_monotone_in_g(pr in arb_params(), factor in 2f64..16.0) {
        let big = Params { g: pr.g * factor, l: pr.l * factor, ..pr };
        for b in TABLE1
            .iter()
            .filter(|b| b.metric == Metric::Time && b.model != Model::Bsp)
        {
            let (a, c) = ((b.eval)(&pr), (b.eval)(&big));
            prop_assert!(c >= a * 0.999, "{:?}: {} -> {}", b, a, c);
        }
    }

    /// Rounds bounds are non-increasing in the block size n/p.
    #[test]
    fn rounds_bounds_antitone_in_block(pr in arb_params()) {
        let small_block = Params { p: pr.n / 2.0, ..pr };
        let large_block = Params { p: (pr.n / 64.0).max(1.0), ..pr };
        for b in TABLE1.iter().filter(|b| b.metric == Metric::Rounds) {
            let few = (b.eval)(&large_block);
            let many = (b.eval)(&small_block);
            prop_assert!(many >= few * 0.999, "{:?}: {} !>= {}", b, many, few);
        }
    }

    /// Claim 2.1 consistency: mapping the GSM Parity theorem must produce
    /// values within a constant of the registry's QSM/s-QSM entries.
    #[test]
    fn mapped_gsm_bounds_match_registry_shape(n in 64f64..1e9, g in 2f64..64.0) {
        let pr = Params::qsm(n, g);
        let reg = best_lower_bound(Problem::Parity, Model::Qsm, Mode::Deterministic,
                                   Metric::Time, &pr).unwrap();
        let mapped = mapping::qsm_time(mapping::gsm_parity_det_time, n, g);
        let ratio = mapped / reg;
        prop_assert!((0.2..=5.0).contains(&ratio), "ratio {}", ratio);

        let reg = best_lower_bound(Problem::Parity, Model::SQsm, Mode::Deterministic,
                                   Metric::Time, &pr).unwrap();
        let mapped = mapping::sqsm_time(mapping::gsm_parity_det_time, n, g);
        let ratio = mapped / reg;
        prop_assert!((0.2..=5.0).contains(&ratio), "s-QSM ratio {}", ratio);
    }

    /// Upper-bound formulas dominate the matching lower bounds in the
    /// asymptotic regime. (n ≥ 2^40: below that, LAC's Ω(g·log* n)
    /// "with n processors" entry still exceeds its O(g·log log n)-flavoured
    /// upper bound — log* n = 5 beats log log n until n ≈ 2^32.)
    #[test]
    fn upper_dominates_lower_asymptotically(g in 2f64..64.0, e in 40u32..200) {
        let n = 2f64.powi(e as i32);
        let pr = Params { n, g, l: 8.0 * g, p: n };
        for (problem, mode) in [
            (Problem::Parity, Mode::Deterministic),
            (Problem::Or, Mode::Deterministic),
            (Problem::Lac, Mode::Randomized),
        ] {
            for model in [Model::Qsm, Model::SQsm, Model::Bsp] {
                let ub = upper_bound_time(problem, model, &pr).unwrap();
                let lb = best_lower_bound(problem, model, mode, Metric::Time, &pr).unwrap();
                prop_assert!(ub >= lb * 0.99, "{:?} {:?}: {} < {}", problem, model, ub, lb);
            }
        }
    }

    /// Rounds upper formulas dominate the rounds lower bounds (they are
    /// equal on the Θ rows).
    #[test]
    fn rounds_upper_dominates_lower(pr in arb_params()) {
        for problem in [Problem::Or, Problem::Parity] {
            for model in [Model::Qsm, Model::SQsm, Model::Bsp] {
                let ub = upper_bound_rounds(problem, model, &pr);
                let lb = best_lower_bound(problem, model, Mode::Randomized, Metric::Rounds, &pr)
                    .unwrap();
                prop_assert!(ub >= lb * 0.999, "{:?} {:?}", problem, model);
            }
        }
    }

    /// Safe-log conventions: lg/lglg/log* are monotone and ordered
    /// log* ≤ lglg ≤ lg for large arguments.
    #[test]
    fn log_helpers_ordered(x in 16f64..1e15) {
        prop_assert!(lg(x) >= lglg(x));
        prop_assert!(lglg(x) >= log_star(x) - 2.0); // within the additive slop
        prop_assert!(lg(x * 2.0) >= lg(x));
        prop_assert!(log_star(x * x) >= log_star(x));
    }
}
