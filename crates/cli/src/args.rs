//! Minimal flag parsing (`--key value` pairs and bare `--flag` booleans
//! after a subcommand) — no external dependency needed for a handful of
//! subcommands.

use std::collections::HashMap;

/// Parsed command line: subcommand plus `--key value` flags.
#[derive(Debug, Default)]
pub struct Args {
    /// The subcommand (first positional argument).
    pub command: String,
    flags: HashMap<String, String>,
}

impl Args {
    /// Parses `std::env::args`-style input (program name already stripped).
    pub fn parse<I: IntoIterator<Item = String>>(input: I) -> Result<Args, String> {
        let mut it = input.into_iter().peekable();
        let command = it.next().unwrap_or_default();
        let mut flags = HashMap::new();
        while let Some(tok) = it.next() {
            let key = tok
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --flag, got '{tok}'"))?;
            // `--flag value` consumes the value; a `--flag` followed by
            // another flag (or end of input) is a boolean.
            let value = match it.peek() {
                // `unwrap_or_default` instead of `unwrap`: the peek
                // guarantees a value, but argument parsing must not carry
                // a panic path.
                Some(v) if !v.starts_with("--") => it.next().unwrap_or_default(),
                _ => "true".to_string(),
            };
            flags.insert(key.to_string(), value);
        }
        Ok(Args { command, flags })
    }

    /// A boolean flag: present (bare or `--flag true`) means true.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.get(key).is_some_and(|v| v != "false")
    }

    /// A u64 flag with a default.
    pub fn u64(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} expects an integer, got '{v}'")),
        }
    }

    /// A usize flag with a default.
    pub fn usize(&self, key: &str, default: usize) -> Result<usize, String> {
        self.u64(key, default as u64).map(|v| v as usize)
    }

    /// A string flag with a default.
    pub fn str(&self, key: &str, default: &str) -> String {
        self.flags
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// Flags the caller never consumed (likely typos).
    pub fn assert_known(&self, known: &[&str]) -> Result<(), String> {
        for k in self.flags.keys() {
            if !known.contains(&k.as_str()) {
                return Err(format!("unknown flag --{k} (expected one of {known:?})"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Args, String> {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_subcommand_and_flags() {
        let a = parse("run --n 1024 --model sqsm").unwrap();
        assert_eq!(a.command, "run");
        assert_eq!(a.usize("n", 0).unwrap(), 1024);
        assert_eq!(a.str("model", "qsm"), "sqsm");
        assert_eq!(a.u64("g", 8).unwrap(), 8);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("run n 1024").is_err());
        // A value-less flag parses as a boolean, so numeric access fails.
        assert!(parse("run --n").unwrap().u64("n", 1).is_err());
        assert!(parse("run --n x").unwrap().u64("n", 1).is_err());
    }

    #[test]
    fn bare_flags_are_booleans() {
        let a = parse("lint --all --n 128").unwrap();
        assert!(a.flag("all"));
        assert!(!a.flag("list"));
        assert_eq!(a.usize("n", 0).unwrap(), 128);
        let a = parse("lint --list").unwrap();
        assert!(a.flag("list"));
    }

    #[test]
    fn unknown_flags_are_reported() {
        let a = parse("run --bogus 1").unwrap();
        assert!(a.assert_known(&["n", "g"]).is_err());
        let a = parse("run --n 4").unwrap();
        assert!(a.assert_known(&["n", "g"]).is_ok());
    }

    #[test]
    fn empty_input_gives_empty_command() {
        let a = parse("").unwrap();
        assert_eq!(a.command, "");
    }
}
