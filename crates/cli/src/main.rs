//! `parbounds` — run the SPAA'98 algorithms on the model simulators from
//! the command line and compare against the Table 1 bounds.
//!
//! ```text
//! parbounds tables    [--n N --g G --l L --p P]
//! parbounds run       --problem parity|or|lac --model qsm|sqsm|qsm-cr|gsm|bsp [--reference]
//!                     [--n N --g G --l L --p P --seed S --parallel K --compiled]
//! parbounds audit     [--r R --alpha A --beta B]
//! parbounds audit     --symbolic [--all | --family F] [--n N --list]
//! parbounds audit     --symbolic --mc [--family F --n N --seed S --samples K]
//! parbounds audit     --symbolic --differential [--max-r R]
//! parbounds audit     --symbolic --lint-gap [--n N]
//! parbounds adversary [--n N --mu MU --trials T]
//! parbounds emulate   [--n N --p P --g G --l L]
//! parbounds faults    [--n N --seed S]
//! parbounds lint      [--all | --family F] [--n N --seed S --list]
//! parbounds analyze   --static [--all | --family F] [--n N --seed S --list --parallel K
//!                     --compiled]
//! parbounds analyze   --symbolic [--all | --family F] [--n N --list]
//! parbounds serve     [--addr HOST:PORT | --stdio] [--workers K --queue-cap Q
//!                     --deadline-ms D --budget B --cache-cap C]
//! parbounds soak      [--smoke] [--seed S --requests R --clients C --workers K --out PATH]
//! ```

#![forbid(unsafe_code)]

mod args;

use args::Args;

use parbounds::adversary::{
    audit_parity_program, or_success_rate, probe_k_or, DegreeAudit, OrDistribution,
};
use parbounds::algo::{bsp_algos, emulation, gsm_algos, lac, or_tree, parity, reduce, workloads};
use parbounds::models::{
    BspMachine, GsmEnv, GsmFnProgram, GsmMachine, GsmProgram, ModelError, Parallelism, QsmMachine,
    Status, Word,
};
use parbounds::tables::{
    best_lower_bound, render_rounds_table, render_time_table, upper_bound_time, Metric, Mode,
    Model, Params, Problem,
};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(argv) {
        Ok(()) => {}
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{}", usage());
            std::process::exit(2);
        }
    }
}

fn usage() -> &'static str {
    "usage:
  parbounds tables    [--n N --g G --l L --p P]
  parbounds run       --problem parity|or|lac --model qsm|sqsm|qsm-cr|gsm|bsp \\
                      [--n N --g G --l L --p P --seed S --reference --parallel K --compiled]
  parbounds audit     [--r R --alpha A --beta B]
  parbounds audit     --symbolic [--all | --family F] [--n N --list]
  parbounds audit     --symbolic --mc [--family F --n N --seed S --samples K]
  parbounds audit     --symbolic --differential [--max-r R]
  parbounds audit     --symbolic --lint-gap [--n N]
  parbounds adversary [--n N --mu MU --trials T]
  parbounds emulate   [--n N --p P --g G --l L]
  parbounds faults    [--n N --seed S]
  parbounds lint      [--all | --family F] [--n N --seed S --list]
  parbounds analyze   --static [--all | --family F] [--n N --seed S --list --parallel K \\
                      --compiled]
  parbounds analyze   --symbolic [--all | --family F] [--n N --list]
  parbounds serve     [--addr HOST:PORT | --stdio] [--workers K --queue-cap Q \\
                      --deadline-ms D --budget B --cache-cap C]
  parbounds soak      [--smoke] [--seed S --requests R --clients C --workers K --out PATH]"
}

fn run(argv: Vec<String>) -> Result<(), String> {
    let args = Args::parse(argv)?;
    match args.command.as_str() {
        "tables" => cmd_tables(&args),
        "run" => cmd_run(&args),
        "audit" => cmd_audit(&args),
        "adversary" => cmd_adversary(&args),
        "emulate" => cmd_emulate(&args),
        "faults" => cmd_faults(&args),
        "lint" => cmd_lint(&args),
        "analyze" => cmd_analyze(&args),
        "serve" => cmd_serve(&args),
        "soak" => cmd_soak(&args),
        "" | "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown subcommand '{other}'")),
    }
}

fn cmd_tables(args: &Args) -> Result<(), String> {
    args.assert_known(&["n", "g", "l", "p"])?;
    let n = args.u64("n", 1 << 20)? as f64;
    let g = args.u64("g", 8)? as f64;
    let l = args.u64("l", 64)? as f64;
    let p = args.u64("p", 4096)? as f64;
    let pr = Params { n, g, l, p };
    println!("{}", render_time_table(Model::Qsm, &pr));
    println!();
    println!("{}", render_time_table(Model::SQsm, &pr));
    println!();
    println!("{}", render_time_table(Model::Bsp, &pr));
    println!();
    println!("{}", render_rounds_table(&pr));
    Ok(())
}

/// Resolves the `--parallel K` flag for `parbounds run`. `0` (the default)
/// keeps the single-threaded dense path. Combining `--parallel` with
/// `--reference` is rejected with a typed [`ModelError::BadConfig`]: the
/// reference engines *are* the single-threaded executable spec, so there
/// is no parallel variant of them to run.
fn run_parallelism(threads: usize, reference: bool) -> Result<Parallelism, String> {
    if threads > 0 && reference {
        return Err(ModelError::BadConfig(
            "--parallel cannot be combined with --reference: the reference \
             engines are the single-threaded executable spec"
                .into(),
        )
        .to_string());
    }
    Ok(if threads > 0 {
        Parallelism::Fixed(threads)
    } else {
        Parallelism::Off
    })
}

/// Resolves the `--compiled` flag for `parbounds run`. Combining
/// `--compiled` with `--reference` is rejected with a typed
/// [`ModelError::BadConfig`]: the reference engines specify exactly the
/// routing, conflict-check and arbitration machinery the compiled
/// schedule elides, so there is no reference variant of the compiled path
/// to run. (Fault plans are handled at the executor level — a faulted
/// machine always falls back to the checked interpreter.)
fn run_compiled_flag(flag: bool, reference: bool) -> Result<bool, String> {
    if flag && reference {
        return Err(ModelError::BadConfig(
            "--compiled cannot be combined with --reference: the reference \
             engines specify the routing and arbitration the compiled \
             schedule elides"
                .into(),
        )
        .to_string());
    }
    Ok(flag)
}

/// Machine-grid knobs a `run --compiled` invocation carries to the plan
/// builders: input size, gap/latency/processor parameters, workload seed
/// and the intra-phase parallelism the executor shards with.
struct CompiledRunCfg {
    n: usize,
    g: u64,
    l: u64,
    p: usize,
    seed: u64,
    parallelism: Parallelism,
}

/// `parbounds run --compiled`: lifts the `(problem, model)` pair onto its
/// PhaseIR family, compiles the plan to a straight-line schedule
/// (`ir::compile`), and runs it — honoring `--parallel K` through the
/// sharded-apply executor. Pairs without a PhaseIR lift are a typed
/// `BadConfig`.
fn run_compiled_lift(
    problem: &str,
    model: &str,
    cfg: &CompiledRunCfg,
) -> Result<(Word, u64, usize, &'static str), String> {
    use parbounds::algo::or_tree::or_default_fanin;
    use parbounds::ir::{
        bsp_fan_in_reduce, compile_plan, fan_in_read_tree, fan_in_write_tree, run_compiled_batch,
        run_compiled_msg_batch, CombineOp, CompileOutcome, ModelKind, PhasePlan,
    };

    let &CompiledRunCfg {
        n,
        g,
        l,
        p,
        seed,
        parallelism,
    } = cfg;
    let bsp_k = ((l / g.max(1)) as usize).max(2);
    let (plan, algo): (PhasePlan, &'static str) = match (problem, model) {
        ("parity", "sqsm") => (
            fan_in_read_tree(n, 2, CombineOp::Xor, ModelKind::SQsm { g }),
            "binary read tree (compiled)",
        ),
        ("or", "qsm") => (
            fan_in_write_tree(n, or_default_fanin(g), ModelKind::Qsm { g }),
            "write-combining tree (compiled)",
        ),
        ("or", "sqsm") => (
            fan_in_write_tree(n, 2, ModelKind::SQsm { g }),
            "binary write tree (compiled)",
        ),
        ("parity", "bsp") => (
            bsp_fan_in_reduce(p, bsp_k, CombineOp::Xor, g, l),
            "fan-in L/g reduction (compiled)",
        ),
        ("or", "bsp") => (
            bsp_fan_in_reduce(p, bsp_k, CombineOp::Or, g, l),
            "fan-in L/g reduction (compiled)",
        ),
        (pb, md) => {
            return Err(ModelError::BadConfig(format!(
                "--compiled has no PhaseIR lift for problem '{pb}' on model '{md}' \
                 (compiled pairs: parity/or on sqsm, or on qsm, parity/or on bsp)"
            ))
            .to_string())
        }
    };
    let cp = match compile_plan(&plan).map_err(|e| e.to_string())? {
        CompileOutcome::Compiled(cp) => cp,
        CompileOutcome::Ineligible(why) => {
            return Err(format!(
                "plan '{}' cannot take the compiled path: {}",
                plan.family,
                why.describe()
            ))
        }
    };
    let bits = workloads::random_bits(n, seed);
    let run = if let ModelKind::Bsp { p, g, l } = plan.model {
        let m = BspMachine::new(p, g, l)
            .map_err(|e| e.to_string())?
            .with_parallelism(parallelism);
        run_compiled_msg_batch(&plan, &cp, &m, &bits).map_err(|e| e.to_string())?
    } else {
        let m = match plan.model {
            ModelKind::Qsm { g } => QsmMachine::qsm(g),
            ModelKind::SQsm { g } => QsmMachine::sqsm(g),
            _ => unreachable!("compiled lifts are QSM/s-QSM/BSP"),
        }
        .with_parallelism(parallelism);
        run_compiled_batch(&plan, &cp, &m, &bits).map_err(|e| e.to_string())?
    };
    let value = run.output.first().copied().unwrap_or(0);
    Ok((
        value,
        run.ledger.total_time(),
        run.ledger.num_phases(),
        algo,
    ))
}

fn cmd_run(args: &Args) -> Result<(), String> {
    args.assert_known(&[
        "problem",
        "model",
        "n",
        "g",
        "l",
        "p",
        "seed",
        "reference",
        "parallel",
        "compiled",
    ])?;
    let n = args.usize("n", 4096)?;
    let g = args.u64("g", 8)?;
    let l = args.u64("l", 8 * g)?;
    let p = args.usize("p", 64)?;
    let seed = args.u64("seed", 42)?;
    let problem = args.str("problem", "parity");
    let model = args.str("model", "qsm");
    // `--reference` runs on the pre-fast-path map-based engines (the
    // executable spec of the dense routing tables) — results are identical,
    // only wall-clock differs; useful for quick A/B sanity checks.
    let reference = args.flag("reference");
    // `--parallel K` shards the inside of every phase across K host worker
    // threads; results stay bit-identical to the single-threaded path.
    let threads = args.usize("parallel", 0)?;
    let parallelism = run_parallelism(threads, reference)?;
    // `--compiled` runs the problem's PhaseIR lift through the plan
    // compiler instead of the closure-dispatch algorithms.
    let compiled = run_compiled_flag(args.flag("compiled"), reference)?;
    let qsm = |m: QsmMachine| {
        let m = m.with_parallelism(parallelism);
        if reference {
            m.with_reference_routing()
        } else {
            m
        }
    };
    let gsm = |m: GsmMachine| {
        let m = m.with_parallelism(parallelism);
        if reference {
            m.with_reference_routing()
        } else {
            m
        }
    };
    let bsp = |m: BspMachine| {
        let m = m.with_parallelism(parallelism);
        if reference {
            m.with_reference_routing()
        } else {
            m
        }
    };

    let bits = workloads::random_bits(n, seed);
    let items = workloads::sparse_items(n, (n / 8).max(1), seed);

    let (value, time, phases, algo): (Word, u64, usize, &str) = if compiled {
        run_compiled_lift(
            problem.as_str(),
            model.as_str(),
            &CompiledRunCfg {
                n,
                g,
                l,
                p,
                seed,
                parallelism,
            },
        )?
    } else {
        match (problem.as_str(), model.as_str()) {
            ("parity", "qsm") => {
                let m = qsm(QsmMachine::qsm(g));
                let k = parity::parity_helper_default_k(&m);
                let o = parity::parity_pattern_helper(&m, &bits, k).map_err(|e| e.to_string())?;
                (o.value, o.run.time(), o.run.phases(), "pattern-helper")
            }
            ("parity", "qsm-cr") => {
                let m = qsm(QsmMachine::qsm_unit_cr(g));
                let k = parity::parity_helper_default_k(&m);
                let o = parity::parity_pattern_helper(&m, &bits, k).map_err(|e| e.to_string())?;
                (
                    o.value,
                    o.run.time(),
                    o.run.phases(),
                    "pattern-helper (unit CR)",
                )
            }
            ("parity", "sqsm") => {
                let m = qsm(QsmMachine::sqsm(g));
                let o = reduce::parity_read_tree(&m, &bits, 2).map_err(|e| e.to_string())?;
                (o.value, o.run.time(), o.run.phases(), "binary read tree")
            }
            ("parity", "gsm") => {
                let m = gsm(GsmMachine::new(1, g, 1));
                let o = gsm_algos::gsm_parity(&m, &bits).map_err(|e| e.to_string())?;
                (
                    o.value,
                    o.run.time(),
                    o.run.ledger.num_phases(),
                    "strong-queuing tree",
                )
            }
            ("parity", "bsp") => {
                let m = bsp(BspMachine::new(p, g, l).map_err(|e| e.to_string())?);
                let o = bsp_algos::bsp_parity(&m, &bits).map_err(|e| e.to_string())?;
                (o.value, o.time(), o.supersteps(), "fan-in L/g reduction")
            }
            ("or", "qsm") => {
                let m = qsm(QsmMachine::qsm(g));
                let o = or_tree::or_write_tree(&m, &bits, g as usize).map_err(|e| e.to_string())?;
                (
                    o.value,
                    o.run.time(),
                    o.run.phases(),
                    "write-combining tree",
                )
            }
            ("or", "sqsm") => {
                let m = qsm(QsmMachine::sqsm(g));
                let o = or_tree::or_write_tree(&m, &bits, 2).map_err(|e| e.to_string())?;
                (o.value, o.run.time(), o.run.phases(), "binary write tree")
            }
            ("or", "gsm") => {
                let m = gsm(GsmMachine::new(1, g, 1));
                let o = gsm_algos::gsm_or(&m, &bits).map_err(|e| e.to_string())?;
                (
                    o.value,
                    o.run.time(),
                    o.run.ledger.num_phases(),
                    "strong-queuing tree",
                )
            }
            ("or", "bsp") => {
                let m = bsp(BspMachine::new(p, g, l).map_err(|e| e.to_string())?);
                let o = bsp_algos::bsp_or(&m, &bits).map_err(|e| e.to_string())?;
                (o.value, o.time(), o.supersteps(), "fan-in L/g reduction")
            }
            ("lac", "qsm" | "sqsm") => {
                let m = qsm(if model == "qsm" {
                    QsmMachine::qsm(g)
                } else {
                    QsmMachine::sqsm(g)
                });
                let o =
                    lac::lac_dart(&m, &items, (n / 8).max(1), seed).map_err(|e| e.to_string())?;
                if !o.verify(&items) {
                    return Err("LAC verification failed".into());
                }
                let placed = o.dest().iter().filter(|&&v| v != 0).count() as Word;
                (placed, o.run.time(), o.run.phases(), "dart-throwing")
            }
            ("lac", "bsp") => {
                let m = bsp(BspMachine::new(p, g, l).map_err(|e| e.to_string())?);
                let o = bsp_algos::bsp_lac_dart(&m, &items, (n / 8).max(1), seed)
                    .map_err(|e| e.to_string())?;
                if !o.verify(&items) {
                    return Err("BSP LAC verification failed".into());
                }
                (
                    o.placed.len() as Word,
                    o.ledger.total_time(),
                    o.ledger.num_phases(),
                    "message darts",
                )
            }
            (pb, md) => return Err(format!("no algorithm for problem '{pb}' on model '{md}'")),
        }
    };

    println!("problem   : {problem} (n = {n})");
    println!(
        "model     : {model} (g = {g}{})",
        if model == "bsp" {
            format!(", L = {l}, p = {p}")
        } else {
            String::new()
        }
    );
    println!("algorithm : {algo}");
    println!(
        "routing   : {}",
        if reference {
            "reference (map-based)"
        } else if compiled {
            "compiled straight-line schedule"
        } else {
            "dense"
        }
    );
    if threads > 0 {
        println!("parallel  : {threads} host worker thread(s)");
    }
    println!("result    : {value}");
    println!("model time: {time}   phases/supersteps: {phases}");

    // Bound context where the registry covers the model.
    let table_model = match model.as_str() {
        "qsm" | "qsm-cr" => Some(Model::Qsm),
        "sqsm" => Some(Model::SQsm),
        "bsp" => Some(Model::Bsp),
        _ => None,
    };
    let table_problem = match problem.as_str() {
        "parity" => Problem::Parity,
        "or" => Problem::Or,
        _ => Problem::Lac,
    };
    if let Some(tm) = table_model {
        let pr = Params {
            n: n as f64,
            g: g as f64,
            l: l as f64,
            p: p as f64,
        };
        if let Some(lb) =
            best_lower_bound(table_problem, tm, Mode::Deterministic, Metric::Time, &pr)
        {
            println!("det LB    : {lb:.1}");
        }
        if let Some(lb) = best_lower_bound(table_problem, tm, Mode::Randomized, Metric::Time, &pr) {
            println!("rand LB   : {lb:.1}");
        }
        if let Some(ub) = upper_bound_time(table_problem, tm, &pr) {
            println!(
                "UB formula: {ub:.1}   measured/UB = {:.2}",
                time as f64 / ub
            );
        }
    }
    Ok(())
}

fn cmd_faults(args: &Args) -> Result<(), String> {
    args.assert_known(&["n", "seed"])?;
    let n = args.usize("n", 64)?;
    let seed = args.u64("seed", 7)?;
    let grid = parbounds::degradation_grid(n, seed).map_err(|e| e.to_string())?;
    println!("robustness / graceful-degradation grid (n = {n}, seed = {seed})");
    println!();
    print!("{}", grid.render());
    println!();
    println!(
        "{} of {} cells completed with a verified answer; the rest degraded to typed errors.",
        grid.completed(),
        grid.rows.len()
    );
    Ok(())
}

fn cmd_lint(args: &Args) -> Result<(), String> {
    args.assert_known(&["all", "family", "n", "seed", "list"])?;
    use parbounds::analyze::{analyze_all, analyze_family, AnalysisReport, SuiteConfig, FAMILIES};

    if args.flag("list") {
        println!("registered analysis families:");
        for f in FAMILIES {
            println!("  {f}");
        }
        println!("  racy-fixture (deliberately racy demo; never clean)");
        return Ok(());
    }

    let n = args.usize("n", 256)?;
    let seed = args.u64("seed", 42)?;
    let cfg = SuiteConfig::standard(n, seed);
    let family = args.str("family", "");

    let report = if family.is_empty() || args.flag("all") {
        analyze_all(&cfg).map_err(|e| e.to_string())?
    } else {
        AnalysisReport {
            families: vec![analyze_family(&family, &cfg).map_err(|e| e.to_string())?],
        }
    };
    print!("{}", report.render());
    if !report.clean() {
        std::process::exit(1);
    }
    Ok(())
}

fn cmd_analyze(args: &Args) -> Result<(), String> {
    args.assert_known(&[
        "static", "symbolic", "all", "family", "n", "seed", "list", "parallel", "compiled",
    ])?;
    use parbounds::analyze::{
        analyze_static_all, analyze_static_family, ir_family_plan, lint_compile, lint_parallelism,
        StaticReport, IR_FAMILIES,
    };
    use parbounds::tables::{render_static_table, StaticRow};

    if args.flag("symbolic") {
        return cmd_analyze_symbolic(args);
    }
    if !args.flag("static") {
        return Err(
            "parbounds analyze requires --static (pre-execution plan analysis) or \
             --symbolic (Θ-normal-form ledgers vs Table 1); dynamic trace analysis \
             lives under `parbounds lint`"
                .into(),
        );
    }
    if args.flag("list") {
        println!("registered PhaseIR families:");
        for f in IR_FAMILIES {
            println!("  {f}");
        }
        println!("  racy-plan (deliberately racy fixture; never clean)");
        return Ok(());
    }

    let n = args.usize("n", 256)?;
    let seed = args.u64("seed", 42)?;
    let family = args.str("family", "");

    let report = if family.is_empty() || args.flag("all") {
        analyze_static_all(n, seed).map_err(|e| e.to_string())?
    } else {
        StaticReport {
            families: vec![analyze_static_family(&family, n, seed).map_err(|e| e.to_string())?],
        }
    };
    print!("{}", report.render());
    println!();
    let rows: Vec<StaticRow> = report
        .families
        .iter()
        .map(|f| StaticRow {
            family: f.family.to_string(),
            model: f.model.to_string(),
            phases: f.phases,
            predicted: f.predicted_time,
            measured: Some(f.measured_time),
            formula: f.formula,
        })
        .collect();
    print!("{}", render_static_table(&rows));
    // `--parallel K`: additionally check each analyzed plan against the
    // requested intra-phase thread count (the parallel-underfill lint —
    // warns when a plan has fewer processors than host workers, so the
    // extra shards would stay empty every phase).
    let threads = args.usize("parallel", 0)?;
    if threads > 0 {
        println!();
        println!("parallelism fit at {threads} host worker thread(s):");
        for f in &report.families {
            let (_, plan, _) = ir_family_plan(f.family, n, seed).map_err(|e| e.to_string())?;
            let diags = lint_parallelism(&plan, threads).map_err(|e| e.to_string())?;
            if diags.is_empty() {
                println!("  {:<17} ok ({} processor(s))", f.family, plan.procs);
            } else {
                for d in &diags {
                    println!("  {:<17} {d}", f.family);
                }
            }
        }
    }
    // `--compiled`: report each analyzed plan's eligibility for the
    // straight-line compiled fast path (the compile-ineligible lint). A
    // flagged plan still runs — on the checked interpreter — but the
    // report exits non-zero so CI can pin which families compile.
    let mut compile_clean = true;
    if args.flag("compiled") {
        println!();
        println!("plan compilation eligibility:");
        for f in &report.families {
            let (_, plan, _) = ir_family_plan(f.family, n, seed).map_err(|e| e.to_string())?;
            let diags = lint_compile(&plan).map_err(|e| e.to_string())?;
            if diags.is_empty() {
                println!(
                    "  {:<17} compiled ({} phase(s), straight-line)",
                    f.family,
                    plan.num_phases()
                );
            } else {
                compile_clean = false;
                for d in &diags {
                    println!("  {:<17} {d}", f.family);
                }
            }
        }
    }
    if !report.clean() || !compile_clean {
        std::process::exit(1);
    }
    Ok(())
}

/// `parbounds analyze --symbolic`: the Θ-normal-form conformance suite —
/// derive each family's symbolic ledger, compare its normal form against
/// the Table 1 fixture, verify the Claim 2.1/2.2 mappings, and anchor the
/// algebra with a bit-identical evaluation at the suite point.
fn cmd_analyze_symbolic(args: &Args) -> Result<(), String> {
    use parbounds::analyze::symbolic::{
        analyze_symbolic_all, analyze_symbolic_family, check_claims, SymbolicReport,
        SYMBOLIC_FAMILIES,
    };
    use parbounds::tables::{render_symbolic_table, SymbolicRow};

    if args.flag("list") {
        println!("symbolically covered PhaseIR families:");
        for f in SYMBOLIC_FAMILIES {
            println!("  {f}");
        }
        println!("  or-write-tree-padded (deliberately padded fixture; trips bound-regression)");
        return Ok(());
    }

    let n = args.usize("n", 256)?;
    let family = args.str("family", "");
    let report = if family.is_empty() || args.flag("all") {
        analyze_symbolic_all(n).map_err(|e| e.to_string())?
    } else {
        SymbolicReport {
            families: vec![analyze_symbolic_family(&family, n).map_err(|e| e.to_string())?],
            claims: check_claims().map_err(|e| e.to_string())?,
        }
    };

    let rows: Vec<SymbolicRow> = report
        .families
        .iter()
        .map(|f| SymbolicRow {
            family: f.conformance.family.to_string(),
            model: f.conformance.model.to_string(),
            derived: f.conformance.derived.to_string(),
            fixture: f.conformance.fixture.to_string(),
            verdict: f.conformance.verdict().to_string(),
            symbolic: f.symbolic_total,
            numeric: f.numeric_total,
        })
        .collect();
    print!("{}", render_symbolic_table(&rows));

    println!();
    println!("symbolic-vs-numeric grid differential:");
    for f in &report.families {
        let d = &f.differential;
        if d.clean() {
            println!("  {:<20} {} point(s), bit-identical", d.family, d.points);
        } else {
            println!(
                "  {:<20} {} point(s), {} MISMATCH(ES):",
                d.family,
                d.points,
                d.mismatches.len()
            );
            for m in &d.mismatches {
                println!("    {m}");
            }
        }
    }

    println!();
    println!("cross-model mapping claims:");
    for c in &report.claims {
        let verdict = if c.holds { "holds" } else { "FAILS" };
        println!("  {:<40} {} ≡ {} … {verdict}", c.claim, c.mapped, c.row);
    }

    if !report.clean() {
        std::process::exit(1);
    }
    Ok(())
}

/// `parbounds serve`: the cost-oracle service over TCP (or stdio, one
/// line-delimited JSON request per line — handy for piping and tests).
fn cmd_serve(args: &Args) -> Result<(), String> {
    args.assert_known(&[
        "addr",
        "stdio",
        "workers",
        "queue-cap",
        "deadline-ms",
        "budget",
        "cache-cap",
    ])?;
    use parbounds::serve::{OracleConfig, Server, ServerConfig};
    use std::time::Duration;

    let stdio = args.flag("stdio");
    let addr = args.str("addr", "127.0.0.1:7411");
    let cfg = ServerConfig {
        workers: args.usize("workers", 0)?,
        queue_cap: args.usize("queue-cap", 64)?,
        oracle: OracleConfig {
            cache_cap: args.usize("cache-cap", 1024)?,
            default_deadline: Duration::from_millis(args.u64("deadline-ms", 2_000)?),
            tenant_budget: args.u64("budget", u64::MAX)?,
        },
        ..ServerConfig::default()
    };
    if cfg.queue_cap == 0 {
        return Err(ModelError::BadConfig("--queue-cap must be positive".into()).to_string());
    }

    let server = std::sync::Arc::new(Server::start(cfg));
    if stdio {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        server.serve_connection(stdin.lock(), stdout.lock());
        return Ok(());
    }
    let listener = std::net::TcpListener::bind(&addr)
        .map_err(|e| ModelError::Io(format!("cannot bind {addr}: {e}")).to_string())?;
    eprintln!("parbounds serve: listening on {addr}");
    server
        .serve_tcp(listener)
        .map_err(|e| ModelError::Io(format!("accept loop failed: {e}")).to_string())
}

/// `parbounds soak`: the chaos/soak harness. Exits nonzero when any
/// robustness invariant is violated; `--out PATH` writes the JSON report.
fn cmd_soak(args: &Args) -> Result<(), String> {
    args.assert_known(&[
        "smoke", "seed", "requests", "clients", "batches", "workers", "out",
    ])?;
    use parbounds_bench::soak::{run_soak, SoakConfig};

    let base = SoakConfig::smoke();
    let cfg = SoakConfig {
        seed: args.u64("seed", base.seed)?,
        requests: args.usize("requests", base.requests)?,
        clients: args.usize("clients", base.clients)?,
        batches: args.usize("batches", base.batches)?,
        workers: args.usize("workers", base.workers)?,
        ..base
    };
    if cfg.requests == 0 || cfg.clients == 0 || cfg.batches == 0 {
        return Err(ModelError::BadConfig(
            "--requests, --clients and --batches must be positive".into(),
        )
        .to_string());
    }

    let report = run_soak(&cfg);
    print!("{}", report.render());
    if let Some(path) = {
        let p = args.str("out", "");
        if p.is_empty() {
            None
        } else {
            Some(p)
        }
    } {
        std::fs::write(&path, report.to_json(&cfg))
            .map_err(|e| ModelError::Io(format!("cannot write {path}: {e}")).to_string())?;
        println!("report written to {path}");
    }
    if !report.passed() {
        std::process::exit(1);
    }
    Ok(())
}

fn cmd_audit(args: &Args) -> Result<(), String> {
    args.assert_known(&[
        "r",
        "alpha",
        "beta",
        "symbolic",
        "all",
        "family",
        "n",
        "mc",
        "seed",
        "samples",
        "list",
        "differential",
        "max-r",
        "lint-gap",
    ])?;
    if args.flag("symbolic") {
        return cmd_audit_symbolic(args);
    }
    let r = args.usize("r", 8)?;
    if r > 14 {
        return Err("--r must be <= 14 (exhaustive over 2^r inputs)".into());
    }
    let alpha = args.u64("alpha", 1)?;
    let beta = args.u64("beta", 1)?;
    let machine = GsmMachine::new(alpha, beta, 1);
    let (prog, out) = tree_parity(r);
    drop(prog);
    let report =
        audit_parity_program(&machine, || tree_parity(r).0, out, r).map_err(|e| e.to_string())?;
    println!("degree audit: tree parity, r = {r}, GSM({alpha}, {beta}, 1)");
    println!("correct on all 2^{r} inputs : {}", report.correct);
    println!(
        "degree cap log2(b_l)       : {:.2} (needs >= log2 r = {:.2}) -> {}",
        report.worst.final_log2_cap(),
        (r as f64).log2(),
        if report.worst.supports_degree(r) {
            "OK"
        } else {
            "VIOLATION"
        }
    );
    println!(
        "measured worst time        : {} (Theorem 3.1 value {:.2})",
        report.max_time,
        DegreeAudit::theorem_3_1_bound(machine.mu(), r)
    );
    Ok(())
}

/// `parbounds audit --symbolic`: the memoized lower-bound audit suite.
/// Walks each registered family's budget-respecting refinement trajectory
/// at large `n`, checks every step t-good in the log domain, and pairs the
/// Know-completion lower bound (Θ-normal form) with the Table 1 upper
/// fixture. `--differential` gates the memoized closed forms against the
/// `2^r` enumeration; `--mc` runs the seeded Monte-Carlo adversary;
/// `--lint-gap` runs the audit-gap lint over the swept families (the
/// padded fixture has deliberately no audit, so this exits nonzero).
fn cmd_audit_symbolic(args: &Args) -> Result<(), String> {
    use parbounds::adversary::symbolic::{
        audit_all, audit_family, lint_audit_gap, mc_audit, paper_horizon, AuditStyle, AuditVerdict,
        AUDIT_FAMILIES,
    };
    use parbounds::tables::{render_audit_table, AuditRow};

    if args.flag("list") {
        println!("families with registered lower-bound audits:");
        for f in AUDIT_FAMILIES {
            let style = match f.style {
                AuditStyle::Fold(op) => format!("fold ({op:?})"),
                AuditStyle::Spread => "spread".into(),
                AuditStyle::Single => "single-round".into(),
            };
            println!("  {:<18} {style}", f.name);
        }
        println!("  or-write-tree-padded (swept but unaudited; trips the audit-gap lint)");
        return Ok(());
    }

    let n = args.usize("n", 4096)?;

    if args.flag("differential") {
        let max_r = args.usize("max-r", 6)?;
        let (comparisons, mismatches) =
            parbounds::adversary::symbolic::audit_differential(max_r).map_err(|e| e.to_string())?;
        println!(
            "audit differential: memoized vs enumerative goodness, n <= {max_r}, \
             fans 2-3, XOR and OR"
        );
        println!("comparisons : {comparisons}");
        println!("mismatches  : {}", mismatches.len());
        for m in mismatches.iter().take(5) {
            println!(
                "  shape {:?} t={} exact {:?} memo {:?}",
                m.shape, m.t, m.exact, m.memo
            );
        }
        if !mismatches.is_empty() {
            std::process::exit(1);
        }
        return Ok(());
    }

    if args.flag("lint-gap") {
        let diags = lint_audit_gap(n as u64, n as u64);
        println!("audit-gap lint over the symbolic sweep registry (n = {n}):");
        if diags.is_empty() {
            println!("  clean: every swept family has an up-to-date audit");
            return Ok(());
        }
        for d in &diags {
            println!("  {d}");
        }
        std::process::exit(1);
    }

    if args.flag("mc") {
        let family = args.str("family", "parity-read-tree");
        let seed = args.u64("seed", 42)?;
        let samples = args.u64("samples", 64)?;
        let out = mc_audit(&family, n, seed, samples).map_err(|e| e.to_string())?;
        println!(
            "Monte-Carlo adversary: {} at size {}, fan {}, t = {} (Know completion)",
            out.family, out.size, out.fan, out.t
        );
        let e = out.estimate;
        println!(
            "seed {} / {} samples : {} trace flips",
            out.seed, e.samples, e.successes
        );
        println!(
            "sensitivity          : {:.3} (95% Wilson [{:.3}, {:.3}])",
            e.p_hat, e.lo, e.hi
        );
        if e.successes == 0 {
            println!("VIOLATION: root trace insensitive at Know-completion time");
            std::process::exit(1);
        }
        return Ok(());
    }

    let family = args.str("family", "");
    let outcomes = if family.is_empty() || args.flag("all") {
        audit_all(n).map_err(|e| e.to_string())?
    } else {
        vec![audit_family(&family, n).map_err(|e| e.to_string())?]
    };
    let rows: Vec<AuditRow> = outcomes
        .iter()
        .map(|o| AuditRow {
            family: o.family.to_string(),
            size: o.size,
            fan: o.fan,
            steps: o.steps_checked,
            clamped: o.budget_clamped,
            lower: o.lower_theta.to_string(),
            upper: o.upper_theta.to_string(),
            verdict: match o.verdict {
                AuditVerdict::Violation => "VIOLATION".into(),
                v => v.name().to_string(),
            },
        })
        .collect();
    print!("{}", render_audit_table(&rows));
    println!();
    println!(
        "trajectory accounting (paper horizon ⌊n^(1/3)⌋ = {}):",
        paper_horizon(n as u64)
    );
    for o in &outcomes {
        println!(
            "  {:<18} levels {:>2}, Know complete at t = {:>2}, {} live set entries ({})",
            o.family,
            o.levels,
            o.t_know,
            o.peak_set_entries,
            if o.all_good {
                "all steps t-good"
            } else {
                "NOT t-good"
            }
        );
    }
    if outcomes.iter().any(|o| !o.passed()) {
        std::process::exit(1);
    }
    Ok(())
}

fn cmd_adversary(args: &Args) -> Result<(), String> {
    args.assert_known(&["n", "mu", "trials"])?;
    let n = args.usize("n", 1 << 12)?;
    let mu = args.u64("mu", 2)?;
    let trials = args.usize("trials", 3000)?;
    let dist = OrDistribution::new(n, mu, 1);
    println!(
        "OR adversary: n = {n}, mu = {mu}, {} mixture components",
        dist.num_components()
    );
    let honest = |input: &[Word]| Word::from(input.iter().any(|&b| b != 0));
    println!(
        "honest OR        : {:.3}",
        or_success_rate(honest, &dist, trials, 1)
    );
    for k in [1usize, 4, 16, 64, n / 4] {
        println!(
            "probe {k:>6}     : {:.3}",
            or_success_rate(probe_k_or(k), &dist, trials, k as u64)
        );
    }
    println!(
        "constant 0       : {:.3}",
        or_success_rate(|_| 0, &dist, trials, 9)
    );
    Ok(())
}

fn cmd_emulate(args: &Args) -> Result<(), String> {
    args.assert_known(&["n", "p", "g", "l"])?;
    let n = args.usize("n", 256)?;
    let p = args.usize("p", 8)?;
    let g = args.u64("g", 2)?;
    let l = args.u64("l", 16)?;
    let bits = workloads::random_bits(n, 7);
    let expected = bits.iter().sum::<Word>() % 2;
    let probe = QsmMachine::qsm(g);
    let bsp = BspMachine::new(p, g, l).map_err(|e| e.to_string())?;
    // Emulate the s-QSM binary-tree parity program... use the read tree via
    // a simple tournament (same program the emulation tests use).
    let prog = tournament_parity(n);
    let out =
        emulation::emulate_qsm_on_bsp(&bsp, &probe, &prog, &bits).map_err(|e| e.to_string())?;
    println!("QSM-on-BSP emulation: tournament parity, n = {n}, BSP({p}, {g}, {l})");
    println!("emulated result : {} (expected {expected})", out.get(2 * n));
    println!(
        "QSM phases      : {}   native QSM time: {}",
        out.qsm_phases, out.qsm_time
    );
    println!(
        "BSP supersteps  : {}   emulated BSP time: {} ({}x native)",
        out.ledger.num_phases(),
        out.bsp_time(),
        out.bsp_time() / out.qsm_time.max(1)
    );
    if out.get(2 * n) != expected {
        return Err("emulated result mismatch".into());
    }
    Ok(())
}

/// Fan-in-2 GSM tree parity used by the audit subcommand.
fn tree_parity(r: usize) -> (impl GsmProgram<Proc = ()> + use<>, usize) {
    let mut nodes = Vec::new();
    let mut bases = vec![0usize];
    let (mut width, mut next, mut level, mut out) = (r, r, 1usize, 0usize);
    while width > 1 {
        let w2 = width.div_ceil(2);
        bases.push(next);
        out = next;
        for j in 0..w2 {
            nodes.push((level, j, width));
        }
        next += w2;
        width = w2;
        level += 1;
    }
    let prog = GsmFnProgram::new(
        nodes.len().max(1),
        move |_| (),
        move |pid, _, env: &mut GsmEnv<'_>| {
            let (level, j, prev_width) = nodes[pid];
            let read_phase = 2 * (level - 1);
            match env.phase() {
                t if t < read_phase => Status::Active,
                t if t == read_phase => {
                    env.read(bases[level - 1] + 2 * j);
                    if 2 * j + 1 < prev_width {
                        env.read(bases[level - 1] + 2 * j + 1);
                    }
                    Status::Active
                }
                _ => {
                    let x: Word = env
                        .delivered()
                        .iter()
                        .map(|(_, c)| c.iter().fold(0, |a, &b| a ^ (b & 1)))
                        .fold(0, |a, b| a ^ b);
                    env.write(bases[level] + j, x);
                    Status::Done
                }
            }
        },
    );
    (prog, out)
}

/// QSM tournament parity (result at cell 2n) — the emulation demo program.
fn tournament_parity(n: usize) -> impl parbounds::models::Program<Proc = Word> {
    use parbounds::models::{FnProgram, PhaseEnv};
    let rounds = {
        let mut l = 0;
        let mut w = n.max(1);
        while w > 1 {
            w = w.div_ceil(2);
            l += 1;
        }
        l
    };
    FnProgram::new(
        n.max(1),
        |_| 0 as Word,
        move |pid, st: &mut Word, env: &mut PhaseEnv<'_>| {
            let t = env.phase();
            if t == 0 {
                env.read(pid);
                return Status::Active;
            }
            if t == 1 {
                *st = env.delivered()[0].1 & 1;
                env.write(n + pid, *st);
                return if pid < n.div_ceil(2) {
                    Status::Active
                } else {
                    Status::Done
                };
            }
            let r = t / 2;
            let width = n.div_ceil(1 << r);
            let prev_width = n.div_ceil(1 << (r - 1));
            if t % 2 == 0 {
                let partner = pid + width;
                if partner < prev_width {
                    env.read(n + partner);
                }
                Status::Active
            } else {
                if let Some(&(_, v)) = env.delivered().first() {
                    *st ^= v & 1;
                }
                env.write(n + pid, *st);
                if r >= rounds {
                    env.write(2 * n, *st);
                    Status::Done
                } else if pid < n.div_ceil(1 << (r + 1)) {
                    Status::Active
                } else {
                    Status::Done
                }
            }
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_flag_resolves_and_rejects_reference_combo() {
        assert_eq!(run_parallelism(0, false).unwrap(), Parallelism::Off);
        assert_eq!(run_parallelism(0, true).unwrap(), Parallelism::Off);
        assert_eq!(run_parallelism(4, false).unwrap(), Parallelism::Fixed(4));
        let err = run_parallelism(4, true).unwrap_err();
        assert!(
            err.contains("--parallel cannot be combined with --reference"),
            "{err}"
        );
        // The same rejection surfaces through the full subcommand path.
        let argv: Vec<String> = "run --problem or --model qsm --n 64 --reference --parallel 2"
            .split_whitespace()
            .map(String::from)
            .collect();
        let err = run(argv).unwrap_err();
        assert!(
            err.contains("--parallel cannot be combined with --reference"),
            "{err}"
        );
    }

    #[test]
    fn run_accepts_parallel_threads() {
        let argv: Vec<String> = "run --problem or --model sqsm --n 96 --parallel 3"
            .split_whitespace()
            .map(String::from)
            .collect();
        run(argv).unwrap();
    }

    #[test]
    fn compiled_flag_resolves_and_rejects_reference_combo() {
        assert!(!run_compiled_flag(false, false).unwrap());
        assert!(!run_compiled_flag(false, true).unwrap());
        assert!(run_compiled_flag(true, false).unwrap());
        let err = run_compiled_flag(true, true).unwrap_err();
        assert!(
            err.contains("--compiled cannot be combined with --reference"),
            "{err}"
        );
        // The same rejection surfaces through the full subcommand path.
        let argv: Vec<String> = "run --problem or --model qsm --n 64 --reference --compiled"
            .split_whitespace()
            .map(String::from)
            .collect();
        let err = run(argv).unwrap_err();
        assert!(
            err.contains("--compiled cannot be combined with --reference"),
            "{err}"
        );
        // Pairs without a PhaseIR lift are a typed BadConfig, not a crash.
        let argv: Vec<String> = "run --problem lac --model qsm --n 64 --compiled"
            .split_whitespace()
            .map(String::from)
            .collect();
        let err = run(argv).unwrap_err();
        assert!(err.contains("no PhaseIR lift"), "{err}");
    }

    #[test]
    fn run_accepts_compiled_and_compiled_parallel() {
        for line in [
            "run --problem or --model qsm --n 96 --compiled",
            "run --problem parity --model sqsm --n 96 --compiled --parallel 3",
            "run --problem parity --model bsp --n 96 --p 8 --compiled",
        ] {
            let argv: Vec<String> = line.split_whitespace().map(String::from).collect();
            run(argv).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
    }

    #[test]
    fn audit_symbolic_subcommands_run_end_to_end() {
        for line in [
            "audit --symbolic --family parity-read-tree --n 512",
            "audit --symbolic --mc --family parity-read-tree --n 256 --seed 7 --samples 8",
            "audit --symbolic --list",
        ] {
            let argv: Vec<String> = line.split_whitespace().map(String::from).collect();
            run(argv).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
        // Unknown family surfaces the registry in the error.
        let argv: Vec<String> = "audit --symbolic --family no-such-family"
            .split_whitespace()
            .map(String::from)
            .collect();
        let err = run(argv).unwrap_err();
        assert!(err.contains("no lower-bound audit registered"), "{err}");
    }
}
