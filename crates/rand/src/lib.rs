//! Offline drop-in replacement for the subset of the `rand` crate API this
//! workspace uses.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a minimal, API-compatible reimplementation of the
//! `rand 0.8` surface it needs: [`RngCore`], [`SeedableRng`], the [`Rng`]
//! extension trait (`gen`, `gen_bool`, `gen_range`), and the uniform-range
//! machinery backing `gen_range`. Generators themselves (ChaCha8) live in
//! the companion `rand_chacha` crate.
//!
//! Sampling quality notes:
//! * integer ranges use Lemire-style widening multiply with rejection, so
//!   they are exactly uniform;
//! * `f64` samples use the standard 53-bit mantissa construction on
//!   `[0, 1)`;
//! * `gen_bool(p)` compares a fresh `f64` sample against `p`, which is
//!   exact for `p = 0.0` and `p = 1.0` and within `2^-53` otherwise.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The core of a random number generator: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Constructs the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64`, expanding it to a full seed
    /// with SplitMix64 (the same scheme `rand 0.8` uses).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types samplable uniformly from a generator's raw output ("standard"
/// distribution in `rand` terms).
pub trait StandardSample: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics if empty.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types with a uniform sampler over half-open / closed ranges.
///
/// The blanket [`SampleRange`] impls below go through this trait so that a
/// literal like `0..4` unifies with the surrounding expression's integer
/// type instead of falling back to `i32`.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)` if `inclusive` is false, else `[lo, hi]`.
    /// The caller guarantees the range is non-empty.
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_uniform(rng, lo, hi, true)
    }
}

/// Draws uniformly from `[0, width)` (width = 0 means the full `u64`
/// domain) using widening multiply with rejection — exactly uniform.
fn sample_below<R: RngCore + ?Sized>(rng: &mut R, width: u64) -> u64 {
    if width == 0 {
        return rng.next_u64();
    }
    // Lemire's method: accept unless the product lands in the biased zone.
    let zone = width.wrapping_neg() % width; // 2^64 mod width
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (width as u128);
        if (m as u64) >= zone {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                // Width in the u64 domain; for an inclusive full-domain
                // range the +1 wraps to 0, which sample_below treats as
                // "no restriction".
                let span = (hi as i128 - lo as i128) as u64;
                let width = if inclusive { span.wrapping_add(1) } else { span };
                (lo as i128 + sample_below(rng, width) as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                let u = <$t as StandardSample>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Convenience extension methods on any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p` (which must be in `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} out of range"
        );
        f64::sample_standard(self) < p
    }

    /// Draws a value uniformly from `range`. Panics on an empty range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_one(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Minimal `rand::rngs` module: the test/bench code only names the types
/// re-exported here.
pub mod rngs {
    pub use crate::small::SmallRng;
}

mod small {
    use crate::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // Avoid the all-zero state, which is a fixed point.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.gen_range(10usize..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = r.gen_range(2f64..16.0);
            assert!((2.0..16.0).contains(&f));
        }
    }

    #[test]
    fn unit_width_ranges_are_constant() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..16 {
            assert_eq!(r.gen_range(3u64..4), 3);
            assert_eq!(r.gen_range(3i64..=3), 3);
        }
    }

    #[test]
    fn gen_bool_extremes_are_exact() {
        let mut r = SmallRng::seed_from_u64(2);
        for _ in 0..64 {
            assert!(!r.gen_bool(0.0));
            assert!(r.gen_bool(1.0));
        }
    }

    #[test]
    fn f64_standard_is_unit_interval() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn integer_range_is_roughly_uniform() {
        let mut r = SmallRng::seed_from_u64(9);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[r.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "bucket count {c}");
        }
    }
}
