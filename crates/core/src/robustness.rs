//! Graceful-degradation experiment: every Section 8 algorithm family runs
//! under a grid of injected fault modes — adversarial concurrent-write
//! arbitration, message drops/duplications, processor stalls and crashes,
//! cost budgets — and each cell records either the degraded cost (with the
//! inflation over the fault-free baseline) or the typed [`ModelError`] the
//! run ended with. Nothing in the grid is allowed to panic: a wrong answer
//! is converted to `FaultAborted` by output verification, and a hung run is
//! cut off by the plan's phase budget as `PhaseLimitExceeded`.

use parbounds_algo::bsp_algos::{bsp_lac_dart_resilient, bsp_or, bsp_parity, bsp_reduce_resilient};
use parbounds_algo::gsm_algos::gsm_parity;
use parbounds_algo::lac::{lac_dart, lac_dart_retry};
use parbounds_algo::or_tree::{or_default_fanin, or_write_tree};
use parbounds_algo::parity::{parity_helper_default_k, parity_pattern_helper};
use parbounds_algo::util::ReduceOp;
use parbounds_algo::workloads;
use parbounds_models::{
    BspMachine, FaultPlan, GsmMachine, ModelError, QsmMachine, Result, WinnerPolicy, Word,
};

/// How a grid cell ended.
#[derive(Debug)]
pub enum RowOutcome {
    /// The run produced a verified-correct answer at the given total cost
    /// (over all attempts, for the Las Vegas wrappers).
    Completed {
        /// Total model time spent, including failed attempts.
        cost: u64,
        /// Attempts the Las Vegas wrapper needed (1 for one-shot runs).
        attempts: usize,
    },
    /// The run ended with a typed error (crash abort, budget overrun,
    /// phase limit, or an answer that failed verification).
    Degraded(ModelError),
}

/// One cell of the degradation grid.
#[derive(Debug)]
pub struct DegradationRow {
    /// Algorithm label (e.g. `"or-write-tree"`).
    pub algorithm: &'static str,
    /// Model the algorithm ran on.
    pub model: &'static str,
    /// Human-readable fault-mode label (e.g. `"drop 20%"`).
    pub fault_mode: String,
    /// Fault-free cost of the same algorithm on the same input.
    pub baseline: u64,
    /// What happened under faults.
    pub outcome: RowOutcome,
}

impl DegradationRow {
    /// `cost / baseline` for completed rows, `None` for degraded ones.
    pub fn inflation(&self) -> Option<f64> {
        match &self.outcome {
            RowOutcome::Completed { cost, .. } => Some(*cost as f64 / self.baseline.max(1) as f64),
            RowOutcome::Degraded(_) => None,
        }
    }
}

/// The full degradation grid plus a text renderer.
#[derive(Debug)]
pub struct RobustnessGrid {
    /// One row per (algorithm, fault mode) cell.
    pub rows: Vec<DegradationRow>,
}

impl RobustnessGrid {
    /// Rows that completed with a verified answer.
    pub fn completed(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| matches!(r.outcome, RowOutcome::Completed { .. }))
            .count()
    }

    /// Renders the degradation table (cost vs fault mode).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<18} {:<6} {:<22} {:>9}  {}\n",
            "algorithm", "model", "fault mode", "baseline", "outcome"
        ));
        for r in &self.rows {
            let outcome = match &r.outcome {
                RowOutcome::Completed { cost, attempts } => format!(
                    "ok: cost {cost} ({:.2}x baseline, {attempts} attempt{})",
                    r.inflation().unwrap_or(0.0),
                    if *attempts == 1 { "" } else { "s" }
                ),
                RowOutcome::Degraded(e) => format!("degraded: {e}"),
            };
            out.push_str(&format!(
                "{:<18} {:<6} {:<22} {:>9}  {}\n",
                r.algorithm, r.model, r.fault_mode, r.baseline, outcome
            ));
        }
        out
    }
}

/// Wraps one faulted run as a row: `Ok` + verified → `Completed`, `Ok` +
/// wrong answer → `Degraded(FaultAborted)`, `Err` → `Degraded(err)`.
fn cell(
    algorithm: &'static str,
    model: &'static str,
    fault_mode: &str,
    baseline: u64,
    run: impl FnOnce() -> Result<(u64, usize, bool)>,
) -> DegradationRow {
    let outcome = match run() {
        Ok((cost, attempts, true)) => RowOutcome::Completed { cost, attempts },
        Ok(_) => RowOutcome::Degraded(ModelError::FaultAborted {
            phase: 0,
            reason: "output failed verification under faults".into(),
        }),
        Err(e) => RowOutcome::Degraded(e),
    };
    DegradationRow {
        algorithm,
        model,
        fault_mode: fault_mode.to_string(),
        baseline,
        outcome,
    }
}

/// The QSM fault modes every shared-memory algorithm is exercised under.
fn qsm_fault_plans(seed: u64, baseline: u64) -> Vec<(String, FaultPlan)> {
    vec![
        (
            "winner:min".into(),
            FaultPlan::new(seed).with_winner(WinnerPolicy::MinValue),
        ),
        (
            "winner:max".into(),
            FaultPlan::new(seed).with_winner(WinnerPolicy::MaxValue),
        ),
        (
            "winner:first".into(),
            FaultPlan::new(seed).with_winner(WinnerPolicy::FirstWriter),
        ),
        (
            "stall p1@2,p3@4".into(),
            FaultPlan::new(seed).with_stall(1, 2).with_stall(3, 4),
        ),
        ("crash p0@1".into(), FaultPlan::new(seed).with_crash(0, 1)),
        (
            "budget half".into(),
            FaultPlan::new(seed).with_cost_budget(baseline / 2),
        ),
    ]
}

/// Builds the degradation grid for input size `n`.
///
/// Baseline (fault-free) runs propagate errors — a failing baseline is a
/// configuration bug, not an injected fault. Faulted runs never propagate:
/// every failure lands in the returned grid as a typed outcome.
pub fn degradation_grid(n: usize, seed: u64) -> Result<RobustnessGrid> {
    if n < 8 {
        return Err(ModelError::BadConfig(format!(
            "degradation grid needs n >= 8 (the LAC cells place max(4, n/8) items in n cells), got n = {n}"
        )));
    }
    let g = 8;
    let mut rows = Vec::new();

    // --- QSM: OR write tree and Parity under adversarial arbitration,
    // stalls, a crash, and a cost budget. -------------------------------
    let qsm = QsmMachine::qsm(g);
    let bits = workloads::random_bits(n, seed);
    let expected_or = Word::from(bits.iter().any(|&b| b != 0));
    let expected_parity = bits.iter().sum::<Word>() & 1;

    let k = or_default_fanin(g);
    let or_baseline = or_write_tree(&qsm, &bits, k)?.run.time();
    for (mode, plan) in qsm_fault_plans(seed, or_baseline) {
        let m = qsm.clone().with_faults(plan);
        rows.push(cell("or-write-tree", "QSM", &mode, or_baseline, || {
            let out = or_write_tree(&m, &bits, k)?;
            Ok((out.run.time(), 1, out.value == expected_or))
        }));
    }

    let pk = parity_helper_default_k(&qsm);
    let parity_baseline = parity_pattern_helper(&qsm, &bits, pk)?.run.time();
    for (mode, plan) in qsm_fault_plans(seed, parity_baseline) {
        let m = qsm.clone().with_faults(plan);
        rows.push(cell("parity-helper", "QSM", &mode, parity_baseline, || {
            let out = parity_pattern_helper(&m, &bits, pk)?;
            Ok((out.run.time(), 1, out.value == expected_parity))
        }));
    }

    // --- s-QSM: the fan-in-2 parity tree under the same modes. ---------
    let sqsm = QsmMachine::sqsm(g);
    let sq_baseline = parity_pattern_helper(&sqsm, &bits, 2)?.run.time();
    for (mode, plan) in qsm_fault_plans(seed, sq_baseline) {
        let m = sqsm.clone().with_faults(plan);
        rows.push(cell("parity-helper", "s-QSM", &mode, sq_baseline, || {
            let out = parity_pattern_helper(&m, &bits, 2)?;
            Ok((out.run.time(), 1, out.value == expected_parity))
        }));
    }

    // --- QSM LAC: the Las Vegas retry wrapper must terminate with a
    // verified placement (or a typed error) under every mode. -----------
    let h = (n / 8).max(4);
    let items = workloads::sparse_items(n, h, seed);
    let lac_baseline = lac_dart(&qsm, &items, h, seed)?.run.time();
    let lac_modes = [
        (
            "winner:min",
            FaultPlan::new(seed).with_winner(WinnerPolicy::MinValue),
        ),
        (
            "stall p1@2,p3@4",
            FaultPlan::new(seed)
                .with_stall(1, 2)
                .with_stall(3, 4)
                .with_phase_budget(4096),
        ),
        ("crash p0@0", FaultPlan::new(seed).with_crash(0, 0)),
    ];
    for (mode, plan) in lac_modes {
        rows.push(cell("lac-dart-retry", "QSM", mode, lac_baseline, || {
            let out = lac_dart_retry(&qsm, &items, h, seed, &plan, 4)?;
            Ok((out.total_time, out.attempts, out.outcome.verify(&items)))
        }));
    }

    // --- BSP: non-resilient trees under message loss terminate through
    // the plan's phase budget; the ack-and-retransmit and re-claim
    // variants complete and record their inflation. ---------------------
    let p = n.clamp(2, 64);
    let bsp = BspMachine::new(p, g, 8 * g)?;
    let bsp_bits = workloads::random_bits(p, seed);
    let bsp_parity_baseline = bsp_parity(&bsp, &bsp_bits)?.time();
    let bsp_modes = [
        (
            "drop 5%",
            FaultPlan::new(seed)
                .with_drop_prob(0.05)
                .with_phase_budget(500),
        ),
        (
            "drop 20%",
            FaultPlan::new(seed)
                .with_drop_prob(0.20)
                .with_phase_budget(500),
        ),
        (
            "drop 10% + dup 10%",
            FaultPlan::new(seed)
                .with_drop_prob(0.10)
                .with_dup_prob(0.10)
                .with_phase_budget(500),
        ),
        ("crash c0@1", FaultPlan::new(seed).with_crash(0, 1)),
    ];
    let expected_bsp_parity = bsp_bits.iter().sum::<Word>() & 1;
    let expected_bsp_or = Word::from(bsp_bits.iter().any(|&b| b != 0));
    for (mode, plan) in &bsp_modes {
        let m = bsp.clone().with_faults(plan.clone());
        rows.push(cell("bsp-parity", "BSP", mode, bsp_parity_baseline, || {
            let out = bsp_parity(&m, &bsp_bits)?;
            Ok((out.time(), 1, out.value == expected_bsp_parity))
        }));
    }
    let bsp_or_baseline = bsp_or(&bsp, &bsp_bits)?.time();
    for (mode, plan) in &bsp_modes {
        let m = bsp.clone().with_faults(plan.clone());
        rows.push(cell("bsp-or", "BSP", mode, bsp_or_baseline, || {
            let out = bsp_or(&m, &bsp_bits)?;
            Ok((out.time(), 1, out.value == expected_bsp_or))
        }));
    }

    for (mode, plan) in &bsp_modes[..3] {
        let plan = plan.clone();
        rows.push(cell("ack-reduce", "BSP", mode, bsp_parity_baseline, || {
            let out = bsp_reduce_resilient(&bsp, &bsp_bits, ReduceOp::Xor, &plan, 8)?;
            Ok((
                out.total_time,
                out.attempts,
                out.result.value == expected_bsp_parity,
            ))
        }));
    }

    // The acceptance-criterion row: resilient LAC at 20% message drop.
    let bsp_h = (p / 2).max(2);
    let bsp_items = workloads::sparse_items(p, bsp_h, seed);
    let resilient_lac_modes = [
        ("drop 20%", FaultPlan::new(seed).with_drop_prob(0.20)),
        (
            "drop 10% + dup 10%",
            FaultPlan::new(seed)
                .with_drop_prob(0.10)
                .with_dup_prob(0.10),
        ),
    ];
    for (mode, plan) in resilient_lac_modes {
        rows.push(cell(
            "resilient-lac",
            "BSP",
            mode,
            bsp_parity_baseline,
            || {
                let out = bsp_lac_dart_resilient(&bsp, &bsp_items, bsp_h, seed, &plan, 8)?;
                let ok = out.result.verify(&bsp_items);
                Ok((out.total_time, out.attempts, ok))
            },
        ));
    }

    // --- GSM: strong queuing merges all concurrent writes, so only the
    // execution faults (stall, crash, budget) apply. --------------------
    let gsm = GsmMachine::new(4, 4, 16);
    let gsm_baseline = gsm_parity(&gsm, &bits)?.run.time();
    let gsm_modes = [
        ("stall p1@1", FaultPlan::new(seed).with_stall(1, 1)),
        ("crash p0@1", FaultPlan::new(seed).with_crash(0, 1)),
        (
            "budget half",
            FaultPlan::new(seed).with_cost_budget(gsm_baseline / 2),
        ),
    ];
    for (mode, plan) in gsm_modes {
        let m = gsm.clone().with_faults(plan);
        rows.push(cell("gsm-parity", "GSM", mode, gsm_baseline, || {
            let out = gsm_parity(&m, &bits)?;
            Ok((out.run.time(), 1, out.value == expected_parity))
        }));
    }

    Ok(RobustnessGrid { rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degradation_grid_rejects_tiny_n_with_typed_error() {
        for n in [0, 1, 7] {
            match degradation_grid(n, 7) {
                Err(ModelError::BadConfig(msg)) => assert!(msg.contains("n >= 8"), "{msg}"),
                other => panic!("n = {n}: expected BadConfig, got {other:?}"),
            }
        }
    }

    #[test]
    fn degradation_grid_runs_all_rows_without_panicking() {
        let grid = degradation_grid(64, 7).unwrap();
        // Every §8 family is represented across ≥3 fault modes.
        assert!(grid.rows.len() >= 30, "only {} rows", grid.rows.len());
        let modes: std::collections::HashSet<&str> =
            grid.rows.iter().map(|r| r.fault_mode.as_str()).collect();
        assert!(modes.len() >= 3, "only {} fault modes", modes.len());
        for model in ["QSM", "s-QSM", "BSP", "GSM"] {
            assert!(
                grid.rows.iter().any(|r| r.model == model),
                "no {model} rows"
            );
        }
    }

    #[test]
    fn crash_rows_degrade_with_fault_aborted() {
        let grid = degradation_grid(64, 7).unwrap();
        for row in grid
            .rows
            .iter()
            .filter(|r| r.fault_mode.starts_with("crash"))
        {
            // lac-dart-retry retries crashes and reports exhaustion as
            // FaultAborted too, so every crash row is a typed abort.
            assert!(
                matches!(
                    row.outcome,
                    RowOutcome::Degraded(ModelError::FaultAborted { .. })
                ),
                "{} / {} did not abort: {:?}",
                row.algorithm,
                row.fault_mode,
                row.outcome
            );
        }
    }

    #[test]
    fn budget_rows_degrade_with_cost_budget_exceeded() {
        let grid = degradation_grid(64, 7).unwrap();
        let budget_rows: Vec<_> = grid
            .rows
            .iter()
            .filter(|r| r.fault_mode == "budget half" && r.algorithm != "lac-dart-retry")
            .collect();
        assert!(!budget_rows.is_empty());
        for row in budget_rows {
            assert!(
                matches!(
                    row.outcome,
                    RowOutcome::Degraded(ModelError::CostBudgetExceeded { .. })
                ),
                "{} / {}: {:?}",
                row.algorithm,
                row.model,
                row.outcome
            );
        }
    }

    #[test]
    fn resilient_lac_completes_under_20pct_drops_with_recorded_inflation() {
        let grid = degradation_grid(64, 7).unwrap();
        let row = grid
            .rows
            .iter()
            .find(|r| r.algorithm == "resilient-lac" && r.fault_mode == "drop 20%")
            .expect("resilient LAC row missing");
        assert!(
            matches!(row.outcome, RowOutcome::Completed { .. }),
            "resilient LAC degraded: {:?}",
            row.outcome
        );
        assert!(row.inflation().unwrap() > 0.0);
    }

    #[test]
    fn adversarial_winner_rows_stay_correct() {
        // The §8 trees are correct under EVERY arbitrary-write arbitration:
        // adversarial winner policies change cost bookkeeping at most.
        let grid = degradation_grid(64, 7).unwrap();
        for row in grid
            .rows
            .iter()
            .filter(|r| r.fault_mode.starts_with("winner:"))
        {
            assert!(
                matches!(row.outcome, RowOutcome::Completed { .. }),
                "{} on {} wrong under {}: {:?}",
                row.algorithm,
                row.model,
                row.fault_mode,
                row.outcome
            );
        }
    }

    #[test]
    fn render_produces_one_line_per_row() {
        let grid = degradation_grid(32, 3).unwrap();
        let table = grid.render();
        assert_eq!(table.lines().count(), grid.rows.len() + 1);
        assert!(table.contains("fault mode"));
    }
}
