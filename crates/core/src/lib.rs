//! # parbounds
//!
//! A reproduction of MacKenzie & Ramachandran, *Computational Bounds for
//! Fundamental Problems on General-Purpose Parallel Models* (SPAA 1998), as
//! a runnable system:
//!
//! * cost-exact simulators for the QSM, s-QSM, GSM and BSP models
//!   ([`models`]);
//! * implementations of every Section 8 upper-bound algorithm ([`algo`]);
//! * executable lower-bound machinery — degree auditors, the Random
//!   Adversary, Yao's principle ([`adversary`]), on the boolean-function
//!   algebra of [`boolean`];
//! * the full Table 1 bound registry and the Claim 2.1/2.2 GSM mappings
//!   ([`tables`]);
//! * a declarative schedule IR ([`ir`]) whose plans the static analyzer in
//!   [`analyze`] costs, certifies race-free and lints *without executing*,
//!   then cross-validates against the simulators cell for cell;
//! * the [`experiment`] runner that regenerates each sub-table with
//!   measured-vs-bound columns (driven by the `parbounds-bench` binaries).
//!
//! ## Quickstart
//!
//! ```
//! use parbounds::models::QsmMachine;
//! use parbounds::algo::{or_tree, workloads};
//! use parbounds::tables::{best_lower_bound, Metric, Mode, Model, Params, Problem};
//!
//! // Run the Section 8 QSM OR algorithm on a 1024-bit input with g = 8 …
//! let machine = QsmMachine::qsm(8);
//! let bits = workloads::random_bits(1024, 42);
//! let out = or_tree::or_write_tree(&machine, &bits, 8).unwrap();
//!
//! // … and compare its measured cost with the Table 1 lower bound.
//! let params = Params::qsm(1024.0, 8.0);
//! let lb = best_lower_bound(Problem::Or, Model::Qsm, Mode::Deterministic,
//!                           Metric::Time, &params).unwrap();
//! assert!(out.run.time() as f64 >= lb);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiment;
pub mod report;
pub mod robustness;
pub mod sweep;

pub use parbounds_adversary as adversary;
pub use parbounds_algo as algo;
pub use parbounds_analyze as analyze;
pub use parbounds_boolean as boolean;
pub use parbounds_ir as ir;
pub use parbounds_models as models;
pub use parbounds_serve as serve;
pub use parbounds_tables as tables;

pub use experiment::{
    bsp_time_row, bsp_time_row_on, bsp_time_row_on_input, load_balance_row, padded_sort_row,
    qsm_time_row, qsm_time_row_on, qsm_time_row_on_input, qsm_unit_cr_parity, rounds_row,
    row_input, sqsm_time_row, sqsm_time_row_on, sqsm_time_row_on_input, RelatedRow, RoundsRow,
    RowInput, TableRow,
};
pub use report::{generate_report, ReportOptions};
pub use robustness::{degradation_grid, DegradationRow, RobustnessGrid, RowOutcome};
pub use sweep::{
    checkpointed_sweep, grid, qsm_shape_sweep, sqsm_shape_sweep, Flatness, Point, SweepReport,
};
