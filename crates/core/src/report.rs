//! Markdown report generation: renders a full paper-vs-measured document
//! from *live* runs — the programmatic counterpart of the `table_*`
//! binaries, producing an artifact (`MEASUREMENTS.md`) a release pipeline
//! can regenerate and diff.

use std::fmt::Write as _;

use parbounds_models::Result;
use parbounds_tables::{Model, Problem};

use crate::experiment::{bsp_time_row, qsm_time_row, rounds_row, sqsm_time_row};
use crate::sweep::{grid, Flatness, Point};

/// Options for [`generate_report`].
#[derive(Debug, Clone)]
pub struct ReportOptions {
    /// Input sizes to sweep.
    pub ns: Vec<usize>,
    /// Gap parameters to sweep.
    pub gs: Vec<u64>,
    /// Seed for all workloads.
    pub seed: u64,
}

impl Default for ReportOptions {
    fn default() -> Self {
        ReportOptions {
            ns: vec![1 << 8, 1 << 10, 1 << 12, 1 << 14],
            gs: vec![2, 4, 8, 16],
            seed: 0xf1e1d,
        }
    }
}

fn push_time_table(out: &mut String, title: &str, rows: &[(Point, crate::experiment::TableRow)]) {
    let _ = writeln!(out, "### {title}\n");
    let _ = writeln!(
        out,
        "| problem | n | g | measured | UB formula | meas/UB | det LB | rand LB |\n|---|---|---|---|---|---|---|---|"
    );
    for (pt, row) in rows {
        let _ = writeln!(
            out,
            "| {:?} | {} | {} | {:.0} | {:.1} | {:.2} | {:.1} | {:.1} |",
            row.problem,
            pt.n,
            pt.g,
            row.measured.unwrap_or(f64::NAN),
            row.upper_formula,
            row.shape_ratio().unwrap_or(f64::NAN),
            row.det_lb,
            row.rand_lb
        );
    }
    let ratios: Vec<f64> = rows.iter().filter_map(|(_, r)| r.shape_ratio()).collect();
    if !ratios.is_empty() {
        let f = Flatness::of(&ratios);
        let _ = writeln!(
            out,
            "\nratio flatness: min {:.2}, max {:.2}, spread {:.2} (flat ⇔ the claimed shape holds)\n",
            f.min,
            f.max,
            f.spread()
        );
    }
}

/// Runs the full measured sweep and renders a markdown document covering
/// sub-tables 1–4 of Table 1.
pub fn generate_report(opts: &ReportOptions) -> Result<String> {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# MEASUREMENTS — regenerated paper-vs-measured tables\n\n\
         Produced by `make_report` (seed {:#x}); see EXPERIMENTS.md for the\n\
         interpretation and DESIGN.md for the experiment index.\n",
        opts.seed
    );

    let points = grid(&opts.ns, &opts.gs);

    // Sub-table 1: QSM.
    for problem in [Problem::Parity, Problem::Or, Problem::Lac] {
        let rows: Vec<_> = points
            .iter()
            .map(|pt| qsm_time_row(problem, pt.n, pt.g, opts.seed).map(|r| (*pt, r)))
            .collect::<Result<_>>()?;
        push_time_table(
            &mut out,
            &format!("Sub-table 1 (QSM time) — {problem:?}"),
            &rows,
        );
    }
    // Sub-table 2: s-QSM.
    for problem in [Problem::Parity, Problem::Or, Problem::Lac] {
        let rows: Vec<_> = points
            .iter()
            .map(|pt| sqsm_time_row(problem, pt.n, pt.g, opts.seed).map(|r| (*pt, r)))
            .collect::<Result<_>>()?;
        push_time_table(
            &mut out,
            &format!("Sub-table 2 (s-QSM time) — {problem:?}"),
            &rows,
        );
    }
    // Sub-table 3: BSP (a fixed (g, L) pair per n, p sweep).
    for problem in [Problem::Parity, Problem::Or, Problem::Lac] {
        let mut rows = Vec::new();
        for &n in &opts.ns {
            for &p in &[16usize, 64] {
                if p <= n {
                    let row = bsp_time_row(problem, n, 2, 16, p, opts.seed)?;
                    rows.push((Point { n, g: 2, l: 16, p }, row));
                }
            }
        }
        push_time_table(
            &mut out,
            &format!("Sub-table 3 (BSP time, g=2, L=16) — {problem:?}"),
            &rows,
        );
    }
    // Sub-table 4: rounds.
    let _ = writeln!(
        out,
        "### Sub-table 4 (rounds, n = {})\n",
        opts.ns.last().unwrap()
    );
    let _ = writeln!(
        out,
        "| problem | model | n/p | measured rounds | lower bound | UB formula |\n|---|---|---|---|---|---|"
    );
    let n = *opts.ns.last().unwrap();
    for problem in [Problem::Parity, Problem::Or, Problem::Lac] {
        for model in [Model::Qsm, Model::SQsm, Model::Bsp] {
            for &np in &[16usize, 256] {
                if n / np >= 1 {
                    let row = rounds_row(problem, model, n, 4, 16, n / np, opts.seed)?;
                    let measured = row
                        .measured
                        .map(|(r, _)| r.to_string())
                        .unwrap_or_else(|| "-".into());
                    let _ = writeln!(
                        out,
                        "| {:?} | {:?} | {} | {} | {:.2} | {:.2} |",
                        problem, model, np, measured, row.lower, row.upper_formula
                    );
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_generates_and_mentions_every_section() {
        let opts = ReportOptions {
            ns: vec![256, 1024],
            gs: vec![2, 8],
            seed: 7,
        };
        let report = generate_report(&opts).unwrap();
        for needle in [
            "Sub-table 1 (QSM time) — Parity",
            "Sub-table 1 (QSM time) — Lac",
            "Sub-table 2 (s-QSM time) — Or",
            "Sub-table 3 (BSP time, g=2, L=16) — Parity",
            "Sub-table 4 (rounds",
            "ratio flatness",
        ] {
            assert!(report.contains(needle), "missing: {needle}");
        }
        assert!(!report.contains("NaN"));
    }

    #[test]
    fn report_is_deterministic_for_a_seed() {
        let opts = ReportOptions {
            ns: vec![256],
            gs: vec![4],
            seed: 9,
        };
        assert_eq!(
            generate_report(&opts).unwrap(),
            generate_report(&opts).unwrap()
        );
    }
}
