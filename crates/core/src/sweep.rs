//! Parameter-sweep helpers: cartesian sweeps over `(n, g, L, p)` points and
//! the *flatness* statistic the shape checks rest on (`measured/formula`
//! constant across a sweep ⇔ the claimed asymptotic shape is realized).

use parbounds_models::Result;
use parbounds_tables::Problem;

use crate::experiment::{qsm_time_row, sqsm_time_row, TableRow};

/// A sweep point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Input size.
    pub n: usize,
    /// Gap.
    pub g: u64,
    /// BSP latency.
    pub l: u64,
    /// Processors.
    pub p: usize,
}

/// The cartesian product of the given axes (l fixed to `8·g`, p to `n`
/// unless overridden later — the shared-memory default).
pub fn grid(ns: &[usize], gs: &[u64]) -> Vec<Point> {
    let mut out = Vec::with_capacity(ns.len() * gs.len());
    for &n in ns {
        for &g in gs {
            out.push(Point { n, g, l: 8 * g, p: n });
        }
    }
    out
}

/// Summary statistics of a ratio column.
#[derive(Debug, Clone, Copy)]
pub struct Flatness {
    /// Smallest ratio in the sweep.
    pub min: f64,
    /// Largest ratio.
    pub max: f64,
    /// Geometric mean.
    pub geo_mean: f64,
}

impl Flatness {
    /// Computes the statistics of a non-empty ratio list.
    pub fn of(ratios: &[f64]) -> Flatness {
        assert!(!ratios.is_empty(), "no ratios to summarize");
        let min = ratios.iter().cloned().fold(f64::MAX, f64::min);
        let max = ratios.iter().cloned().fold(f64::MIN, f64::max);
        let geo_mean =
            (ratios.iter().map(|r| r.max(1e-300).ln()).sum::<f64>() / ratios.len() as f64).exp();
        Flatness { min, max, geo_mean }
    }

    /// `max/min` — 1.0 means perfectly flat.
    pub fn spread(&self) -> f64 {
        self.max / self.min
    }

    /// Is the sweep flat within the multiplicative factor `tol`?
    pub fn is_flat(&self, tol: f64) -> bool {
        self.spread() <= tol
    }
}

/// Runs a QSM-time sweep for `problem` and returns the rows plus the
/// flatness of `measured/upper-formula`.
pub fn qsm_shape_sweep(
    problem: Problem,
    points: &[Point],
    seed: u64,
) -> Result<(Vec<TableRow>, Flatness)> {
    let rows: Vec<TableRow> = points
        .iter()
        .map(|pt| qsm_time_row(problem, pt.n, pt.g, seed))
        .collect::<Result<_>>()?;
    let ratios: Vec<f64> = rows.iter().map(|r| r.shape_ratio().unwrap()).collect();
    let flat = Flatness::of(&ratios);
    Ok((rows, flat))
}

/// The s-QSM analogue of [`qsm_shape_sweep`].
pub fn sqsm_shape_sweep(
    problem: Problem,
    points: &[Point],
    seed: u64,
) -> Result<(Vec<TableRow>, Flatness)> {
    let rows: Vec<TableRow> = points
        .iter()
        .map(|pt| sqsm_time_row(problem, pt.n, pt.g, seed))
        .collect::<Result<_>>()?;
    let ratios: Vec<f64> = rows.iter().map(|r| r.shape_ratio().unwrap()).collect();
    let flat = Flatness::of(&ratios);
    Ok((rows, flat))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_cartesian() {
        let g = grid(&[16, 64], &[2, 4, 8]);
        assert_eq!(g.len(), 6);
        assert_eq!(g[0], Point { n: 16, g: 2, l: 16, p: 16 });
        assert_eq!(g[5], Point { n: 64, g: 8, l: 64, p: 64 });
    }

    #[test]
    fn flatness_statistics() {
        let f = Flatness::of(&[2.0, 4.0]);
        assert_eq!(f.min, 2.0);
        assert_eq!(f.max, 4.0);
        assert!((f.geo_mean - 8f64.sqrt()).abs() < 1e-12);
        assert_eq!(f.spread(), 2.0);
        assert!(f.is_flat(2.0));
        assert!(!f.is_flat(1.9));
    }

    #[test]
    fn qsm_parity_sweep_is_flat() {
        let points = grid(&[1 << 8, 1 << 11], &[2, 8]);
        let (rows, flat) = qsm_shape_sweep(Problem::Parity, &points, 1).unwrap();
        assert_eq!(rows.len(), 4);
        assert!(flat.is_flat(2.0), "spread {}", flat.spread());
        // Every measured value dominates the deterministic lower bound.
        for r in &rows {
            assert!(r.measured_respects_lower_bound(false, 1.0));
        }
    }

    #[test]
    fn sqsm_lac_sweep_tracks_the_lower_bound_shape() {
        let points = grid(&[1 << 10, 1 << 13], &[2, 8]);
        let (rows, _) = sqsm_shape_sweep(Problem::Lac, &points, 2).unwrap();
        // measured / (g·loglog n) flat: the accelerated LAC result.
        let ratios: Vec<f64> = rows
            .iter()
            .map(|r| {
                let loglog = (r.params.n.log2()).log2();
                r.measured.unwrap() / (r.params.g * loglog)
            })
            .collect();
        let flat = Flatness::of(&ratios);
        assert!(flat.is_flat(2.0), "spread {}", flat.spread());
    }
}
