//! Parameter-sweep helpers: cartesian sweeps over `(n, g, L, p)` points and
//! the *flatness* statistic the shape checks rest on (`measured/formula`
//! constant across a sweep ⇔ the claimed asymptotic shape is realized).

use parbounds_models::{ModelError, Result};
use parbounds_tables::Problem;

use crate::experiment::{qsm_time_row, sqsm_time_row, TableRow};

/// A sweep point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Input size.
    pub n: usize,
    /// Gap.
    pub g: u64,
    /// BSP latency.
    pub l: u64,
    /// Processors.
    pub p: usize,
}

/// The cartesian product of the given axes (l fixed to `8·g`, p to `n`
/// unless overridden later — the shared-memory default).
pub fn grid(ns: &[usize], gs: &[u64]) -> Vec<Point> {
    let mut out = Vec::with_capacity(ns.len() * gs.len());
    for &n in ns {
        for &g in gs {
            out.push(Point {
                n,
                g,
                l: 8 * g,
                p: n,
            });
        }
    }
    out
}

/// Summary statistics of a ratio column.
#[derive(Debug, Clone, Copy)]
pub struct Flatness {
    /// Smallest ratio in the sweep.
    pub min: f64,
    /// Largest ratio.
    pub max: f64,
    /// Geometric mean.
    pub geo_mean: f64,
}

impl Flatness {
    /// Computes the statistics of a non-empty ratio list.
    pub fn of(ratios: &[f64]) -> Flatness {
        assert!(!ratios.is_empty(), "no ratios to summarize");
        let min = ratios.iter().cloned().fold(f64::MAX, f64::min);
        let max = ratios.iter().cloned().fold(f64::MIN, f64::max);
        let geo_mean =
            (ratios.iter().map(|r| r.max(1e-300).ln()).sum::<f64>() / ratios.len() as f64).exp();
        Flatness { min, max, geo_mean }
    }

    /// `max/min` — 1.0 means perfectly flat.
    pub fn spread(&self) -> f64 {
        self.max / self.min
    }

    /// Is the sweep flat within the multiplicative factor `tol`?
    pub fn is_flat(&self, tol: f64) -> bool {
        self.spread() <= tol
    }
}

/// Runs a QSM-time sweep for `problem` and returns the rows plus the
/// flatness of `measured/upper-formula` (over the rows that measured).
pub fn qsm_shape_sweep(
    problem: Problem,
    points: &[Point],
    seed: u64,
) -> Result<(Vec<TableRow>, Flatness)> {
    let rows: Vec<TableRow> = points
        .iter()
        .map(|pt| qsm_time_row(problem, pt.n, pt.g, seed))
        .collect::<Result<_>>()?;
    let flat = flatness_of_rows(&rows)?;
    Ok((rows, flat))
}

/// The s-QSM analogue of [`qsm_shape_sweep`].
pub fn sqsm_shape_sweep(
    problem: Problem,
    points: &[Point],
    seed: u64,
) -> Result<(Vec<TableRow>, Flatness)> {
    let rows: Vec<TableRow> = points
        .iter()
        .map(|pt| sqsm_time_row(problem, pt.n, pt.g, seed))
        .collect::<Result<_>>()?;
    let flat = flatness_of_rows(&rows)?;
    Ok((rows, flat))
}

/// Flatness of the measured rows, as a typed error (not a panic) when no
/// row measured anything.
fn flatness_of_rows(rows: &[TableRow]) -> Result<Flatness> {
    let ratios: Vec<f64> = rows.iter().filter_map(|r| r.shape_ratio()).collect();
    if ratios.is_empty() {
        return Err(ModelError::BadConfig(
            "sweep produced no measured rows".into(),
        ));
    }
    Ok(Flatness::of(&ratios))
}

/// Outcome of a [`checkpointed_sweep`]: the rows that succeeded, how many
/// attempts each point needed, and the points that were given up on (with
/// the error of their final attempt). A transient failure — a faulted or
/// budget-limited run — no longer torpedoes the entire grid.
#[derive(Debug)]
pub struct SweepReport<T> {
    /// `(point, row)` for every point that eventually succeeded.
    pub rows: Vec<(Point, T)>,
    /// `(point, attempts)` for points that needed more than one attempt.
    pub retried: Vec<(Point, usize)>,
    /// `(point, final error)` for points that failed every attempt.
    pub failed: Vec<(Point, ModelError)>,
}

impl<T> SweepReport<T> {
    /// Did every point of the grid produce a row?
    pub fn is_complete(&self) -> bool {
        self.failed.is_empty()
    }
}

/// Runs `f` over the grid with per-cell checkpointing: each failed cell is
/// retried up to `max_attempts` times (the attempt index is passed to `f`
/// so callers can reseed / back off), and a cell that fails every attempt
/// is recorded in [`SweepReport::failed`] instead of aborting the sweep.
pub fn checkpointed_sweep<T>(
    points: &[Point],
    max_attempts: usize,
    mut f: impl FnMut(&Point, usize) -> Result<T>,
) -> SweepReport<T> {
    assert!(max_attempts >= 1, "need at least one attempt");
    let mut report = SweepReport {
        rows: Vec::new(),
        retried: Vec::new(),
        failed: Vec::new(),
    };
    for pt in points {
        let mut last_err = None;
        for attempt in 0..max_attempts {
            match f(pt, attempt) {
                Ok(row) => {
                    report.rows.push((*pt, row));
                    if attempt > 0 {
                        report.retried.push((*pt, attempt + 1));
                    }
                    last_err = None;
                    break;
                }
                Err(e) => last_err = Some(e),
            }
        }
        if let Some(e) = last_err {
            report.failed.push((*pt, e));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_cartesian() {
        let g = grid(&[16, 64], &[2, 4, 8]);
        assert_eq!(g.len(), 6);
        assert_eq!(
            g[0],
            Point {
                n: 16,
                g: 2,
                l: 16,
                p: 16
            }
        );
        assert_eq!(
            g[5],
            Point {
                n: 64,
                g: 8,
                l: 64,
                p: 64
            }
        );
    }

    #[test]
    fn flatness_statistics() {
        let f = Flatness::of(&[2.0, 4.0]);
        assert_eq!(f.min, 2.0);
        assert_eq!(f.max, 4.0);
        assert!((f.geo_mean - 8f64.sqrt()).abs() < 1e-12);
        assert_eq!(f.spread(), 2.0);
        assert!(f.is_flat(2.0));
        assert!(!f.is_flat(1.9));
    }

    #[test]
    fn qsm_parity_sweep_is_flat() {
        let points = grid(&[1 << 8, 1 << 11], &[2, 8]);
        let (rows, flat) = qsm_shape_sweep(Problem::Parity, &points, 1).unwrap();
        assert_eq!(rows.len(), 4);
        assert!(flat.is_flat(2.0), "spread {}", flat.spread());
        // Every measured value dominates the deterministic lower bound.
        for r in &rows {
            assert!(r.measured_respects_lower_bound(false, 1.0));
        }
    }

    #[test]
    fn checkpointed_sweep_first_try_success_records_no_retries() {
        let points = grid(&[16, 32], &[2]);
        let report = checkpointed_sweep(&points, 3, |pt, _attempt| Ok(pt.n as u64));
        assert_eq!(report.rows.len(), 2);
        assert!(report.retried.is_empty());
        assert!(report.failed.is_empty());
        assert!(report.is_complete());
    }

    #[test]
    fn checkpointed_sweep_retries_transient_failures_with_backoff() {
        let points = grid(&[16], &[2, 4]);
        // The g=4 cell fails its first two attempts, then succeeds.
        let report = checkpointed_sweep(&points, 4, |pt, attempt| {
            if pt.g == 4 && attempt < 2 {
                Err(ModelError::FaultAborted {
                    phase: attempt,
                    reason: "transient".into(),
                })
            } else {
                Ok(pt.g)
            }
        });
        assert_eq!(report.rows.len(), 2);
        assert_eq!(
            report.retried,
            vec![(
                Point {
                    n: 16,
                    g: 4,
                    l: 32,
                    p: 16
                },
                3
            )]
        );
        assert!(report.is_complete());
    }

    #[test]
    fn checkpointed_sweep_records_permanent_failures_without_panicking() {
        let points = grid(&[16, 32], &[2]);
        let report = checkpointed_sweep(&points, 3, |pt, _attempt| {
            if pt.n == 32 {
                Err(ModelError::CostBudgetExceeded { budget: 1, cost: 2 })
            } else {
                Ok(())
            }
        });
        assert_eq!(report.rows.len(), 1);
        assert!(!report.is_complete());
        assert_eq!(report.failed.len(), 1);
        assert_eq!(report.failed[0].0.n, 32);
        assert!(matches!(
            report.failed[0].1,
            ModelError::CostBudgetExceeded { .. }
        ));
    }

    #[test]
    fn sqsm_lac_sweep_tracks_the_lower_bound_shape() {
        let points = grid(&[1 << 10, 1 << 13], &[2, 8]);
        let (rows, _) = sqsm_shape_sweep(Problem::Lac, &points, 2).unwrap();
        // measured / (g·loglog n) flat: the accelerated LAC result.
        let ratios: Vec<f64> = rows
            .iter()
            .map(|r| {
                let loglog = (r.params.n.log2()).log2();
                r.measured.unwrap() / (r.params.g * loglog)
            })
            .collect();
        let flat = Flatness::of(&ratios);
        assert!(flat.is_flat(2.0), "spread {}", flat.spread());
    }
}
