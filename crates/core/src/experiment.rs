//! Experiment runner: pairs *measured* algorithm costs on the simulators
//! with the *analytic* Table 1 bounds, producing the rows the benchmark
//! harness prints (one generator per sub-table — see DESIGN.md's
//! experiment index).

use parbounds_algo::{
    bsp_algos, lac, or_tree, parity, prefix, reduce, rounds as algo_rounds, workloads,
};
use parbounds_models::{BspMachine, CostLedger, ModelError, QsmMachine, Result, Word};
use parbounds_tables::{
    best_lower_bound, upper_bound_rounds, upper_bound_time, Metric, Mode, Model, Params, Problem,
};

/// One measured-vs-bound row of a regenerated table.
#[derive(Debug, Clone)]
pub struct TableRow {
    /// The problem.
    pub problem: Problem,
    /// The model.
    pub model: Model,
    /// Parameters the row was produced at.
    pub params: Params,
    /// Deterministic lower bound (strongest registry entry).
    pub det_lb: f64,
    /// Randomized lower bound.
    pub rand_lb: f64,
    /// Section 8 upper-bound formula value.
    pub upper_formula: f64,
    /// Measured cost of our implementation of the Section 8 algorithm
    /// (`None` where the row has no implemented upper bound).
    pub measured: Option<f64>,
    /// Name of the measured algorithm.
    pub algorithm: &'static str,
}

impl TableRow {
    /// `measured / upper_formula`: flat across a sweep ⇔ the implementation
    /// realizes the claimed shape.
    pub fn shape_ratio(&self) -> Option<f64> {
        self.measured.map(|m| m / self.upper_formula.max(1e-9))
    }

    /// Measured must sit at or above the (deterministic for det algorithms,
    /// randomized for randomized ones) lower bound, up to `slack`.
    pub fn measured_respects_lower_bound(&self, randomized: bool, slack: f64) -> bool {
        let lb = if randomized {
            self.rand_lb
        } else {
            self.det_lb
        };
        self.measured.is_none_or(|m| m * slack >= lb)
    }
}

/// Library-level verification: a row whose algorithm produced a wrong
/// output is reported as a typed error, never a panic (and never a silent
/// wrong measurement).
fn verified(ok: bool, phases: usize, what: &str) -> Result<()> {
    if ok {
        Ok(())
    } else {
        Err(ModelError::FaultAborted {
            phase: phases,
            reason: format!("{what} output failed verification"),
        })
    }
}

/// Rounds-respecting check as a typed error: a phase that overran its
/// round budget is exactly a cost-budget violation.
fn round_respecting(ledger: &CostLedger, budget: u64) -> Result<()> {
    if ledger.is_round_respecting(budget) {
        Ok(())
    } else {
        Err(ModelError::CostBudgetExceeded {
            budget,
            cost: ledger.max_phase_cost(),
        })
    }
}

fn row(
    problem: Problem,
    model: Model,
    params: Params,
    measured: Option<f64>,
    algorithm: &'static str,
) -> TableRow {
    let det_lb = best_lower_bound(problem, model, Mode::Deterministic, Metric::Time, &params)
        .unwrap_or(f64::NAN);
    let rand_lb = best_lower_bound(problem, model, Mode::Randomized, Metric::Time, &params)
        .unwrap_or(f64::NAN);
    let upper_formula = upper_bound_time(problem, model, &params).unwrap_or(f64::NAN);
    TableRow {
        problem,
        model,
        params,
        det_lb,
        rand_lb,
        upper_formula,
        measured,
        algorithm,
    }
}

/// A pregenerated Section 8 table-row workload: the seeded input a
/// `*_time_row_on` call would otherwise generate inline. Benchmarks
/// comparing two engine configurations on the same row use this to hoist
/// the (engine-independent, allocation-heavy) input generation out of
/// their timed regions, so the timing compares the engines rather than
/// the workload generator.
#[derive(Debug, Clone)]
pub struct RowInput {
    problem: Problem,
    n: usize,
    seed: u64,
    /// Random bits for Parity/Or; sparse LAC items for Lac.
    data: Vec<Word>,
    /// LAC occupancy bound `h = max(n/8, 1)`; 0 for the bit problems.
    h: usize,
}

/// Generates the seeded workload for one `(problem, n, seed)` row.
pub fn row_input(problem: Problem, n: usize, seed: u64) -> RowInput {
    let (data, h) = match problem {
        Problem::Parity | Problem::Or => (workloads::random_bits(n, seed), 0),
        Problem::Lac => {
            let h = (n / 8).max(1);
            (workloads::sparse_items(n, h, seed), h)
        }
    };
    RowInput {
        problem,
        n,
        seed,
        data,
        h,
    }
}

/// Regenerates one row of sub-table 1 (QSM time): runs the Section 8 QSM
/// algorithm for `problem` on an n-bit workload and pairs it with the
/// bounds.
pub fn qsm_time_row(problem: Problem, n: usize, g: u64, seed: u64) -> Result<TableRow> {
    qsm_time_row_on(&QsmMachine::qsm(g), problem, n, seed)
}

/// [`qsm_time_row`] on a caller-supplied machine: the row's `g` comes from
/// the machine, and any execution options (routing, tracing, faults) the
/// machine carries apply. This is what lets the hot-path benchmark run the
/// same workload on the dense and the reference engine.
pub fn qsm_time_row_on(
    machine: &QsmMachine,
    problem: Problem,
    n: usize,
    seed: u64,
) -> Result<TableRow> {
    qsm_time_row_on_input(machine, &row_input(problem, n, seed))
}

/// [`qsm_time_row_on`] over a pregenerated [`RowInput`].
pub fn qsm_time_row_on_input(machine: &QsmMachine, input: &RowInput) -> Result<TableRow> {
    let g = machine.g();
    let params = Params::qsm(input.n as f64, g as f64);
    let (measured, name) = match input.problem {
        Problem::Parity => {
            let k = parity::parity_helper_default_k(machine);
            let out = parity::parity_pattern_helper(machine, &input.data, k)?;
            (out.run.time() as f64, "pattern-helper parity (k = log g)")
        }
        Problem::Or => {
            let out = or_tree::or_write_tree(machine, &input.data, or_tree::or_default_fanin(g))?;
            (out.run.time() as f64, "write-combining OR tree (k = g)")
        }
        Problem::Lac => {
            let out = lac::lac_dart_accel(machine, &input.data, input.h, input.seed ^ 0xd1ce)?;
            verified(out.verify(&input.data), out.run.ledger.num_phases(), "LAC")?;
            (
                out.run.ledger.total_time() as f64,
                "accelerated dart LAC (h = n/8)",
            )
        }
    };
    Ok(row(input.problem, Model::Qsm, params, Some(measured), name))
}

/// Sub-table 1 variant: Parity on the QSM with unit-time concurrent reads
/// (the `Θ(g·log n/log g)` row). Returns `(measured, Θ-formula)`.
pub fn qsm_unit_cr_parity(n: usize, g: u64, seed: u64) -> Result<(f64, f64)> {
    let machine = QsmMachine::qsm_unit_cr(g);
    let bits = workloads::random_bits(n, seed);
    let k = parity::parity_helper_default_k(&machine);
    let out = parity::parity_pattern_helper(&machine, &bits, k)?;
    let params = Params::qsm(n as f64, g as f64);
    Ok((
        out.run.time() as f64,
        parbounds_tables::parity_unit_cr_upper(&params),
    ))
}

/// Regenerates one row of sub-table 2 (s-QSM time).
pub fn sqsm_time_row(problem: Problem, n: usize, g: u64, seed: u64) -> Result<TableRow> {
    sqsm_time_row_on(&QsmMachine::sqsm(g), problem, n, seed)
}

/// [`sqsm_time_row`] on a caller-supplied (s-QSM-flavored) machine.
pub fn sqsm_time_row_on(
    machine: &QsmMachine,
    problem: Problem,
    n: usize,
    seed: u64,
) -> Result<TableRow> {
    sqsm_time_row_on_input(machine, &row_input(problem, n, seed))
}

/// [`sqsm_time_row_on`] over a pregenerated [`RowInput`].
pub fn sqsm_time_row_on_input(machine: &QsmMachine, input: &RowInput) -> Result<TableRow> {
    let g = machine.g();
    let params = Params::qsm(input.n as f64, g as f64);
    let (measured, name) = match input.problem {
        Problem::Parity => {
            let out = reduce::parity_read_tree(machine, &input.data, 2)?;
            (out.run.time() as f64, "binary read tree (Θ(g·log n))")
        }
        Problem::Or => {
            let out = or_tree::or_write_tree(machine, &input.data, 2)?;
            (out.run.time() as f64, "binary write tree")
        }
        Problem::Lac => {
            let out = lac::lac_dart_accel(machine, &input.data, input.h, input.seed ^ 0xd1ce)?;
            verified(out.verify(&input.data), out.run.ledger.num_phases(), "LAC")?;
            (
                out.run.ledger.total_time() as f64,
                "accelerated dart LAC (h = n/8)",
            )
        }
    };
    Ok(row(
        input.problem,
        Model::SQsm,
        params,
        Some(measured),
        name,
    ))
}

/// Regenerates one row of sub-table 3 (BSP time).
pub fn bsp_time_row(
    problem: Problem,
    n: usize,
    g: u64,
    l: u64,
    p: usize,
    seed: u64,
) -> Result<TableRow> {
    bsp_time_row_on(&BspMachine::new(p, g, l)?, problem, n, seed)
}

/// [`bsp_time_row`] on a caller-supplied machine; `(p, g, L)` come from the
/// machine.
pub fn bsp_time_row_on(
    machine: &BspMachine,
    problem: Problem,
    n: usize,
    seed: u64,
) -> Result<TableRow> {
    bsp_time_row_on_input(machine, &row_input(problem, n, seed))
}

/// [`bsp_time_row_on`] over a pregenerated [`RowInput`].
pub fn bsp_time_row_on_input(machine: &BspMachine, input: &RowInput) -> Result<TableRow> {
    let (p, g, l) = (machine.p(), machine.g(), machine.l());
    let params = Params::bsp(input.n as f64, g as f64, l as f64, p as f64);
    let (measured, name) = match input.problem {
        Problem::Parity => {
            let out = bsp_algos::bsp_parity(machine, &input.data)?;
            (Some(out.time() as f64), "fan-in L/g reduction tree")
        }
        Problem::Or => {
            let out = bsp_algos::bsp_or(machine, &input.data)?;
            (Some(out.time() as f64), "fan-in L/g reduction tree")
        }
        Problem::Lac => {
            let out = bsp_algos::bsp_lac_dart(machine, &input.data, input.h, input.seed ^ 0xd1ce)?;
            verified(out.verify(&input.data), out.ledger.num_phases(), "BSP LAC")?;
            (
                Some(out.ledger.total_time() as f64),
                "message dart-throwing LAC",
            )
        }
    };
    Ok(row(input.problem, Model::Bsp, params, measured, name))
}

/// One measured row of sub-table 4 (rounds of p-processor algorithms).
#[derive(Debug, Clone)]
pub struct RoundsRow {
    /// The problem.
    pub problem: Problem,
    /// The model.
    pub model: Model,
    /// Parameters.
    pub params: Params,
    /// Rounds lower bound (randomized — the sub-table's entries).
    pub lower: f64,
    /// Rounds upper-bound formula.
    pub upper_formula: f64,
    /// Measured rounds of our rounds-respecting algorithm, with the
    /// round budget it respected.
    pub measured: Option<(usize, u64)>,
    /// Algorithm name.
    pub algorithm: &'static str,
}

/// Regenerates one cell of sub-table 4.
pub fn rounds_row(
    problem: Problem,
    model: Model,
    n: usize,
    g: u64,
    l: u64,
    p: usize,
    seed: u64,
) -> Result<RoundsRow> {
    let params = match model {
        Model::Bsp => Params::bsp(n as f64, g as f64, l as f64, p as f64),
        _ => Params::qsm(n as f64, g as f64).with_p(p as f64),
    };
    let lower = best_lower_bound(problem, model, Mode::Randomized, Metric::Rounds, &params)
        .unwrap_or(f64::NAN);
    let upper_formula = upper_bound_rounds(problem, model, &params);
    let (measured, name): (Option<(usize, u64)>, &'static str) = match model {
        Model::Qsm | Model::SQsm => {
            let machine = if model == Model::Qsm {
                QsmMachine::qsm(g)
            } else {
                QsmMachine::sqsm(g)
            };
            let budget = parbounds_models::round_budget_qsm(n as u64, p as u64, g, 2);
            match problem {
                Problem::Or if model == Model::Qsm => {
                    let bits = workloads::random_bits(n, seed);
                    let out = algo_rounds::or_in_rounds_qsm(&machine, &bits, p)?;
                    round_respecting(&out.run.ledger, budget)?;
                    (
                        Some((out.run.ledger.num_phases(), budget)),
                        "write-combining OR, fan-in g·n/p",
                    )
                }
                Problem::Or | Problem::Parity => {
                    let bits = workloads::random_bits(n, seed);
                    let op = if problem == Problem::Or {
                        parbounds_algo::util::ReduceOp::Or
                    } else {
                        parbounds_algo::util::ReduceOp::Xor
                    };
                    let out = algo_rounds::reduce_in_rounds(&machine, &bits, p, op)?;
                    round_respecting(&out.run.ledger, budget)?;
                    (
                        Some((out.run.ledger.num_phases(), budget)),
                        "fan-in n/p reduction in rounds",
                    )
                }
                Problem::Lac => {
                    let h = (n / 8).max(1);
                    let items = workloads::sparse_items(n, h, seed);
                    let out = lac::lac_prefix(&machine, &items, p)?;
                    verified(
                        out.verify(&items),
                        out.run.ledger.num_phases(),
                        "prefix LAC",
                    )?;
                    round_respecting(&out.run.ledger, budget)?;
                    (
                        Some((out.run.ledger.num_phases(), budget)),
                        "prefix-sums exact compaction",
                    )
                }
            }
        }
        Model::Bsp => {
            let machine = BspMachine::new(p, g, l)?;
            let budget = parbounds_models::round_budget_bsp(n as u64, p as u64, g, l, 2);
            match problem {
                Problem::Or | Problem::Parity => {
                    let bits = workloads::random_bits(n, seed);
                    let k = (n / p).max(2);
                    let op = if problem == Problem::Or {
                        parbounds_algo::util::ReduceOp::Or
                    } else {
                        parbounds_algo::util::ReduceOp::Xor
                    };
                    let out = bsp_algos::bsp_reduce(&machine, &bits, k, op)?;
                    round_respecting(&out.ledger, budget)?;
                    (
                        Some((out.supersteps(), budget)),
                        "fan-in n/p reduction in rounds",
                    )
                }
                Problem::Lac => (None, "(no rounds-respecting BSP compaction implemented)"),
            }
        }
    };
    Ok(RoundsRow {
        problem,
        model,
        params,
        lower,
        upper_formula,
        measured,
        algorithm: name,
    })
}

/// The prefix-sums rounds count, exposed for sweep assertions.
pub fn prefix_rounds(n: usize, p: usize) -> usize {
    prefix::prefix_rounds_count(n, p)
}

/// A measured row for the Section 6.2 *related problems* — Load Balancing
/// and Padded Sort — which by Theorem 6.1 obey the same lower bounds as
/// LAC.
#[derive(Debug, Clone)]
pub struct RelatedRow {
    /// "load-balancing" or "padded-sort".
    pub problem: &'static str,
    /// The model the run used.
    pub model: Model,
    /// Parameters.
    pub params: Params,
    /// The LAC randomized lower bound (transferred by Theorem 6.1).
    pub lac_rand_lb: f64,
    /// Measured total model time.
    pub measured: f64,
    /// Phases/rounds used.
    pub phases: usize,
}

/// Measures Load Balancing on the QSM/s-QSM against the transferred LAC
/// lower bound. The workload: `h ≈ n/2` objects spread over `n` sources.
pub fn load_balance_row(model: Model, n: usize, g: u64, p: usize, seed: u64) -> Result<RelatedRow> {
    let machine = match model {
        Model::Qsm => QsmMachine::qsm(g),
        Model::SQsm => QsmMachine::sqsm(g),
        Model::Bsp => {
            return Err(ModelError::BadConfig(
                "load-balance rows are shared-memory (QSM/s-QSM only)".into(),
            ))
        }
    };
    let mut r = workloads::rng(seed);
    use rand::Rng;
    let counts: Vec<i64> = (0..n).map(|_| r.gen_range(0..2)).collect();
    let out = parbounds_algo::balance::load_balance(&machine, &counts, p.min(n))?;
    verified(out.verify(&counts), out.total_phases(), "load balancing")?;
    let params = Params::qsm(n as f64, g as f64).with_p(p as f64);
    let lac_rand_lb =
        best_lower_bound(Problem::Lac, model, Mode::Randomized, Metric::Time, &params)
            .unwrap_or(f64::NAN);
    Ok(RelatedRow {
        problem: "load-balancing",
        model,
        params,
        lac_rand_lb,
        measured: out.total_time() as f64,
        phases: out.total_phases(),
    })
}

/// Measures Padded Sort on the QSM/s-QSM against the transferred LAC lower
/// bound, on `n` uniform values.
pub fn padded_sort_row(model: Model, n: usize, g: u64, seed: u64) -> Result<RelatedRow> {
    let machine = match model {
        Model::Qsm => QsmMachine::qsm(g),
        Model::SQsm => QsmMachine::sqsm(g),
        Model::Bsp => {
            return Err(ModelError::BadConfig(
                "padded-sort rows are shared-memory (QSM/s-QSM only)".into(),
            ))
        }
    };
    let values = workloads::uniform_values(n, seed);
    let out = parbounds_algo::padded_sort::padded_sort_default(&machine, &values, seed ^ 0x9a)?;
    let phases: usize = out.runs.iter().map(|r| r.ledger.num_phases()).sum();
    verified(out.verify(&values), phases, "padded sort")?;
    let params = Params::qsm(n as f64, g as f64);
    let lac_rand_lb =
        best_lower_bound(Problem::Lac, model, Mode::Randomized, Metric::Time, &params)
            .unwrap_or(f64::NAN);
    Ok(RelatedRow {
        problem: "padded-sort",
        model,
        params,
        lac_rand_lb,
        measured: out.total_time() as f64,
        phases: out.runs.iter().map(|r| r.ledger.num_phases()).sum(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qsm_rows_have_measured_above_lower_bound() {
        for problem in [Problem::Parity, Problem::Or] {
            let row = qsm_time_row(problem, 1 << 12, 8, 1).unwrap();
            // Deterministic algorithms: measured must dominate det LB
            // (constants: allow modest slack on the LB side).
            assert!(
                row.measured_respects_lower_bound(false, 1.0),
                "{problem:?}: {row:?}"
            );
            assert!(row.measured.unwrap() > 0.0);
        }
        let row = qsm_time_row(Problem::Lac, 1 << 12, 8, 1).unwrap();
        assert!(row.measured_respects_lower_bound(true, 1.0), "{row:?}");
    }

    #[test]
    fn sqsm_parity_row_is_tight() {
        // Θ(g log n): measured / formula must be a small constant.
        let row = sqsm_time_row(Problem::Parity, 1 << 12, 4, 2).unwrap();
        let ratio = row.shape_ratio().unwrap();
        assert!((1.0..=4.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn bsp_rows_measure() {
        for problem in [Problem::Parity, Problem::Or] {
            let row = bsp_time_row(problem, 1 << 12, 2, 16, 64, 3).unwrap();
            assert!(row.measured.unwrap() > 0.0);
            assert!(row.measured_respects_lower_bound(false, 2.0), "{row:?}");
        }
    }

    #[test]
    fn unit_cr_parity_is_within_constant_of_theta() {
        let (measured, theta) = qsm_unit_cr_parity(1 << 12, 16, 4).unwrap();
        let ratio = measured / theta;
        assert!((0.5..=8.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn rounds_rows_respect_budgets_and_bounds() {
        let (n, g, l, p) = (1 << 12, 4, 16, 1 << 8);
        for problem in [Problem::Lac, Problem::Or, Problem::Parity] {
            for model in [Model::Qsm, Model::SQsm, Model::Bsp] {
                let row = rounds_row(problem, model, n, g, l, p, 5).unwrap();
                assert!(row.lower.is_finite());
                if let Some((rounds, _)) = row.measured {
                    // Measured rounds within a constant factor of formula.
                    assert!(
                        (rounds as f64) <= 16.0 * row.upper_formula + 8.0,
                        "{problem:?} {model:?}: {rounds} vs {}",
                        row.upper_formula
                    );
                }
            }
        }
    }
}
