//! Offline drop-in replacement for `rand_chacha`: a genuine ChaCha8 stream
//! generator implementing the workspace `rand` shim's [`RngCore`] /
//! [`SeedableRng`] traits.
//!
//! The keystream is the RFC 8439 ChaCha block function reduced to 8 rounds,
//! keyed by the 32-byte seed with a zero nonce and a 64-bit block counter,
//! so output is deterministic in the seed and of cryptographic quality —
//! more than enough for reproducible workloads and write arbitration.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;

/// A seeded ChaCha generator with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buf: [u64; 8],
    idx: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state: [u32; 16] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let initial = state;
        for _ in 0..ROUNDS / 2 {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (s, i) in state.iter_mut().zip(initial) {
            *s = s.wrapping_add(i);
        }
        for (w, pair) in self.buf.iter_mut().zip(state.chunks_exact(2)) {
            *w = pair[0] as u64 | ((pair[1] as u64) << 32);
        }
        self.counter = self.counter.wrapping_add(1);
        self.idx = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_u64() as u32
    }

    fn next_u64(&mut self) -> u64 {
        if self.idx >= self.buf.len() {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buf: [0; 8],
            idx: usize::MAX,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let mut b = ChaCha8Rng::seed_from_u64(5);
        let mut c = ChaCha8Rng::seed_from_u64(6);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn stream_is_balanced() {
        let mut r = ChaCha8Rng::seed_from_u64(11);
        let ones: u32 = (0..1000).map(|_| r.next_u64().count_ones()).sum();
        // ~32 bits set per word on average.
        assert!((30_000..34_000).contains(&ones), "popcount {ones}");
    }

    #[test]
    fn works_with_rng_extensions() {
        let mut r = ChaCha8Rng::seed_from_u64(1);
        let x = r.gen_range(0..100usize);
        assert!(x < 100);
        let heads = (0..2000).filter(|_| r.gen_bool(0.5)).count();
        assert!((800..1200).contains(&heads), "heads {heads}");
    }
}
