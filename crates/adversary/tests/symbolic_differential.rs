//! Differential property tests for the symbolic adversary layer: wherever
//! the `2^r` enumeration is feasible, the memoized closed forms must agree
//! with it *exactly*, and the Monte-Carlo mode's Wilson intervals must
//! cover the exactly-computed sensitivities.

use proptest::prelude::*;

use parbounds_adversary::goodness::TGoodness;
use parbounds_adversary::random_adversary::f_star;
use parbounds_adversary::symbolic::{
    exact_trace_sensitivity, mc_trace_sensitivity, FoldOp, FoldTree,
};
use parbounds_adversary::traces::{Entity, TraceEnsemble};
use parbounds_models::GsmMachine;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole gate as a property: on every enumerable fold tree and
    /// every partial map, the memoized goodness vector equals the one
    /// derived from the exhaustive trace ensemble, field for field, at
    /// every phase.
    #[test]
    fn memoized_goodness_matches_the_enumerative_ensemble(
        n in 2usize..=7,
        fan in 2usize..=3,
        xor in any::<bool>(),
        raw in prop::collection::vec(prop::option::of(any::<bool>()), 7),
    ) {
        let f: Vec<Option<bool>> = (0..n).map(|i| raw.get(i).copied().flatten()).collect();
        let op = if xor { FoldOp::Xor } else { FoldOp::Or };
        let tree = FoldTree::new(n, fan, op);
        let machine = GsmMachine::new(1, 1, 1);
        let ens = TraceEnsemble::build(&machine, || tree.program(), n).unwrap();
        for t in 1..=tree.num_phases() {
            let exact = TGoodness::check(&ens, &f, t);
            let memo = tree.memo_goodness(&f, t).inner;
            prop_assert_eq!(memo.max_states_degree, exact.max_states_degree,
                "states_degree at t={}", t);
            prop_assert_eq!(memo.max_states, exact.max_states, "states at t={}", t);
            prop_assert_eq!(memo.max_know, exact.max_know, "know at t={}", t);
            prop_assert_eq!(memo.max_aff_proc, exact.max_aff_proc, "aff_proc at t={}", t);
            prop_assert_eq!(memo.max_aff_cell, exact.max_aff_cell, "aff_cell at t={}", t);
            prop_assert_eq!(memo.fixed, exact.fixed, "fixed at t={}", t);
        }
    }

    /// Monte-Carlo coverage: across random enumerable OR trees and seeds,
    /// the 95% Wilson interval covers the exact sensitivity essentially
    /// always (we tolerate the nominal miss rate with margin).
    #[test]
    fn wilson_intervals_cover_the_exact_sensitivity(
        n in 4usize..=7,
        seed in 0u64..1000,
    ) {
        let tree = FoldTree::new(n, 2, FoldOp::Or);
        let machine = GsmMachine::new(1, 1, 1);
        let ens = TraceEnsemble::build(&machine, || tree.program(), n).unwrap();
        let t = tree.t_know_complete();
        let f = f_star(n);
        let exact = exact_trace_sensitivity(&ens, Entity::Proc(tree.root_proc()), t, &f);
        let mut covered = 0;
        for s in 0..5u64 {
            let est = mc_trace_sensitivity(&tree, &f, t, seed.wrapping_mul(31).wrapping_add(s), 160)
                .unwrap();
            if est.lo <= exact && exact <= est.hi {
                covered += 1;
            }
        }
        prop_assert!(covered >= 4, "{}/5 intervals covered exact {}", covered, exact);
    }
}
