//! Property-based tests of the adversary machinery: RANDOMSET
//! distribution-preservation under arbitrary interleavings (Fact 4.1),
//! refinement-order laws, Yao inequalities over random games, and the
//! Lemma 4.2 flavour — t-goodness-style budget invariants across random
//! GENERATE trajectories.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use parbounds_adversary::{
    check_yao_sampled, f_star, generate, mask_refines, random_set, refinement_masks, refines,
    DegreeAudit, Game, GsmRefine, OrDistribution, Refine, UniformBits,
};
use parbounds_models::{GsmEnv, GsmFnProgram, GsmMachine, Status, Word};

fn arb_partial(r: usize) -> impl Strategy<Value = Vec<Option<bool>>> {
    prop::collection::vec(prop::option::of(any::<bool>()), r)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Refinement is a partial order: reflexive, antisymmetric-ish
    /// (mutual refinement ⇒ equal), transitive.
    #[test]
    fn refinement_is_a_partial_order(f in arb_partial(6), extra in any::<u64>()) {
        prop_assert!(refines(&f, &f));
        prop_assert!(refines(&f, &f_star(6)));
        // Build a strict refinement by filling unset slots from `extra`.
        let mut g = f.clone();
        for (i, v) in g.iter_mut().enumerate() {
            if v.is_none() && extra >> i & 1 == 1 {
                *v = Some(extra >> (i + 8) & 1 == 1);
            }
        }
        prop_assert!(refines(&g, &f));
        if refines(&f, &g) {
            prop_assert_eq!(&f, &g);
        }
    }

    /// Every mask in refinement_masks refines f, and their count is
    /// exactly 2^(unset). The lazy iterator must agree with a brute
    /// filter of the full cube.
    #[test]
    fn refinement_masks_are_exactly_the_subcube(f in arb_partial(8)) {
        let masks = refinement_masks(&f).unwrap();
        let unset = f.iter().filter(|v| v.is_none()).count();
        prop_assert_eq!(masks.num_masks(), 1u64 << unset);
        let got: Vec<u32> = masks.collect();
        let brute: Vec<u32> =
            (0..1u32 << 8).filter(|&m| mask_refines(m, &f).unwrap()).collect();
        prop_assert_eq!(got, brute);
    }

    /// RANDOMSET never unsets and only sets the requested indices.
    #[test]
    fn randomset_is_monotone(f in arb_partial(8), s in prop::collection::vec(0usize..8, 0..8),
                             seed in any::<u64>()) {
        let dist = UniformBits(8);
        let mut g = f.clone();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        random_set(&dist, &mut g, &s, &mut rng);
        prop_assert!(refines(&g, &f));
        for i in 0..8 {
            if g[i] != f[i] {
                prop_assert!(f[i].is_none() && s.contains(&i));
            }
        }
    }

    /// Yao's inequality on random games: no mixture's worst case exceeds
    /// the best distributional deterministic success under uniform D.
    #[test]
    fn yao_holds_on_random_games(rows in prop::collection::vec(
        prop::collection::vec(any::<bool>(), 8), 1..12), seed in any::<u64>()) {
        let game = Game { success: rows };
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let (s1, s2) = check_yao_sampled(&game, 50, &mut rng);
        prop_assert!(s1 <= s2 + 1e-9);
    }

    /// The OR distribution's conditional probabilities are proper
    /// probabilities under arbitrary partial evidence.
    #[test]
    fn or_conditionals_are_probabilities(f in arb_partial(16), i in 0usize..16) {
        use parbounds_adversary::InputDistribution;
        let d = OrDistribution::new(16, 2, 1);
        let p = d.conditional_p_one(i, &f);
        prop_assert!((0.0..=1.0).contains(&p), "p = {}", p);
    }

    /// Theorem 3.1 bound value is monotone in r and μ.
    #[test]
    fn theorem_bound_monotone(mu in 1u64..64, r in 2usize..4096) {
        let b = DegreeAudit::theorem_3_1_bound(mu, r);
        prop_assert!(b > 0.0);
        prop_assert!(DegreeAudit::theorem_3_1_bound(mu, 2 * r) >= b);
        prop_assert!(DegreeAudit::theorem_3_1_bound(mu + 1, r) >= b * 0.8);
    }
}

/// Lemma 4.2 flavour: across many GENERATE runs against a real program,
/// every intermediate partial map stays "good" — the fixed-input budget
/// never exceeds the certificate-size accounting (≤ 2 certificates of ≤ 2
/// inputs per REFINE call for the fan-in-2 tree), and trajectories are
/// refinement chains.
#[test]
fn generate_trajectories_stay_good_with_high_probability() {
    fn tree4() -> impl parbounds_models::GsmProgram<Proc = ()> {
        GsmFnProgram::new(
            3,
            |_| (),
            |pid, _, env: &mut GsmEnv<'_>| match (pid, env.phase()) {
                (0 | 1, 0) => {
                    env.read(2 * pid);
                    env.read(2 * pid + 1);
                    Status::Active
                }
                (0 | 1, 1) => {
                    let x: Word = env
                        .delivered()
                        .iter()
                        .map(|(_, c)| c.first().copied().unwrap_or(0))
                        .fold(0, |a, b| a ^ (b & 1));
                    env.write(4 + pid, x);
                    Status::Done
                }
                (2, 2) => {
                    env.read(4);
                    env.read(5);
                    Status::Active
                }
                (2, 3) => {
                    env.write(6, 1);
                    Status::Done
                }
                _ => Status::Active,
            },
        )
    }
    let m = GsmMachine::new(1, 1, 1);
    let dist = UniformBits(4);
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let mut violations = 0;
    let trials = 200;
    let mut refiner = GsmRefine::build(&m, tree4, 4).unwrap();
    for _ in 0..trials {
        let (trajectory, _) = generate(&mut refiner, &dist, 3, &mut rng);
        for w in trajectory.windows(2) {
            if !refines(&w[1].1, &w[0].1) {
                violations += 1;
            }
            let newly_fixed = w[1].1.iter().filter(|v| v.is_some()).count()
                - w[0].1.iter().filter(|v| v.is_some()).count();
            // One REFINE call pins at most two certificates of ≤ 2 inputs
            // each per retry round, ≤ 4 retries: generous cap of 4 here
            // since certificates for this program have ≤ 2 variables and
            // the loop re-randomizes within the 4-input space.
            if newly_fixed > 4 {
                violations += 1;
            }
        }
    }
    assert_eq!(
        violations, 0,
        "{violations} bad trajectory steps in {trials} trials"
    );
}

/// The step bounds REFINE reports are *achievable* costs: re-running the
/// program on the completed input reaches at least the reported per-phase
/// big-steps for the phases REFINE inspected.
#[test]
fn refine_step_bounds_are_sound() {
    fn two_phase() -> impl parbounds_models::GsmProgram<Proc = ()> {
        GsmFnProgram::new(
            2,
            |_| (),
            |pid, _, env: &mut GsmEnv<'_>| match env.phase() {
                0 => {
                    env.read(pid);
                    Status::Active
                }
                1 => {
                    // Both processors write the same cell iff their bit is
                    // one: contention is input-dependent.
                    let bit = env.delivered()[0].1.first().copied().unwrap_or(0);
                    if bit == 1 {
                        env.write(9, pid as Word);
                    }
                    Status::Done
                }
                _ => Status::Done,
            },
        )
    }
    let m = GsmMachine::new(1, 1, 1);
    let dist = UniformBits(2);
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let mut refiner = GsmRefine::build(&m, two_phase, 2).unwrap();
    let mut f = f_star(2);
    // Phase 1 (t = 1): the adversary should force the max-contention
    // configuration (both bits 1 ⇒ contention 2) or prove it fixed
    // otherwise; the reported bound is the realized maximum over the final
    // refinement either way.
    let _x0 = Refine::<UniformBits>::refine(&mut refiner, 0, &mut f, &dist, &mut rng);
    let x1 = Refine::<UniformBits>::refine(&mut refiner, 1, &mut f, &dist, &mut rng);
    assert!(x1 >= 1);
    assert!(refinement_masks(&f).unwrap().num_masks() >= 1);
}

/// t-goodness is monotone under refinement: fixing more inputs never
/// increases |States|, |Know|, or the Aff sets over the surviving subcube.
#[test]
fn t_goodness_monotone_under_refinement() {
    use parbounds_adversary::{TGoodness, TraceEnsemble};
    fn tree(r: usize) -> impl parbounds_models::GsmProgram<Proc = ()> + use<> {
        let mut nodes = Vec::new();
        let mut bases = vec![0usize];
        let (mut width, mut next, mut level) = (r, r, 1usize);
        while width > 1 {
            let w2 = width.div_ceil(2);
            bases.push(next);
            for j in 0..w2 {
                nodes.push((level, j, width));
            }
            next += w2;
            width = w2;
            level += 1;
        }
        GsmFnProgram::new(
            nodes.len().max(1),
            move |_| (),
            move |pid, _, env: &mut GsmEnv<'_>| {
                let (level, j, prev_width) = nodes[pid];
                let rp = 2 * (level - 1);
                match env.phase() {
                    t if t < rp => Status::Active,
                    t if t == rp => {
                        env.read(bases[level - 1] + 2 * j);
                        if 2 * j + 1 < prev_width {
                            env.read(bases[level - 1] + 2 * j + 1);
                        }
                        Status::Active
                    }
                    _ => {
                        let x: Word = env
                            .delivered()
                            .iter()
                            .map(|(_, c)| c.iter().fold(0, |a, &b| a ^ (b & 1)))
                            .fold(0, |a, b| a ^ b);
                        env.write(bases[level] + j, x);
                        Status::Done
                    }
                }
            },
        )
    }
    let r = 6;
    let m = GsmMachine::new(1, 1, 1);
    let ens = TraceEnsemble::build(&m, || tree(r), r).unwrap();
    let t = ens.num_phases();
    let mut rng = ChaCha8Rng::seed_from_u64(17);
    use rand::Rng;
    for _ in 0..20 {
        // Random refinement chain f* > f1 > f2.
        let mut f1 = f_star(r);
        let mut f2;
        let i = rng.gen_range(0..r);
        f1[i] = Some(rng.gen_bool(0.5));
        f2 = f1.clone();
        let j = (i + 1 + rng.gen_range(0..r - 1)) % r;
        f2[j] = Some(rng.gen_bool(0.5));
        let g0 = TGoodness::check(&ens, &f_star(r), t);
        let g1 = TGoodness::check(&ens, &f1, t);
        let g2 = TGoodness::check(&ens, &f2, t);
        assert!(g1.max_states <= g0.max_states);
        assert!(g2.max_states <= g1.max_states);
        assert!(g1.max_know <= g0.max_know);
        assert!(g2.max_know <= g1.max_know);
        assert!(g2.fixed == 2 && g1.fixed == 1);
    }
}
