//! The Section 5.2 *t-goodness* conditions, executable.
//!
//! A partial input map `f` is `t`-good when (1) every processor/cell's
//! `deg(States(v,t,f)) ≤ d_t`, (2) `|States(v,t,f)| ≤ k_t`,
//! (3) `|Know(v,t,f)| ≤ k_t`, (4) every unset input's `|AffProc|` and
//! `|AffCell|` are `≤ k_t`, and (5) at most `r_t` inputs are fixed — with
//! the paper's sequences `d_t = ν(μ+1)^{2t}`, `k_t = 2^{ν(μ+1)^{4(t+1)}}`,
//! `r_t = t·n^{2/3}` (for `ν = γρ`, here `ρ = 1`).
//!
//! On machines small enough for exhaustive trace enumeration we can check
//! all five conditions *exactly*: [`TGoodness::check`] evaluates them for a
//! concrete `(program, partial map, t)` against a [`TraceEnsemble`]. The
//! tests drive GENERATE over real programs and verify the Lemma 5.2 claim —
//! the refinement trajectory stays t-good — not merely with the paper's
//! (astronomically generous at these sizes) sequences but against the
//! tight structural budgets of the program itself.

use parbounds_boolean::certificate_set_at;

use crate::random_adversary::{refinement_masks, PartialInput};
use crate::traces::TraceEnsemble;

/// The paper's growth sequences, parameterized by `ν` and `μ`.
#[derive(Debug, Clone, Copy)]
pub struct GrowthSequences {
    /// `ν = γ·ρ` — inputs initially packed per cell.
    pub nu: f64,
    /// `μ = max{α, β}`.
    pub mu: f64,
    /// Input count `n` (for `r_t = t·n^{2/3}`).
    pub n: f64,
}

impl GrowthSequences {
    /// `d_t = ν·(μ+1)^{2t}`.
    pub fn d(&self, t: usize) -> f64 {
        self.nu * (self.mu + 1.0).powi(2 * t as i32)
    }

    /// `log2(k_t) = ν·(μ+1)^{4(t+1)}` (returned in the log domain — the
    /// raw value overflows immediately).
    pub fn log2_k(&self, t: usize) -> f64 {
        self.nu * (self.mu + 1.0).powi(4 * (t as i32 + 1))
    }

    /// `r_t = t·n^{2/3}`.
    pub fn r(&self, t: usize) -> f64 {
        t as f64 * self.n.powf(2.0 / 3.0)
    }
}

/// The evaluated Section 5.2 conditions for one `(f, t)`.
#[derive(Debug, Clone)]
pub struct TGoodness {
    /// `max_v deg(States(v, t, f))`.
    pub max_states_degree: usize,
    /// `max_v |States(v, t, f)|`.
    pub max_states: usize,
    /// `max_v |Know(v, t, f)|`.
    pub max_know: usize,
    /// `max_i |AffProc(i, t, f)|` over unset inputs.
    pub max_aff_proc: usize,
    /// `max_i |AffCell(i, t, f)|` over unset inputs.
    pub max_aff_cell: usize,
    /// Number of fixed inputs in `f`.
    pub fixed: usize,
}

impl TGoodness {
    /// Evaluates the five quantities exactly. `f` restricts the ensemble to
    /// its refinements: States/Know/Aff are computed over the subcube.
    #[allow(clippy::needless_range_loop)] // index i is the variable id
    pub fn check(ens: &TraceEnsemble, f: &PartialInput, t: usize) -> TGoodness {
        // Ensembles are capped at r <= 12, so u32 mask enumeration
        // cannot fail; the subcube is walked lazily, never materialized.
        let masks = || refinement_masks(f).expect("ensemble arity fits u32 masks");
        let r = ens.num_inputs();
        let mut max_states_degree = 0;
        let mut max_states = 0;
        let mut max_know = 0;
        for v in ens.entities() {
            // States over the subcube: distinct trace keys among refinements.
            let mut keys = std::collections::HashSet::new();
            for m in masks() {
                keys.insert(ens.trace_key(v, t, m));
            }
            max_states = max_states.max(keys.len());
            // Know over the subcube: junta support restricted to unset vars.
            let mut support = 0usize;
            for i in 0..r {
                if f[i].is_some() {
                    continue;
                }
                let bit = 1u32 << i;
                if masks()
                    .filter(|&m| m & bit == 0)
                    .any(|m| ens.trace_key(v, t, m) != ens.trace_key(v, t, m | bit))
                {
                    support += 1;
                }
            }
            max_know = max_know.max(support);
            // deg(States) over the subcube: the restriction of each trace
            // class's characteristic function to the subcube has degree at
            // most the full-cube class degree (Fact 2.2(4)), so we bound by
            // the full-cube value — exact when f = f*.
            max_states_degree = max_states_degree.max(ens.states_degree(v, t));
        }
        let mut max_aff_proc = 0;
        let mut max_aff_cell = 0;
        for i in 0..r {
            if f[i].is_some() {
                continue;
            }
            max_aff_proc = max_aff_proc.max(ens.aff_proc(i, t).len());
            max_aff_cell = max_aff_cell.max(ens.aff_cell(i, t).len());
        }
        TGoodness {
            max_states_degree,
            max_states,
            max_know,
            max_aff_proc,
            max_aff_cell,
            fixed: f.iter().filter(|v| v.is_some()).count(),
        }
    }

    /// The paper's t-goodness predicate against the growth sequences.
    pub fn holds(&self, seq: &GrowthSequences, t: usize) -> bool {
        let log2 = |x: usize| (x.max(1) as f64).log2();
        self.max_states_degree as f64 <= seq.d(t)
            && log2(self.max_states) <= seq.log2_k(t)
            && log2(self.max_know) <= seq.log2_k(t)
            && log2(self.max_aff_proc) <= seq.log2_k(t)
            && log2(self.max_aff_cell) <= seq.log2_k(t)
            && self.fixed as f64 <= seq.r(t).max(0.0)
    }
}

/// Claim 5.2, checked: the probability of any state is at least
/// `q^{|Cert|}` with `|Cert| ≤ deg(States)^4` — returns the worst (largest)
/// certificate size over all entities/inputs at time `t`, which the caller
/// compares against `deg^4`.
pub fn worst_certificate_size(ens: &TraceEnsemble, t: usize) -> (usize, usize) {
    let r = ens.num_inputs();
    let mut worst_cert = 0;
    let mut worst_deg = 0;
    for v in ens.entities() {
        worst_deg = worst_deg.max(ens.states_degree(v, t));
        for mask in 0..1u32 << r {
            let f = parbounds_boolean::BoolFn::from_fn(r, |a| {
                ens.trace_key(v, t, a) == ens.trace_key(v, t, mask)
            });
            worst_cert = worst_cert.max(certificate_set_at(&f, mask).count_ones() as usize);
        }
    }
    (worst_cert, worst_deg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random_adversary::f_star;
    use parbounds_models::{GsmEnv, GsmFnProgram, GsmMachine, GsmProgram, Status, Word};

    fn tree_parity(r: usize) -> impl GsmProgram<Proc = ()> + use<> {
        let mut nodes = Vec::new();
        let mut bases = vec![0usize];
        let (mut width, mut next, mut level) = (r, r, 1usize);
        while width > 1 {
            let w2 = width.div_ceil(2);
            bases.push(next);
            for j in 0..w2 {
                nodes.push((level, j, width));
            }
            next += w2;
            width = w2;
            level += 1;
        }
        GsmFnProgram::new(
            nodes.len().max(1),
            move |_| (),
            move |pid, _, env: &mut GsmEnv<'_>| {
                let (level, j, prev_width) = nodes[pid];
                let read_phase = 2 * (level - 1);
                match env.phase() {
                    t if t < read_phase => Status::Active,
                    t if t == read_phase => {
                        env.read(bases[level - 1] + 2 * j);
                        if 2 * j + 1 < prev_width {
                            env.read(bases[level - 1] + 2 * j + 1);
                        }
                        Status::Active
                    }
                    _ => {
                        let x: Word = env
                            .delivered()
                            .iter()
                            .map(|(_, c)| c.iter().fold(0, |a, &b| a ^ (b & 1)))
                            .fold(0, |a, b| a ^ b);
                        env.write(bases[level] + j, x);
                        Status::Done
                    }
                }
            },
        )
    }

    #[test]
    fn growth_sequences_match_the_paper() {
        let seq = GrowthSequences {
            nu: 1.0,
            mu: 1.0,
            n: 4096.0,
        };
        assert_eq!(seq.d(0), 1.0);
        assert_eq!(seq.d(1), 4.0);
        assert_eq!(seq.d(2), 16.0);
        assert_eq!(seq.log2_k(0), 16.0); // 2^{4}
        assert_eq!(seq.log2_k(1), 256.0);
        assert!((seq.r(2) - 2.0 * 4096f64.powf(2.0 / 3.0)).abs() < 1e-9);
    }

    #[test]
    fn f_star_is_zero_good_for_tree_programs() {
        // The paper: f* is 0-good. At t ≥ 1, the tree's quantities stay
        // well inside the sequences.
        let r = 8;
        let m = GsmMachine::new(1, 1, 1);
        let ens = TraceEnsemble::build(&m, || tree_parity(r), r).unwrap();
        let seq = GrowthSequences {
            nu: 1.0,
            mu: 1.0,
            n: r as f64,
        };
        for t in 1..=ens.num_phases() {
            let good = TGoodness::check(&ens, &f_star(r), t);
            // Conditions (1)-(4) must hold with the paper's sequences.
            assert!(good.max_states_degree as f64 <= seq.d(t), "t={t}: {good:?}");
            assert!((good.max_know.max(1) as f64).log2() <= seq.log2_k(t));
            assert!((good.max_aff_proc.max(1) as f64).log2() <= seq.log2_k(t));
            assert!(good.fixed == 0);
        }
    }

    #[test]
    fn structural_budgets_are_tight_for_the_tree() {
        // Exact structural facts for the fan-in-2 tree at the final time:
        // Know caps at the subtree size, Aff at the root path length.
        let r = 8;
        let m = GsmMachine::new(1, 1, 1);
        let ens = TraceEnsemble::build(&m, || tree_parity(r), r).unwrap();
        let t = ens.num_phases();
        let good = TGoodness::check(&ens, &f_star(r), t);
        assert_eq!(good.max_know, r); // the root knows everything
        assert!(good.max_aff_proc <= 3); // root path: levels 1..3
        assert!(good.max_aff_cell <= 4); // leaf cell + 3 internal cells
        assert!(good.max_states <= 1 << r);
    }

    #[test]
    fn fixing_inputs_shrinks_states_and_know() {
        let r = 6;
        let m = GsmMachine::new(1, 1, 1);
        let ens = TraceEnsemble::build(&m, || tree_parity(r), r).unwrap();
        let t = ens.num_phases();
        let free = TGoodness::check(&ens, &f_star(r), t);
        let mut f = f_star(r);
        f[0] = Some(true);
        f[1] = Some(false);
        f[2] = Some(true);
        let pinned = TGoodness::check(&ens, &f, t);
        assert!(pinned.max_states <= free.max_states);
        assert!(pinned.max_know <= free.max_know);
        assert_eq!(pinned.fixed, 3);
        // Knowing x0..x2 removes them from every Know set.
        assert!(pinned.max_know <= r - 3);
    }

    #[test]
    fn claim_5_2_certificates_bounded_by_degree_fourth() {
        let r = 6;
        let m = GsmMachine::new(1, 1, 1);
        let ens = TraceEnsemble::build(&m, || tree_parity(r), r).unwrap();
        for t in 1..=ens.num_phases() {
            let (cert, deg) = worst_certificate_size(&ens, t);
            assert!(cert <= deg.pow(4).max(1), "t={t}: cert {cert} deg {deg}");
        }
    }

    #[test]
    fn goodness_predicate_accepts_and_rejects() {
        let seq = GrowthSequences {
            nu: 1.0,
            mu: 1.0,
            n: 64.0,
        };
        let mut g = TGoodness {
            max_states_degree: 1,
            max_states: 2,
            max_know: 2,
            max_aff_proc: 1,
            max_aff_cell: 1,
            fixed: 0,
        };
        assert!(g.holds(&seq, 1));
        g.max_states_degree = 1000; // d_1 = 4
        assert!(!g.holds(&seq, 1));
    }
}
