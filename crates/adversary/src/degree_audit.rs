//! The degree auditor — Theorems 3.1 and 7.2 as executable checks.
//!
//! The deterministic Parity/OR lower bounds track, phase by phase, an upper
//! bound on the *degree* of the integer polynomials describing processor
//! states and cell contents: with `τ_j` the maximum number of read/write
//! requests by any processor in phase `j` and `τ'_j` the maximum contention,
//! the degree after phase `l` is at most
//!
//! ```text
//! b_l = Π_{j=1..l} (3 + τ_j + 2·τ'_j)   (b_0 = 1)
//! ```
//!
//! and a correct Parity algorithm on `r` effective inputs must reach
//! `b_l ≥ r` because `deg(Parity_r) = r` (verified exhaustively in
//! `parbounds-boolean`). Chaining the inequalities of the proof yields
//! `r ≤ (6μ)^{T/μ}`, i.e. `T ≥ μ·log r / log 6μ`.
//!
//! The auditor instruments *real executions* on the GSM simulator: it reads
//! `(τ_j, τ'_j)` off the per-phase ledger/trace of any program, computes the
//! recurrence (in the log domain, so no overflow), and checks both
//! inequalities. Applied to our own Parity algorithms (whose correctness on
//! all `2^r` inputs is established by exhaustive execution) this *validates*
//! the theorem's accounting on concrete machines; applied to a would-be
//! too-fast algorithm it pinpoints the phase budget it would have to break.

use parbounds_models::{GsmMachine, GsmProgram, GsmTrace, Result, Word};

/// Per-phase quantities and the running degree cap of one execution.
#[derive(Debug, Clone)]
pub struct DegreeAudit {
    /// `(τ_j, τ'_j)` per phase: max requests per processor, max contention.
    pub taus: Vec<(u64, u64)>,
    /// `log2(b_l)` after every phase (log-domain product of the recurrence).
    pub log2_degree_cap: Vec<f64>,
    /// Total big-steps `Σ τ''_j = Σ max(⌈τ/α⌉, ⌈τ'/β⌉)`.
    pub big_steps: u64,
    /// The machine's `μ`.
    pub mu: u64,
}

impl DegreeAudit {
    /// Builds the audit from a traced GSM execution.
    pub fn from_trace(machine: &GsmMachine, trace: &GsmTrace) -> Self {
        let mut taus = Vec::with_capacity(trace.phases.len());
        let mut log2_degree_cap = Vec::with_capacity(trace.phases.len());
        let mut acc = 0f64; // log2(b_0) = 0
        let mut big_steps = 0;
        for phase in &trace.phases {
            let tau = phase
                .reads
                .iter()
                .zip(phase.writes.iter())
                .map(|(r, w)| r.len().max(w.len()) as u64)
                .max()
                .unwrap_or(0)
                .max(1);
            // Contention: per-cell access counts across all processors.
            let mut counts = std::collections::HashMap::new();
            for r in &phase.reads {
                for &(addr, _) in r {
                    *counts.entry(addr).or_insert(0u64) += 1;
                }
            }
            for w in &phase.writes {
                for &(addr, _) in w {
                    *counts.entry(addr).or_insert(0u64) += 1;
                }
            }
            let tau_p = counts.values().copied().max().unwrap_or(0).max(1);
            acc += ((3 + tau + 2 * tau_p) as f64).log2();
            taus.push((tau, tau_p));
            log2_degree_cap.push(acc);
            big_steps += phase.big_steps;
        }
        DegreeAudit {
            taus,
            log2_degree_cap,
            big_steps,
            mu: machine.mu(),
        }
    }

    /// Final `log2(b_l)`.
    pub fn final_log2_cap(&self) -> f64 {
        self.log2_degree_cap.last().copied().unwrap_or(0.0)
    }

    /// The degree-cap inequality of Theorem 3.1: a correct algorithm for a
    /// degree-`d` function must satisfy `b_l ≥ d`.
    pub fn supports_degree(&self, d: usize) -> bool {
        self.final_log2_cap() >= (d.max(1) as f64).log2() - 1e-9
    }

    /// The chained inequality `r ≤ (6μ)^{T/μ}` ⇔
    /// `T/μ ≥ log r / log 6μ`, using the execution's realized time
    /// `T = μ·Σ τ''_j`.
    pub fn satisfies_time_bound(&self, r: usize) -> bool {
        let t_over_mu = self.big_steps as f64;
        let need = (r.max(2) as f64).log2() / ((6 * self.mu) as f64).log2();
        t_over_mu + 1e-9 >= need
    }

    /// The Theorem 3.1 lower-bound value `μ·log r / log 6μ` for comparison
    /// against measured times.
    pub fn theorem_3_1_bound(mu: u64, r: usize) -> f64 {
        mu as f64 * (r.max(2) as f64).log2() / ((6 * mu.max(1)) as f64).log2()
    }
}

/// Outcome of auditing a parity program exhaustively.
#[derive(Debug)]
pub struct ParityAuditReport {
    /// Whether the program computed parity correctly on every input.
    pub correct: bool,
    /// The audit of the worst (longest) execution.
    pub worst: DegreeAudit,
    /// Largest measured time across inputs.
    pub max_time: u64,
}

/// Runs `make_program` on **every** `r`-bit input on `machine`, checks that
/// the output cell `out` holds the parity, and audits the degree recurrence
/// of the worst execution. `r` must be small (exhaustive `2^r` runs).
pub fn audit_parity_program<P, F>(
    machine: &GsmMachine,
    make_program: F,
    out: usize,
    r: usize,
) -> Result<ParityAuditReport>
where
    P: GsmProgram + Sync,
    P::Proc: Send,
    F: Fn() -> P,
{
    assert!(r <= 16, "exhaustive audit limited to r <= 16 inputs");
    let mut correct = true;
    let mut worst: Option<DegreeAudit> = None;
    let mut max_time = 0;
    for mask in 0..1u32 << r {
        let input: Vec<Word> = (0..r).map(|i| Word::from(mask >> i & 1 == 1)).collect();
        let (res, trace) = machine.run_traced(&make_program(), &input)?;
        let expected = Word::from(mask.count_ones() % 2 == 1);
        let got = res.memory.get(out).last().copied().unwrap_or(0) & 1;
        if got != expected {
            correct = false;
        }
        max_time = max_time.max(res.time());
        let audit = DegreeAudit::from_trace(machine, &trace);
        let better = match &worst {
            Some(w) => audit.big_steps > w.big_steps,
            None => true,
        };
        if better {
            worst = Some(audit);
        }
    }
    Ok(ParityAuditReport {
        correct,
        worst: worst.expect("at least one input"),
        max_time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use parbounds_models::{GsmEnv, GsmFnProgram, Status};

    /// A simple binary-tree parity program on the GSM: processor j at level
    /// l reads two cells of the previous level, writes the XOR.
    fn tree_parity_program(r: usize) -> impl GsmProgram<Proc = ()> + use<> {
        // Cells: input at [0, r); level l at r + offsets. One proc per
        // internal node; pid encodes (level, node) via precomputed table.
        let mut nodes = Vec::new();
        let mut width = r;
        let mut level = 1usize;
        let mut bases = vec![0usize];
        let mut next = r;
        while width > 1 {
            let w2 = width.div_ceil(2);
            bases.push(next);
            for j in 0..w2 {
                nodes.push((level, j, width));
            }
            next += w2;
            width = w2;
            level += 1;
        }
        let bases2 = bases.clone();
        let nodes2 = nodes.clone();
        GsmFnProgram::new(
            nodes.len().max(1),
            move |_pid| (),
            move |pid, _st, env: &mut GsmEnv<'_>| {
                if nodes2.is_empty() {
                    // r == 1: copy input bit to cell 1... handled by caller.
                    return Status::Done;
                }
                let (level, j, prev_width) = nodes2[pid];
                let read_phase = 2 * (level - 1);
                let t = env.phase();
                if t < read_phase {
                    Status::Active
                } else if t == read_phase {
                    env.read(bases2[level - 1] + 2 * j);
                    if 2 * j + 1 < prev_width {
                        env.read(bases2[level - 1] + 2 * j + 1);
                    }
                    Status::Active
                } else {
                    let x: Word = env
                        .delivered()
                        .iter()
                        .map(|(_, c)| c.iter().map(|&v| v & 1).fold(0, |a, b| a ^ b))
                        .fold(0, |a, b| a ^ b);
                    env.write(bases2[level] + j, x);
                    Status::Done
                }
            },
        )
    }

    fn out_cell(r: usize) -> usize {
        // Root cell address: mirrors the layout in tree_parity_program.
        let mut width = r;
        let mut next = r;
        let mut base = 0;
        while width > 1 {
            let w2 = width.div_ceil(2);
            base = next;
            next += w2;
            width = w2;
        }
        base
    }

    #[test]
    fn audit_confirms_correct_tree_parity() {
        for r in [2usize, 3, 5, 8] {
            let m = GsmMachine::new(1, 1, 1);
            let report =
                audit_parity_program(&m, || tree_parity_program(r), out_cell(r), r).unwrap();
            assert!(report.correct, "r={r}");
            // Theorem 3.1: the degree recurrence must reach deg(parity_r)=r.
            assert!(report.worst.supports_degree(r), "r={r}");
            assert!(report.worst.satisfies_time_bound(r), "r={r}");
            // And the measured time respects the theorem's bound.
            assert!(
                report.max_time as f64 >= DegreeAudit::theorem_3_1_bound(1, r) - 1e-9,
                "r={r}: {} < bound",
                report.max_time
            );
        }
    }

    #[test]
    fn audit_detects_incorrect_algorithm() {
        // A program that just writes 0: fails correctness, and its single
        // trivial phase caps the degree at 3 + 1 + 2 = 6 < 8 = r, so the
        // audit certifies it cannot compute Parity_8 either.
        let m = GsmMachine::new(1, 1, 1);
        let make = || {
            GsmFnProgram::new(
                1,
                |_| (),
                |_, _, env: &mut GsmEnv<'_>| {
                    env.write(100, 0);
                    Status::Done
                },
            )
        };
        let report = audit_parity_program(&m, make, 100, 8).unwrap();
        assert!(!report.correct);
        assert!(!report.worst.supports_degree(8));
        // Degree 6 is within the one-phase cap, of course.
        assert!(report.worst.supports_degree(6));
    }

    #[test]
    fn degree_cap_grows_with_contention() {
        // A phase with contention kappa contributes log2(3 + tau + 2kappa).
        let m = GsmMachine::new(1, 1, 1);
        let heavy = GsmFnProgram::new(
            8,
            |_| (),
            |pid, _, env: &mut GsmEnv<'_>| {
                env.write(0, pid as Word);
                Status::Done
            },
        );
        let (_, trace) = m.run_traced(&heavy, &[]).unwrap();
        let audit = DegreeAudit::from_trace(&m, &trace);
        assert_eq!(audit.taus, vec![(1, 8)]);
        assert!((audit.final_log2_cap() - (3f64 + 1.0 + 16.0).log2()).abs() < 1e-9);
    }

    #[test]
    fn big_steps_track_machine_accounting() {
        // alpha=2: 4 requests per proc = 2 big-steps.
        let m = GsmMachine::new(2, 4, 1);
        let prog = GsmFnProgram::new(
            4,
            |_| (),
            |pid, _, env: &mut GsmEnv<'_>| {
                for j in 0..4 {
                    env.write(10 + pid * 4 + j, 1);
                }
                Status::Done
            },
        );
        let (res, trace) = m.run_traced(&prog, &[]).unwrap();
        let audit = DegreeAudit::from_trace(&m, &trace);
        assert_eq!(audit.big_steps, 2);
        assert_eq!(res.time(), audit.mu * audit.big_steps);
    }

    #[test]
    fn theorem_bound_value_is_monotone() {
        assert!(DegreeAudit::theorem_3_1_bound(2, 1024) > DegreeAudit::theorem_3_1_bound(2, 16));
        assert!(DegreeAudit::theorem_3_1_bound(8, 1024) > DegreeAudit::theorem_3_1_bound(2, 1024));
    }
}
