//! Memoized, closed-form `Know`/`AffProc`/`AffCell`/`States` analysis for
//! the fold-tree program family.
//!
//! The exhaustive [`TraceEnsemble`](crate::traces::TraceEnsemble) computes
//! the Section 5.1 sets by running the program on all `2^r` inputs — exact,
//! but dead at `r > 12`. For the tree-shaped programs the §8 families
//! compile to, every one of those sets has a *closed form* in terms of leaf
//! intervals: the trace of the node covering leaves `[lo, hi)` depends on
//! exactly the unset inputs of `[lo, hi)` (XOR), or of its 1-free child
//! intervals (OR). [`FoldTree::memo_goodness`] evaluates the full
//! [`TGoodness`] vector from two prefix-sum arrays in `O(n)` per check —
//! the same six numbers `TGoodness::check` derives from `2^r` executions,
//! which the differential tests verify on every enumerable machine.
//!
//! [`SymBudgets`] carries the §5.2 growth sequences `d_t`, `k_t`, `r_t` as
//! [`SymExpr`] terms (with `n^{2/3}` as `⌊(n²)^{1/3}⌋`), so t-goodness at
//! `n ≥ 4096` is decided in the log domain without ever materializing
//! `k_t = 2^{ν(μ+1)^{4(t+1)}}`.

use parbounds_analyze::symbolic::expr::{build, ceil_log_u64, kpow_u64};
use parbounds_analyze::symbolic::{GridPoint, SymError, SymExpr};
use parbounds_models::{GsmEnv, GsmFnProgram, GsmProgram, Status, Word};

use crate::goodness::TGoodness;
use crate::random_adversary::PartialInput;

/// The associative fold a tree family computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FoldOp {
    /// Parity: every input always matters.
    Xor,
    /// Disjunction: a fixed 1 anywhere in an interval makes its fold
    /// constant, killing downstream dependence.
    Or,
}

/// A `fan`-ary fold tree over `n` boolean leaves, in the same GSM layout
/// the goodness tests use: node `(l, j)` covers leaves
/// `[j·fan^l, (j+1)·fan^l) ∩ [0, n)`, reads its children at 0-based phase
/// `2(l−1)` and writes cell `bases[l] + j` at phase `2l−1`.
#[derive(Debug, Clone)]
pub struct FoldTree {
    n: usize,
    fan: usize,
    op: FoldOp,
    /// `widths[l]` = number of nodes at level `l` (`widths[0] = n` leaves).
    widths: Vec<usize>,
    /// `bases[l]` = first cell address of level `l` (`bases[0] = 0` is the
    /// γ-packed input region, `bases[1] = n`).
    bases: Vec<usize>,
}

impl FoldTree {
    /// Builds the tree shape. `n ≥ 2`, `fan ≥ 2`.
    pub fn new(n: usize, fan: usize, op: FoldOp) -> FoldTree {
        assert!(n >= 2, "fold tree needs at least 2 leaves");
        assert!(fan >= 2, "fold tree needs fan-in at least 2");
        let mut widths = vec![n];
        let mut bases = vec![0usize, n];
        let mut width = n;
        while width > 1 {
            width = width.div_ceil(fan);
            widths.push(width);
            bases.push(bases.last().unwrap() + width);
        }
        bases.pop();
        FoldTree {
            n,
            fan,
            op,
            widths,
            bases,
        }
    }

    /// Number of leaves.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Fan-in.
    pub fn fan(&self) -> usize {
        self.fan
    }

    /// The fold operation.
    pub fn op(&self) -> FoldOp {
        self.op
    }

    /// Number of internal levels `L = ⌈log_fan n⌉`.
    pub fn levels(&self) -> usize {
        self.widths.len() - 1
    }

    /// Total phases of the program, `2L`.
    pub fn num_phases(&self) -> usize {
        2 * self.levels()
    }

    /// Pid of the root node (the last node in level-major order).
    pub fn root_proc(&self) -> usize {
        self.widths[1..].iter().sum::<usize>() - 1
    }

    /// Cell address the root writes.
    pub fn root_cell(&self) -> usize {
        self.bases[self.levels()]
    }

    /// First phase (1-based) at which some entity's `Know` is all of
    /// `[0, n)`: the root processor right after its read, `2L − 1`.
    pub fn t_know_complete(&self) -> usize {
        2 * self.levels() - 1
    }

    /// Live working-set entries of one memoized check: the two prefix-sum
    /// arrays (the enumerative path holds `2^r` keys per entity instead).
    pub fn peak_set_entries(&self) -> u64 {
        2 * (self.n as u64 + 1)
    }

    /// The executable GSM program for this shape, matching the memoized
    /// analysis phase for phase.
    pub fn program(&self) -> impl GsmProgram<Proc = ()> + use<> {
        let fan = self.fan;
        let op = self.op;
        let bases = self.bases.clone();
        let mut nodes = Vec::new();
        for (l, &w) in self.widths.iter().enumerate().skip(1) {
            for j in 0..w {
                nodes.push((l, j, self.widths[l - 1]));
            }
        }
        GsmFnProgram::new(
            nodes.len().max(1),
            move |_| (),
            move |pid, _, env: &mut GsmEnv<'_>| {
                let (level, j, prev_width) = nodes[pid];
                let read_phase = 2 * (level - 1);
                match env.phase() {
                    t if t < read_phase => Status::Active,
                    t if t == read_phase => {
                        for c in 0..fan {
                            if fan * j + c < prev_width {
                                env.read(bases[level - 1] + fan * j + c);
                            }
                        }
                        Status::Active
                    }
                    _ => {
                        let fold = |a: Word, b: Word| match op {
                            FoldOp::Xor => a ^ (b & 1),
                            FoldOp::Or => a | (b & 1),
                        };
                        let x: Word = env
                            .delivered()
                            .iter()
                            .map(|(_, c)| c.iter().fold(0, |a, &b| fold(a, b)))
                            .fold(0, fold);
                        env.write(bases[level] + j, x);
                        Status::Done
                    }
                }
            },
        )
    }

    /// Leaf interval `[lo, hi)` of node `j` at level `l`.
    fn cover(&self, l: usize, j: usize) -> (usize, usize) {
        let span = kpow_u64(self.fan as u64, l as u64);
        let lo = (j as u64).saturating_mul(span).min(self.n as u64) as usize;
        let hi = (lo as u64).saturating_add(span).min(self.n as u64) as usize;
        (lo, hi)
    }

    /// The six [`TGoodness`] quantities of `(f, t)`, computed from prefix
    /// sums instead of trace enumeration. Mirrors `TGoodness::check` on
    /// this program exactly (the differential tests assert field equality
    /// on every enumerable machine).
    pub fn memo_goodness(&self, f: &PartialInput, t: usize) -> MemoGoodness {
        assert_eq!(f.len(), self.n, "partial map arity mismatch");
        assert!(t >= 1, "t counts completed phases, 1-based");
        // unset_ps[i] / ones_ps[i] = #unset / #fixed-1 among f[0..i].
        let mut unset_ps = vec![0u64; self.n + 1];
        let mut ones_ps = vec![0u64; self.n + 1];
        for (i, v) in f.iter().enumerate() {
            unset_ps[i + 1] = unset_ps[i] + u64::from(v.is_none());
            ones_ps[i + 1] = ones_ps[i] + u64::from(*v == Some(true));
        }
        let unset = |lo: usize, hi: usize| unset_ps[hi] - unset_ps[lo];
        let ones = |lo: usize, hi: usize| ones_ps[hi] - ones_ps[lo];
        let any_unset = unset_ps[self.n] > 0;
        let levels = self.levels();
        // A child interval contributes a distinguishable value (and its
        // unset leaves) iff it has an unset leaf and — for OR — no fixed 1.
        let qualifies = |lo: usize, hi: usize| {
            unset(lo, hi) > 0 && !(self.op == FoldOp::Or && ones(lo, hi) > 0)
        };
        let l_max_proc = levels.min(t.div_ceil(2)); // active iff t ≥ 2l−1
        let l_max_cell = levels.min(t / 2); // written iff t ≥ 2l
        let mut max_states_log2 = 0usize;
        let mut max_know = 0u64;
        // Leaf cells hold their input bit from the first phase on.
        if any_unset {
            max_states_log2 = 1;
            max_know = 1;
        }
        for l in 1..=l_max_proc {
            for j in 0..self.widths[l] {
                let mut distinct_children = 0usize;
                let mut know = 0u64;
                for c in 0..self.fan {
                    let cc = self.fan * j + c;
                    if cc >= self.widths[l - 1] {
                        break;
                    }
                    let (lo, hi) = self.cover(l - 1, cc);
                    if qualifies(lo, hi) {
                        distinct_children += 1;
                        know += unset(lo, hi);
                    }
                }
                max_states_log2 = max_states_log2.max(distinct_children);
                max_know = max_know.max(know);
            }
        }
        for l in 1..=l_max_cell {
            for j in 0..self.widths[l] {
                let (lo, hi) = self.cover(l, j);
                if qualifies(lo, hi) {
                    max_states_log2 = max_states_log2.max(1);
                    max_know = max_know.max(unset(lo, hi));
                }
            }
        }
        // Full-cube quantities (TGoodness::check uses f-independent Aff
        // sets and class degrees; see its Fact 2.2(4) comment).
        let max_states_degree =
            kpow_u64(self.fan as u64, l_max_proc as u64).min(self.n as u64) as usize;
        let max_aff_proc = if any_unset { l_max_proc } else { 0 };
        let max_aff_cell = if any_unset { 1 + l_max_cell } else { 0 };
        MemoGoodness {
            inner: TGoodness {
                max_states_degree,
                max_states: 1usize
                    .checked_shl(max_states_log2 as u32)
                    .unwrap_or(usize::MAX),
                max_know: max_know as usize,
                max_aff_proc,
                max_aff_cell,
                fixed: self.n - unset_ps[self.n] as usize,
            },
            max_states_log2,
        }
    }
}

/// A memoized goodness vector: the exact [`TGoodness`] mirror plus the
/// log-domain state count (so `|States| ≤ k_t` never leaves the exponent).
#[derive(Debug, Clone)]
pub struct MemoGoodness {
    /// The six quantities, field-compatible with `TGoodness::check`.
    pub inner: TGoodness,
    /// `log2(max_v |States(v, t, f)|)` — exact, since tree state counts
    /// are powers of two.
    pub max_states_log2: usize,
}

/// The §5.2 growth sequences as symbolic terms: `d_t = ν(μ+1)^{2t}`,
/// `log2 k_t = ν(μ+1)^{4(t+1)}`, `r_t = t·n^{2/3}` (as `t·⌊(n²)^{1/3}⌋`,
/// flooring on the strict side).
#[derive(Debug, Clone, Copy)]
pub struct SymBudgets {
    /// `ν = γ·ρ` — inputs initially packed per cell.
    pub nu: u64,
    /// `μ = max{α, β}`.
    pub mu: u64,
}

impl SymBudgets {
    /// `d_t` as a (constant) symbolic term.
    pub fn d(&self, t: u64) -> SymExpr {
        build::mul(vec![
            build::c(self.nu),
            build::pow(build::c(self.mu + 1), build::c(2 * t)),
        ])
    }

    /// `log2(k_t)` as a (constant) symbolic term — the budget is only ever
    /// compared in the log domain.
    pub fn log2_k(&self, t: u64) -> SymExpr {
        build::mul(vec![
            build::c(self.nu),
            build::pow(build::c(self.mu + 1), build::c(4 * (t + 1))),
        ])
    }

    /// `r_t = t·⌊(n²)^{1/3}⌋`, with `n` free.
    pub fn r_budget(&self, t: u64) -> SymExpr {
        build::mul(vec![
            build::c(t),
            build::froot(build::pow(SymExpr::N, build::c(2)), build::c(3)),
        ])
    }

    /// The t-goodness predicate of `TGoodness::holds`, decided against the
    /// symbolic budgets evaluated at `pt` — all counted quantities are
    /// compared in the log domain, so `k_t` itself is never materialized.
    pub fn holds(&self, g: &MemoGoodness, t: u64, pt: GridPoint) -> Result<bool, SymError> {
        let d = self.d(t).eval(pt)?;
        let log2_k = self.log2_k(t).eval(pt)?;
        let r = self.r_budget(t).eval(pt)?;
        let log2 = |x: usize| ceil_log_u64(x.max(1) as u64, 2);
        Ok(g.inner.max_states_degree as u64 <= d
            && g.max_states_log2 as u64 <= log2_k
            && log2(g.inner.max_know) <= log2_k
            && log2(g.inner.max_aff_proc) <= log2_k
            && log2(g.inner.max_aff_cell) <= log2_k
            && g.inner.fixed as u64 <= r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random_adversary::f_star;
    use crate::traces::TraceEnsemble;
    use parbounds_models::GsmMachine;

    #[test]
    fn shape_matches_the_ceil_log_recurrence() {
        for n in 2..40 {
            for fan in 2..5 {
                let tree = FoldTree::new(n, fan, FoldOp::Xor);
                assert_eq!(
                    tree.levels() as u64,
                    ceil_log_u64(n as u64, fan as u64),
                    "n={n} fan={fan}"
                );
                assert_eq!(tree.num_phases(), 2 * tree.levels());
                assert_eq!(tree.t_know_complete(), 2 * tree.levels() - 1);
            }
        }
    }

    #[test]
    fn memo_matches_enumeration_on_the_anchor_machine() {
        // The r = 8 fan-2 anchors the goodness tests pin exactly.
        let r = 8;
        let tree = FoldTree::new(r, 2, FoldOp::Xor);
        let m = GsmMachine::new(1, 1, 1);
        let ens = TraceEnsemble::build(&m, || tree.program(), r).unwrap();
        assert_eq!(ens.num_phases(), tree.num_phases());
        for t in 1..=tree.num_phases() {
            let exact = TGoodness::check(&ens, &f_star(r), t);
            let memo = tree.memo_goodness(&f_star(r), t).inner;
            assert_eq!(memo.max_states_degree, exact.max_states_degree, "t={t}");
            assert_eq!(memo.max_states, exact.max_states, "t={t}");
            assert_eq!(memo.max_know, exact.max_know, "t={t}");
            assert_eq!(memo.max_aff_proc, exact.max_aff_proc, "t={t}");
            assert_eq!(memo.max_aff_cell, exact.max_aff_cell, "t={t}");
            assert_eq!(memo.fixed, exact.fixed, "t={t}");
        }
    }

    #[test]
    fn or_trees_lose_dependence_under_fixed_ones() {
        let n = 8;
        let tree = FoldTree::new(n, 2, FoldOp::Or);
        let t = tree.num_phases();
        let mut f = f_star(n);
        let free = tree.memo_goodness(&f, t).inner;
        assert_eq!(free.max_know, n); // the root knows everything
        f[0] = Some(true); // kills x1's visibility beyond the first pair
        let pinned = tree.memo_goodness(&f, t).inner;
        assert!(pinned.max_know < n - 1, "{pinned:?}");
    }

    #[test]
    fn budgets_evaluate_like_the_float_sequences() {
        let b = SymBudgets { nu: 1, mu: 1 };
        let pt = GridPoint::shared(4096, 1);
        assert_eq!(b.d(0).eval(pt).unwrap(), 1);
        assert_eq!(b.d(1).eval(pt).unwrap(), 4);
        assert_eq!(b.d(2).eval(pt).unwrap(), 16);
        assert_eq!(b.log2_k(0).eval(pt).unwrap(), 16);
        assert_eq!(b.log2_k(1).eval(pt).unwrap(), 256);
        // r_2 = 2·⌊(4096²)^{1/3}⌋ = 2·256.
        assert_eq!(b.r_budget(2).eval(pt).unwrap(), 512);
    }

    #[test]
    fn holds_accepts_the_free_tree_and_rejects_overfixing() {
        let n = 4096;
        let tree = FoldTree::new(n, 2, FoldOp::Xor);
        let b = SymBudgets { nu: 1, mu: 2 };
        let pt = GridPoint::shared(n as u64, 1);
        let g = tree.memo_goodness(&f_star(n), 3);
        assert!(b.holds(&g, 3, pt).unwrap());
        // 2000 fixed inputs blow r_1 = 256.
        let mut f = f_star(n);
        for v in f.iter_mut().take(2000) {
            *v = Some(false);
        }
        let g = tree.memo_goodness(&f, 1);
        assert!(!b.holds(&g, 1, pt).unwrap());
    }
}
