//! Seeded Monte-Carlo adversary mode.
//!
//! Where even the memoized analysis wants a *dynamic* witness — does the
//! real executable program's trace actually depend on a random leaf, at a
//! size where the `2^r` ensemble is unbuildable? — we sample: draw a
//! completion `x` of the partial map from a seeded ChaCha stream (held in
//! a wide [`BitMask`]), flip one random unset leaf, run the program twice,
//! and compare the target entity's trace keys. The fraction of flips that
//! change the trace estimates the trace's *sensitivity*; the 95% Wilson
//! interval around it is reported, and on enumerable machines the interval
//! is checked to cover the exactly-computed value.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use parbounds_models::{GsmMachine, ModelError, Word};

use crate::mask::BitMask;
use crate::random_adversary::{refinement_masks, PartialInput};
use crate::symbolic::sets::FoldTree;
use crate::traces::{Entity, TraceEnsemble};

/// A sampled sensitivity estimate with its 95% Wilson interval.
#[derive(Debug, Clone, Copy)]
pub struct McEstimate {
    /// Number of (completion, flip) samples drawn.
    pub samples: u64,
    /// Samples whose flip changed the target's trace key.
    pub successes: u64,
    /// Point estimate `successes / samples`.
    pub p_hat: f64,
    /// Lower end of the 95% Wilson score interval.
    pub lo: f64,
    /// Upper end of the 95% Wilson score interval.
    pub hi: f64,
}

/// The 95% Wilson score interval for `successes` out of `samples`.
pub fn wilson(successes: u64, samples: u64) -> (f64, f64) {
    if samples == 0 {
        return (0.0, 1.0);
    }
    let s = samples as f64;
    let p = successes as f64 / s;
    let z = 1.96f64;
    let z2 = z * z;
    let denom = 1.0 + z2 / s;
    let center = p + z2 / (2.0 * s);
    let margin = z * (p * (1.0 - p) / s + z2 / (4.0 * s * s)).sqrt();
    (
        ((center - margin) / denom).max(0.0),
        ((center + margin) / denom).min(1.0),
    )
}

/// Estimates the sensitivity of `tree`'s root-processor trace at time `t`
/// under partial map `f`: the probability, over a uniform completion of
/// `f` and a uniform unset leaf, that flipping the leaf changes the root's
/// `Trace(v, t, ·)` key. Two real GSM executions per sample; `samples`
/// controls the Wilson interval width.
pub fn mc_trace_sensitivity(
    tree: &FoldTree,
    f: &PartialInput,
    t: usize,
    seed: u64,
    samples: u64,
) -> Result<McEstimate, ModelError> {
    assert_eq!(f.len(), tree.n(), "partial map arity mismatch");
    let unset: Vec<usize> = (0..f.len()).filter(|&i| f[i].is_none()).collect();
    assert!(!unset.is_empty(), "MC sensitivity needs an unset leaf");
    let machine = GsmMachine::new(1, 1, 1);
    let prog = tree.program();
    let root = Entity::Proc(tree.root_proc());
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut successes = 0u64;
    for _ in 0..samples {
        // Sample a completion of f into a wide bitmask.
        let mut bits = BitMask::zeros(f.len());
        for (i, v) in f.iter().enumerate() {
            let b = v.unwrap_or_else(|| rng.gen_bool(0.5));
            if b {
                bits.set(i, true);
            }
        }
        let i = unset[rng.gen_range(0..unset.len())];
        let input: Vec<Word> = (0..f.len()).map(|j| Word::from(bits.get(j))).collect();
        let mut flipped = input.clone();
        flipped[i] ^= 1;
        let k1 = TraceEnsemble::single_run_keys(&machine, &prog, &input)?;
        let k2 = TraceEnsemble::single_run_keys(&machine, &prog, &flipped)?;
        let key_at = |m: &std::collections::HashMap<Entity, Vec<u64>>| {
            m.get(&root)
                .and_then(|ks| ks.get(t - 1).or(ks.last()))
                .copied()
        };
        if key_at(&k1) != key_at(&k2) {
            successes += 1;
        }
    }
    let (lo, hi) = wilson(successes, samples);
    Ok(McEstimate {
        samples,
        successes,
        p_hat: successes as f64 / samples.max(1) as f64,
        lo,
        hi,
    })
}

/// The exact quantity [`mc_trace_sensitivity`] estimates, computed from an
/// exhaustive ensemble (so only available at `r ≤ 12`): the average over
/// refinements of `f` and unset leaves of the flip-changes-trace
/// indicator. The coverage tests check the Wilson interval contains it.
pub fn exact_trace_sensitivity(ens: &TraceEnsemble, v: Entity, t: usize, f: &PartialInput) -> f64 {
    let unset: Vec<usize> = (0..f.len()).filter(|&i| f[i].is_none()).collect();
    assert!(!unset.is_empty());
    let masks = refinement_masks(f).expect("ensemble arity fits u32 masks");
    let total = masks.num_masks() * unset.len() as u64;
    let mut hits = 0u64;
    for m in refinement_masks(f).expect("ensemble arity fits u32 masks") {
        for &i in &unset {
            if ens.trace_key(v, t, m) != ens.trace_key(v, t, m ^ (1 << i)) {
                hits += 1;
            }
        }
    }
    hits as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random_adversary::f_star;
    use crate::symbolic::sets::FoldOp;

    #[test]
    fn wilson_brackets_the_point_estimate() {
        let (lo, hi) = wilson(30, 100);
        assert!(lo < 0.3 && 0.3 < hi);
        assert!(hi - lo < 0.2);
        // Degenerate endpoints stay inside [0, 1].
        let (lo, hi) = wilson(100, 100);
        assert!(lo > 0.9 && hi <= 1.0);
        let (lo, hi) = wilson(0, 100);
        assert!(lo >= 0.0 && hi < 0.1);
    }

    #[test]
    fn xor_root_sensitivity_is_one() {
        // Flipping any leaf always flips some child parity the root reads.
        let tree = FoldTree::new(64, 2, FoldOp::Xor);
        let t = tree.t_know_complete();
        let est = mc_trace_sensitivity(&tree, &f_star(64), t, 7, 24).unwrap();
        assert_eq!(est.successes, est.samples);
        assert!(est.hi >= 1.0 - 1e-12);
        assert!(est.lo > 0.8);
    }

    #[test]
    fn mc_interval_covers_the_exact_value_on_enumerable_machines() {
        let n = 6;
        let tree = FoldTree::new(n, 2, FoldOp::Or);
        let m = GsmMachine::new(1, 1, 1);
        let ens = TraceEnsemble::build(&m, || tree.program(), n).unwrap();
        let t = tree.t_know_complete();
        let exact = exact_trace_sensitivity(&ens, Entity::Proc(tree.root_proc()), t, &f_star(n));
        assert!(exact > 0.0 && exact < 1.0, "exact = {exact}");
        let mut covered = 0;
        for seed in 1..=5 {
            let est = mc_trace_sensitivity(&tree, &f_star(n), t, seed, 200).unwrap();
            if est.lo <= exact && exact <= est.hi {
                covered += 1;
            }
        }
        assert!(covered >= 4, "only {covered}/5 seeds covered exact {exact}");
    }

    #[test]
    fn mc_is_deterministic_per_seed() {
        let tree = FoldTree::new(32, 2, FoldOp::Or);
        let t = tree.t_know_complete();
        let a = mc_trace_sensitivity(&tree, &f_star(32), t, 42, 16).unwrap();
        let b = mc_trace_sensitivity(&tree, &f_star(32), t, 42, 16).unwrap();
        assert_eq!(a.successes, b.successes);
    }
}
