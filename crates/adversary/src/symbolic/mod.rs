//! Symbolic adversary sets: the static lower-bound analysis layer.
//!
//! The exhaustive machinery in [`crate::traces`] and [`crate::goodness`]
//! checks the Section 5 proof obligations by enumerating all `2^r` inputs
//! — exact, and dead beyond `r ≈ 12`. This module replaces the enumeration
//! for the §8 tree families with memoized, shared set representations:
//!
//! * [`sets`] — interval/prefix-sum-backed `Know`/`AffProc`/`AffCell` and
//!   `States` bookkeeping ([`FoldTree::memo_goodness`]), incremental along
//!   the REFINE/GENERATE trajectory instead of re-derived from a
//!   `TraceEnsemble`, with the §5.2 budgets `d_t`/`k_t`/`r_t` carried as
//!   [`SymExpr`] terms ([`SymBudgets`]) and t-goodness decided in the log
//!   domain;
//! * [`mc`] — the seeded Monte-Carlo adversary mode: sampled refinements
//!   driven through the *real* GSM program with Wilson-interval
//!   confidence reporting;
//! * this file — the large-`n` audit driver: [`audit_family`] walks a
//!   budget-respecting refinement trajectory at `n ≥ 4096`, checks every
//!   step t-good, derives the Know-completion lower bound as a Θ-normal
//!   form, and pairs it with the family's Table 1 upper-bound fixture;
//!   [`audit_differential`] gates the memoized path against the
//!   enumerative one wherever enumeration is feasible, and
//!   [`lint_audit_gap`] flags swept families whose audit is missing or
//!   lags, through the shared `analyze` rule table.

pub mod mc;
pub mod sets;

pub use mc::{exact_trace_sensitivity, mc_trace_sensitivity, wilson, McEstimate};
pub use sets::{FoldOp, FoldTree, MemoGoodness, SymBudgets};

use parbounds_analyze::diagnostics::{Diagnostic, Location, Rule};
use parbounds_analyze::rules;
use parbounds_analyze::symbolic::expr::{build, ceil_log_u64, floor_root_u64, kpow_u64};
use parbounds_analyze::symbolic::{
    suite_point, table1_fixture, theta, GridPoint, SymExpr, Theta, SYMBOLIC_FAMILIES,
};
use parbounds_models::ModelError;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::goodness::TGoodness;
use crate::random_adversary::f_star;
use crate::traces::TraceEnsemble;

/// How a family's lower-bound audit is carried out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditStyle {
    /// Fold-tree families: walk the refinement trajectory with memoized
    /// t-goodness, lower-bound from Know completion at the root.
    Fold(FoldOp),
    /// Broadcast-shaped families: audit the Lemma 5.1-style `AffCell`
    /// growth and lower-bound from coverage completion.
    Spread,
    /// Constant-round families: one permutation round trip.
    Single,
}

/// Which model scope sets the audited size and per-round cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditScope {
    /// Shared-memory (QSM/s-QSM/GSM): size `n`, rounds cost `g`.
    Shared,
    /// BSP: size `p`, supersteps cost `L`.
    Bsp,
}

/// How the audited tree's fan-in derives from the parameter point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FanRule {
    /// Fixed binary fan (the s-QSM parity tree).
    Two,
    /// `max(2, g)` (the QSM tree recipe).
    MaxG,
    /// `max(2, ⌈L/g⌉)` (the BSP tree recipe).
    CdivLG,
}

/// One registered family audit.
#[derive(Debug, Clone, Copy)]
pub struct AuditFamily {
    /// Family name, matching the `analyze` sweep registry.
    pub name: &'static str,
    /// Audit mechanism.
    pub style: AuditStyle,
    /// Size/cost scope.
    pub scope: AuditScope,
    /// Fan derivation.
    pub fan_rule: FanRule,
}

/// The audit registry, in [`SYMBOLIC_FAMILIES`] order. The padded fixture
/// is deliberately absent: it is swept on the upper-bound side but has no
/// lower-bound audit, which is exactly what [`lint_audit_gap`] flags.
pub const AUDIT_FAMILIES: &[AuditFamily] = &[
    AuditFamily {
        name: "or-write-tree",
        style: AuditStyle::Fold(FoldOp::Or),
        scope: AuditScope::Shared,
        fan_rule: FanRule::MaxG,
    },
    AuditFamily {
        name: "parity-read-tree",
        style: AuditStyle::Fold(FoldOp::Xor),
        scope: AuditScope::Shared,
        fan_rule: FanRule::Two,
    },
    AuditFamily {
        name: "broadcast",
        style: AuditStyle::Spread,
        scope: AuditScope::Shared,
        fan_rule: FanRule::MaxG,
    },
    AuditFamily {
        name: "prefix-sweep",
        style: AuditStyle::Fold(FoldOp::Xor),
        scope: AuditScope::Shared,
        fan_rule: FanRule::MaxG,
    },
    AuditFamily {
        name: "scatter-gather",
        style: AuditStyle::Single,
        scope: AuditScope::Shared,
        fan_rule: FanRule::MaxG,
    },
    AuditFamily {
        name: "bsp-reduce",
        style: AuditStyle::Fold(FoldOp::Xor),
        scope: AuditScope::Bsp,
        fan_rule: FanRule::CdivLG,
    },
    AuditFamily {
        name: "bsp-prefix-scan",
        style: AuditStyle::Fold(FoldOp::Xor),
        scope: AuditScope::Bsp,
        fan_rule: FanRule::CdivLG,
    },
];

/// Looks up a family's audit registration.
pub fn audit_registration(family: &str) -> Option<&'static AuditFamily> {
    AUDIT_FAMILIES.iter().find(|f| f.name == family)
}

impl AuditFamily {
    /// The audited problem size at `pt`.
    pub fn size(&self, pt: GridPoint) -> u64 {
        match self.scope {
            AuditScope::Shared => pt.n,
            AuditScope::Bsp => pt.p,
        }
    }

    /// Numeric fan-in at `pt` (clamped to ≥ 2, mirroring `ceil_log`'s
    /// base clamp).
    pub fn fan(&self, pt: GridPoint) -> u64 {
        match self.fan_rule {
            FanRule::Two => 2,
            FanRule::MaxG => pt.g.max(2),
            FanRule::CdivLG => pt.l.div_ceil(pt.g.max(1)).max(2),
        }
    }

    /// The audited lower bound with parameters left free: per-round cost
    /// times the Know-completion round count.
    pub fn lower_expr(&self) -> SymExpr {
        let fan_sym = match self.fan_rule {
            FanRule::Two => build::c(2),
            FanRule::MaxG => SymExpr::G,
            FanRule::CdivLG => build::cdiv(SymExpr::L, SymExpr::G),
        };
        match (self.style, self.scope) {
            (AuditStyle::Single, _) => SymExpr::G,
            (_, AuditScope::Shared) => {
                build::mul(vec![SymExpr::G, build::clog(SymExpr::N, fan_sym)])
            }
            (_, AuditScope::Bsp) => build::mul(vec![SymExpr::L, build::clog(SymExpr::P, fan_sym)]),
        }
    }
}

/// Lower-vs-upper pairing outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditVerdict {
    /// The audited lower bound is Θ-equivalent to the Table 1 upper.
    Tight,
    /// Lower below upper: the pairing leaves an asymptotic gap (expected
    /// for families audited against a coarser adversary).
    Consistent,
    /// The audited lower bound exceeds the claimed upper — one of the two
    /// derivations is wrong.
    Violation,
}

impl AuditVerdict {
    /// Stable lowercase name for renderers.
    pub fn name(self) -> &'static str {
        match self {
            AuditVerdict::Tight => "tight",
            AuditVerdict::Consistent => "consistent",
            AuditVerdict::Violation => "violation",
        }
    }
}

/// The result of one family's large-`n` lower-bound audit.
#[derive(Debug, Clone)]
pub struct AuditOutcome {
    /// Audited family.
    pub family: &'static str,
    /// Parameter point the audit ran at.
    pub point: GridPoint,
    /// Audited size (`n` on shared models, `p` on the BSP).
    pub size: u64,
    /// Tree fan-in used.
    pub fan: u64,
    /// Tree depth `L`.
    pub levels: u64,
    /// Trajectory steps whose t-goodness was checked.
    pub steps_checked: usize,
    /// Steps at which the interval the adversary wanted to pin was
    /// clamped to the remaining `r_t` budget.
    pub budget_clamped: usize,
    /// Every checked step satisfied the §5.2 conditions.
    pub all_good: bool,
    /// First `t` at which some entity's `Know` covers the whole input.
    pub t_know: u64,
    /// The audited lower bound (parameters free).
    pub lower: SymExpr,
    /// Θ-normal form of the lower bound.
    pub lower_theta: Theta,
    /// The family's Table 1 upper-bound fixture.
    pub upper: SymExpr,
    /// Θ-normal form of the upper bound.
    pub upper_theta: Theta,
    /// Pairing verdict.
    pub verdict: AuditVerdict,
    /// Live working-set entries of the memoized analysis (for the bench
    /// comparison against the `2^r`-keyed enumerative path).
    pub peak_set_entries: u64,
}

impl AuditOutcome {
    /// The audit passed: trajectory good and no bound violation.
    pub fn passed(&self) -> bool {
        self.all_good && self.verdict != AuditVerdict::Violation
    }
}

fn verdict_of(lower: &Theta, upper: &Theta) -> AuditVerdict {
    if lower.equivalent(upper) {
        AuditVerdict::Tight
    } else if lower.strictly_dominates(upper) {
        AuditVerdict::Violation
    } else {
        AuditVerdict::Consistent
    }
}

/// Runs the registered audit for `family` at suite size `n`.
///
/// Fold families walk a deterministic interval-pinning refinement
/// trajectory: at step `t` the adversary pins the leftmost unset run of
/// `fan^{⌊(t−1)/2⌋}` leaves to 0 — the certificate of the deepest active
/// level — clamped so the cumulative fixed count respects the paper's
/// `r_t = t·n^{2/3}` budget (late steps *would* overshoot it, which is
/// why the paper only drives the adversary for `O(n^{1/3})` steps; the
/// clamp records where that kicks in). Every step is checked t-good
/// against the [`SymBudgets`] with `ν = 1`, `μ = fan`. The reported lower
/// bound is Know-completion: no entity's trace can determine the answer
/// before `t = 2L − 1`, so the schedule pays at least `cost·⌈log_fan
/// size⌉`.
pub fn audit_family(family: &str, n: usize) -> Result<AuditOutcome, ModelError> {
    let Some(reg) = audit_registration(family) else {
        return Err(ModelError::BadConfig(format!(
            "family '{family}' has no lower-bound audit registered (known: {})",
            AUDIT_FAMILIES
                .iter()
                .map(|f| f.name)
                .collect::<Vec<_>>()
                .join(", ")
        )));
    };
    let pt = suite_point(family, n);
    let size = reg.size(pt);
    let fan = reg.fan(pt);
    let lower = reg.lower_expr();
    let lower_theta = theta(&lower).map_err(|e| {
        ModelError::BadConfig(format!(
            "audit lower bound of {family} not normalizable: {e}"
        ))
    })?;
    let upper = table1_fixture(family)?;
    let upper_theta = theta(&upper).map_err(|e| {
        ModelError::BadConfig(format!("Table 1 fixture of {family} not normalizable: {e}"))
    })?;
    let verdict = verdict_of(&lower_theta, &upper_theta);
    let sym_err = |e| ModelError::BadConfig(format!("budget eval for {family}: {e}"));
    match reg.style {
        AuditStyle::Fold(op) => {
            let tree = FoldTree::new(size as usize, fan as usize, op);
            let budgets = SymBudgets { nu: 1, mu: fan };
            let mut f = f_star(size as usize);
            let mut fixed = 0u64;
            let mut next_unset = 0usize;
            let mut budget_clamped = 0;
            let mut all_good = true;
            let steps = tree.num_phases();
            for t in 1..=steps {
                // Pin the deepest active level's certificate interval,
                // within the remaining r_t budget.
                let intended = kpow_u64(fan, (t as u64 - 1) / 2).min(size);
                let budget = budgets
                    .r_budget(t as u64)
                    .eval(pt)
                    .map_err(sym_err)?
                    .saturating_sub(fixed);
                if intended > budget {
                    budget_clamped += 1;
                }
                let mut to_fix = intended.min(budget);
                while to_fix > 0 && next_unset < f.len() {
                    if f[next_unset].is_none() {
                        f[next_unset] = Some(false);
                        fixed += 1;
                        to_fix -= 1;
                    }
                    next_unset += 1;
                }
                let good = tree.memo_goodness(&f, t);
                if !budgets.holds(&good, t as u64, pt).map_err(sym_err)? {
                    all_good = false;
                }
            }
            Ok(AuditOutcome {
                family: reg.name,
                point: pt,
                size,
                fan,
                levels: tree.levels() as u64,
                steps_checked: steps,
                budget_clamped,
                all_good,
                t_know: tree.t_know_complete() as u64,
                lower,
                lower_theta,
                upper,
                upper_theta,
                verdict,
                peak_set_entries: tree.peak_set_entries(),
            })
        }
        AuditStyle::Spread => {
            // Coverage audit: |AffCell(source, t)| grows at most
            // geometrically (Lemma 5.1 flavour) and needs L doublings to
            // reach all `size` cells.
            let levels = ceil_log_u64(size, fan);
            let budgets = SymBudgets { nu: 1, mu: fan };
            let mut all_good = true;
            let steps = (2 * levels) as usize;
            for t in 1..=steps {
                let reach: u64 = (0..=(t as u64 / 2))
                    .map(|j| kpow_u64(fan, j))
                    .fold(0u64, u64::saturating_add)
                    .min(2 * size);
                let log2_k = budgets.log2_k(t as u64).eval(pt).map_err(sym_err)?;
                if ceil_log_u64(reach.max(1), 2) > log2_k {
                    all_good = false;
                }
            }
            Ok(AuditOutcome {
                family: reg.name,
                point: pt,
                size,
                fan,
                levels,
                steps_checked: steps,
                budget_clamped: 0,
                all_good,
                t_know: 2 * levels,
                lower,
                lower_theta,
                upper,
                upper_theta,
                verdict,
                peak_set_entries: 2 * (size + 1),
            })
        }
        AuditStyle::Single => Ok(AuditOutcome {
            family: reg.name,
            point: pt,
            size,
            fan,
            levels: 1,
            steps_checked: 1,
            budget_clamped: 0,
            all_good: true,
            t_know: 1,
            lower,
            lower_theta,
            upper,
            upper_theta,
            verdict,
            peak_set_entries: 2 * (size + 1),
        }),
    }
}

/// Audits every registered family at suite size `n`, in registry order.
pub fn audit_all(n: usize) -> Result<Vec<AuditOutcome>, ModelError> {
    AUDIT_FAMILIES
        .iter()
        .map(|f| audit_family(f.name, n))
        .collect()
}

/// One exact-vs-memoized comparison cell of the audit differential.
#[derive(Debug, Clone)]
pub struct AuditMismatch {
    /// Leaves, fan, op of the offending tree.
    pub shape: (usize, usize, FoldOp),
    /// Time step.
    pub t: usize,
    /// The partial map on which the paths disagreed.
    pub f: Vec<Option<bool>>,
    /// Enumerative goodness vector.
    pub exact: TGoodness,
    /// Memoized goodness vector.
    pub memo: TGoodness,
}

/// Exact differential: for every enumerable tree (`n ≤ max_r`, fans 2–3,
/// both ops), compare [`FoldTree::memo_goodness`] against
/// [`TGoodness::check`] field for field — on `f*`, on every single-fixed
/// map, and on seeded random maps. Returns `(comparisons, mismatches)`;
/// the CI gate requires the mismatch list empty.
pub fn audit_differential(max_r: usize) -> Result<(u64, Vec<AuditMismatch>), ModelError> {
    let max_r = max_r.min(10);
    let machine = parbounds_models::GsmMachine::new(1, 1, 1);
    let mut comparisons = 0u64;
    let mut mismatches = Vec::new();
    let mut rng = ChaCha8Rng::seed_from_u64(0x5eed);
    for n in 2..=max_r {
        for fan in [2usize, 3] {
            for op in [FoldOp::Xor, FoldOp::Or] {
                let tree = FoldTree::new(n, fan, op);
                let ens = TraceEnsemble::build(&machine, || tree.program(), n)?;
                let mut maps: Vec<Vec<Option<bool>>> = vec![f_star(n)];
                for i in 0..n {
                    for b in [false, true] {
                        let mut f = f_star(n);
                        f[i] = Some(b);
                        maps.push(f);
                    }
                }
                for _ in 0..8 {
                    let f: Vec<Option<bool>> = (0..n)
                        .map(|_| match rng.gen_range(0..3) {
                            0 => None,
                            1 => Some(false),
                            _ => Some(true),
                        })
                        .collect();
                    maps.push(f);
                }
                for f in &maps {
                    for t in 1..=tree.num_phases() {
                        let exact = TGoodness::check(&ens, f, t);
                        let memo = tree.memo_goodness(f, t).inner;
                        comparisons += 1;
                        let eq = memo.max_states_degree == exact.max_states_degree
                            && memo.max_states == exact.max_states
                            && memo.max_know == exact.max_know
                            && memo.max_aff_proc == exact.max_aff_proc
                            && memo.max_aff_cell == exact.max_aff_cell
                            && memo.fixed == exact.fixed;
                        if !eq {
                            mismatches.push(AuditMismatch {
                                shape: (n, fan, op),
                                t,
                                f: f.clone(),
                                exact,
                                memo,
                            });
                        }
                    }
                }
            }
        }
    }
    Ok((comparisons, mismatches))
}

/// The Monte-Carlo audit of one Fold family: drive the real program at
/// size `n` on sampled refinements and report the root-trace sensitivity
/// with its Wilson interval. (A sensitivity interval excluding 0 is the
/// dynamic witness that the root still depends on unset leaves at
/// `t = 2L − 1` — the Know-completion time the static audit derives.)
#[derive(Debug, Clone)]
pub struct McAuditOutcome {
    /// Audited family.
    pub family: &'static str,
    /// Leaves of the sampled tree.
    pub size: u64,
    /// Fan-in.
    pub fan: u64,
    /// Time the sensitivity was sampled at (`2L − 1`).
    pub t: usize,
    /// Seed the ChaCha stream started from.
    pub seed: u64,
    /// The estimate.
    pub estimate: McEstimate,
}

/// Runs the Monte-Carlo audit for a Fold-style family.
pub fn mc_audit(
    family: &str,
    n: usize,
    seed: u64,
    samples: u64,
) -> Result<McAuditOutcome, ModelError> {
    let Some(reg) = audit_registration(family) else {
        return Err(ModelError::BadConfig(format!(
            "family '{family}' has no lower-bound audit registered"
        )));
    };
    let AuditStyle::Fold(op) = reg.style else {
        return Err(ModelError::BadConfig(format!(
            "family '{family}' is not a fold family; the MC mode samples fold trees"
        )));
    };
    let pt = suite_point(family, n);
    let size = reg.size(pt);
    let fan = reg.fan(pt);
    let tree = FoldTree::new(size as usize, fan as usize, op);
    let t = tree.t_know_complete();
    let estimate = mc_trace_sensitivity(&tree, &f_star(size as usize), t, seed, samples)?;
    Ok(McAuditOutcome {
        family: reg.name,
        size,
        fan,
        t,
        seed,
        estimate,
    })
}

/// The audit-gap lint: for every family the symbolic upper-bound sweep
/// covers (the [`SYMBOLIC_FAMILIES`] registry plus the padded fixture it
/// deliberately sweeps alongside), emit an error-severity
/// [`Rule::AuditGap`] diagnostic when the family has no entry in
/// [`AUDIT_FAMILIES`], or when the largest `n` its audit covered
/// (`audited_n`) is below the sweep's largest `n` (`swept_n`).
pub fn lint_audit_gap(audited_n: u64, swept_n: u64) -> Vec<Diagnostic> {
    let swept = SYMBOLIC_FAMILIES
        .iter()
        .copied()
        .chain(std::iter::once("or-write-tree-padded"));
    let mut diags = Vec::new();
    for family in swept {
        let gap = match audit_registration(family) {
            None => Some(None),
            Some(_) if audited_n < swept_n => Some(Some(audited_n)),
            Some(_) => None,
        };
        if let Some(audited) = gap {
            diags.push(Diagnostic::new(
                Rule::AuditGap,
                Location {
                    model: "GSM",
                    phase: 0,
                    pid: None,
                    addr: None,
                },
                rules::audit_gap(family, audited, swept_n),
            ));
        }
    }
    diags
}

/// `⌊n^{1/3}⌋` — the horizon the paper drives the adversary for, exposed
/// for reporting next to `steps_checked`.
pub fn paper_horizon(n: u64) -> u64 {
    floor_root_u64(n, 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_all_swept_families_except_padded() {
        for family in SYMBOLIC_FAMILIES {
            assert!(
                audit_registration(family).is_some(),
                "{family} missing from AUDIT_FAMILIES"
            );
        }
        assert!(audit_registration("or-write-tree-padded").is_none());
        assert_eq!(AUDIT_FAMILIES.len(), SYMBOLIC_FAMILIES.len());
    }

    #[test]
    fn audits_pass_at_large_n_with_expected_verdicts() {
        let outcomes = audit_all(4096).unwrap();
        assert_eq!(outcomes.len(), AUDIT_FAMILIES.len());
        for o in &outcomes {
            assert!(o.all_good, "{}: trajectory not t-good", o.family);
            assert!(o.passed(), "{}: {:?}", o.family, o.verdict);
            let expected = match o.family {
                "prefix-sweep" => AuditVerdict::Consistent,
                _ => AuditVerdict::Tight,
            };
            assert_eq!(o.verdict, expected, "{}", o.family);
        }
        let parity = outcomes
            .iter()
            .find(|o| o.family == "parity-read-tree")
            .unwrap();
        assert_eq!(parity.size, 4096);
        assert_eq!(parity.fan, 2);
        assert_eq!(parity.levels, 12);
        assert_eq!(parity.t_know, 23);
        // Late steps want to pin whole subtrees past r_t.
        assert!(parity.budget_clamped > 0);
    }

    #[test]
    fn differential_is_exact_on_small_machines() {
        let (comparisons, mismatches) = audit_differential(6).unwrap();
        assert!(comparisons > 500, "only {comparisons} comparisons");
        assert!(
            mismatches.is_empty(),
            "first mismatch: {:?}",
            mismatches.first()
        );
    }

    #[test]
    fn audit_gap_lint_trips_exactly_on_the_padded_fixture() {
        let diags = lint_audit_gap(4096, 4096);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, Rule::AuditGap);
        assert!(diags[0].message.contains("or-write-tree-padded"));
        // A lagging audit flags every family.
        let diags = lint_audit_gap(256, 4096);
        assert_eq!(diags.len(), SYMBOLIC_FAMILIES.len() + 1);
    }

    #[test]
    fn mc_audit_reports_full_sensitivity_for_parity() {
        let out = mc_audit("parity-read-tree", 256, 11, 12).unwrap();
        assert_eq!(out.estimate.successes, out.estimate.samples);
        assert_eq!(out.t, 2 * 8 - 1);
    }

    #[test]
    fn unregistered_families_error_cleanly() {
        assert!(audit_family("or-write-tree-padded", 64).is_err());
        assert!(mc_audit("broadcast", 64, 1, 4).is_err());
    }

    #[test]
    fn paper_horizon_is_the_cube_root() {
        assert_eq!(paper_horizon(4096), 16);
        assert_eq!(paper_horizon(65536), 40);
    }
}
