//! The modified Random Adversary for OR (Section 7): the mixture input
//! distribution `D` and an empirical harness that pits OR algorithms
//! against it.
//!
//! `D` draws the all-zeros input with probability 1/2; otherwise it picks
//! one of the geometrically sparsifying distributions `H_0 … H_k` (each
//! `H_i` sets every γ-group of inputs to 1 with probability `1/d_i`, where
//! the `d_i` tower-grow). The point of the construction: an algorithm that
//! stops after few steps has seen only a bounded set of inputs affecting
//! its output cell, and under the yet-sparser `H_i`'s those are almost
//! surely all zero — so it cannot distinguish "all zeros" (answer 0) from
//! "a few ones elsewhere" (answer 1) and succeeds with probability barely
//! above 1/2. The harness measures exactly this for concrete algorithms:
//! honest ones score ~1.0, truncated ones collapse toward 1/2 — the
//! executable content of Theorem 7.1's `Ω(μ(log*(n/γ) − log* μ))` bound.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use parbounds_models::Word;

use crate::random_adversary::{InputDistribution, PartialInput};

/// The Section 7 OR input distribution.
#[derive(Debug, Clone)]
pub struct OrDistribution {
    /// Number of inputs.
    pub n: usize,
    /// γ: inputs per initially-shared cell (groups flip together).
    pub gamma: usize,
    /// The `1/d_i` densities of the `H_i` components.
    pub densities: Vec<f64>,
}

impl OrDistribution {
    /// Builds the distribution for `n` inputs on a machine with big-step
    /// duration `μ` and input packing `γ`. The `d_i` sequence starts at
    /// `d_0 = log_{μ+1} n`-flavoured and tower-grows `d_{i+1} = (μ+1)^{d_i}`
    /// (one exponentiation per level is already enough for the densities to
    /// collapse at simulation scales; the paper's double exponential only
    /// sharpens constants).
    pub fn new(n: usize, mu: u64, gamma: usize) -> Self {
        assert!(n >= 2);
        let base = (mu + 1).max(2) as f64;
        let mut d = (n as f64).log2().max(2.0) / base.log2().max(1.0);
        let mut densities = Vec::new();
        // Stop once groups are almost surely all-zero at this n.
        while 1.0 / d > 1e-12 && densities.len() < 24 {
            densities.push((1.0 / d).min(0.5));
            d = base.powf(d.min(40.0));
        }
        if densities.is_empty() {
            densities.push(0.25);
        }
        OrDistribution {
            n,
            gamma: gamma.max(1),
            densities,
        }
    }

    /// Number of mixture components (the `H_i`).
    pub fn num_components(&self) -> usize {
        self.densities.len()
    }

    /// Samples an input: all-zeros w.p. 1/2, else a uniformly chosen `H_i`.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> Vec<Word> {
        if rng.gen_bool(0.5) {
            return vec![0; self.n];
        }
        let i = rng.gen_range(0..self.densities.len());
        self.sample_h(i, rng)
    }

    /// Samples from component `H_i`.
    pub fn sample_h<R: Rng>(&self, i: usize, rng: &mut R) -> Vec<Word> {
        let p = self.densities[i];
        let mut v = vec![0 as Word; self.n];
        let mut g = 0;
        while g < self.n {
            if rng.gen_bool(p) {
                for x in v.iter_mut().skip(g).take(self.gamma) {
                    *x = 1;
                }
            }
            g += self.gamma;
        }
        v
    }
}

impl InputDistribution for OrDistribution {
    fn num_inputs(&self) -> usize {
        self.n
    }

    /// Marginal `P(x_i = 1 | fixed)`: computed by averaging the mixture
    /// conditioned on the fixed assignments of the same γ-group (groups
    /// flip together, so a fixed group-mate determines the bit; otherwise
    /// we mix the component densities re-weighted by the evidence that all
    /// currently-fixed groups match).
    #[allow(clippy::needless_range_loop)] // j ranges over the γ-group's ids
    fn conditional_p_one(&self, i: usize, f: &PartialInput) -> f64 {
        let group = i / self.gamma;
        // A group-mate already fixed pins the whole group.
        for j in group * self.gamma..((group + 1) * self.gamma).min(self.n) {
            if let Some(b) = f[j] {
                return f64::from(b);
            }
        }
        // Posterior over {zeros} ∪ {H_i} given the fixed groups.
        let mut group_state: Vec<Option<bool>> = Vec::new();
        for g in 0..self.n.div_ceil(self.gamma) {
            let mut s = None;
            for j in g * self.gamma..((g + 1) * self.gamma).min(self.n) {
                if let Some(b) = f[j] {
                    s = Some(b);
                    break;
                }
            }
            group_state.push(s);
        }
        let any_one = group_state.contains(&Some(true));
        let zero_groups = group_state.iter().filter(|s| **s == Some(false)).count();
        let mut weights = Vec::with_capacity(1 + self.densities.len());
        let mut probs = Vec::with_capacity(1 + self.densities.len());
        if !any_one {
            weights.push(0.5); // the all-zeros atom (consistent: no ones seen)
            probs.push(0.0);
        }
        let w_each = 0.5 / self.densities.len() as f64;
        for &p in &self.densities {
            let ones = group_state.iter().filter(|s| **s == Some(true)).count();
            let lik = p.powi(ones as i32) * (1.0 - p).powi(zero_groups as i32);
            weights.push(w_each * lik);
            probs.push(p);
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return 0.0;
        }
        weights
            .iter()
            .zip(probs.iter())
            .map(|(w, p)| w * p)
            .sum::<f64>()
            / total
    }
}

/// Success rate of `algorithm` (given the raw input, returns its OR answer)
/// over `trials` draws from `dist`.
pub fn or_success_rate<F>(algorithm: F, dist: &OrDistribution, trials: usize, seed: u64) -> f64
where
    F: Fn(&[Word]) -> Word,
{
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut ok = 0usize;
    for _ in 0..trials {
        let input = dist.sample(&mut rng);
        let truth = Word::from(input.iter().any(|&b| b != 0));
        if algorithm(&input) == truth {
            ok += 1;
        }
    }
    ok as f64 / trials as f64
}

/// A "cheating" OR algorithm that inspects only the first `k` inputs — the
/// kind of bounded-information algorithm Theorem 7.1 dooms.
pub fn probe_k_or(k: usize) -> impl Fn(&[Word]) -> Word {
    move |input: &[Word]| Word::from(input.iter().take(k).any(|&b| b != 0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribution_shape() {
        let d = OrDistribution::new(1 << 16, 2, 1);
        assert!(d.num_components() >= 2);
        // Densities strictly decrease (tower growth of d_i).
        for w in d.densities.windows(2) {
            assert!(w[1] < w[0]);
        }
    }

    #[test]
    fn sample_respects_gamma_grouping() {
        let d = OrDistribution::new(32, 1, 4);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..200 {
            let v = d.sample_h(0, &mut rng);
            for g in v.chunks(4) {
                assert!(g.iter().all(|&b| b == 1) || g.iter().all(|&b| b == 0));
            }
        }
    }

    #[test]
    fn half_the_mass_is_all_zeros() {
        let d = OrDistribution::new(64, 2, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let zeros = (0..4000)
            .filter(|_| d.sample(&mut rng).iter().all(|&b| b == 0))
            .count();
        // 1/2 plus the H_i's own all-zero mass.
        assert!(zeros >= 1800, "zeros = {zeros}");
    }

    #[test]
    fn honest_or_succeeds_always() {
        let d = OrDistribution::new(256, 2, 1);
        let honest = |input: &[Word]| Word::from(input.iter().any(|&b| b != 0));
        assert_eq!(or_success_rate(honest, &d, 2000, 3), 1.0);
    }

    #[test]
    fn truncated_or_collapses_toward_half() {
        // Probing k = 4 of 4096 inputs: under the sparse H_i, the witnesses
        // are almost never among the probed positions.
        let d = OrDistribution::new(4096, 2, 1);
        let rate = or_success_rate(probe_k_or(4), &d, 4000, 4);
        assert!(rate < 0.80, "rate = {rate}");
        // The constant-0 algorithm scores the all-zeros mass plus H_i
        // all-zero draws.
        let rate0 = or_success_rate(|_| 0, &d, 4000, 5);
        assert!((0.45..0.80).contains(&rate0), "rate0 = {rate0}");
        // More probes help, monotonically in expectation.
        let rate_wide = or_success_rate(probe_k_or(4096), &d, 4000, 6);
        assert_eq!(rate_wide, 1.0);
    }

    #[test]
    fn conditional_probability_pins_group_mates() {
        let d = OrDistribution::new(8, 1, 2);
        let mut f: PartialInput = vec![None; 8];
        f[0] = Some(true);
        assert_eq!(d.conditional_p_one(1, &f), 1.0);
        f[2] = Some(false);
        assert_eq!(d.conditional_p_one(3, &f), 0.0);
    }

    #[test]
    fn conditional_probability_shrinks_with_zero_evidence() {
        // Observing many zero groups shifts the posterior toward the
        // all-zeros atom and sparser components.
        let d = OrDistribution::new(64, 2, 1);
        let fresh = d.conditional_p_one(0, &vec![None; 64]);
        let mut f: PartialInput = vec![None; 64];
        for slot in f.iter_mut().take(40).skip(1) {
            *slot = Some(false);
        }
        let informed = d.conditional_p_one(0, &f);
        assert!(informed < fresh, "{informed} !< {fresh}");
    }
}
