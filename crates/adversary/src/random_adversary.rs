//! The Random Adversary technique (Sections 4 and 5), executable.
//!
//! The framework pieces map one-to-one onto the paper:
//!
//! * [`PartialInput`] — partial input maps `f : I → {*, 0, 1}` with the
//!   refinement order;
//! * [`random_set`] — the RANDOMSET procedure: fixes the requested unset
//!   inputs one at a time according to the conditional distribution
//!   (Fact 4.1: any interleaving of RANDOMSET calls generates exactly the
//!   target distribution — tested statistically below);
//! * [`Refine`] + [`generate`] — the REFINE/GENERATE driver of Section 4.3;
//! * [`GsmRefine`] — the Section 5 REFINE instantiated against a *real*
//!   small GSM program: it finds the processor (then cell) with the maximum
//!   possible next-phase traffic over all refinements, pins the certificate
//!   of that behaviour with RANDOMSET, and returns the resulting big-step
//!   lower bound for the phase. All "maximum possible over refinements"
//!   quantities are computed exactly by exhaustive enumeration.

use rand::Rng;

use parbounds_models::{GsmMachine, GsmProgram, Result, Word};

use crate::mask::{RefinementMasks, TooManyInputs};
use crate::traces::{Entity, TraceEnsemble};

/// A partial input map over `r` boolean inputs. `None` is the paper's `*`.
pub type PartialInput = Vec<Option<bool>>;

/// The all-unset map `f_*`.
pub fn f_star(r: usize) -> PartialInput {
    vec![None; r]
}

/// Does `fine` refine `coarse` (`fine ≤ coarse`)?
pub fn refines(fine: &PartialInput, coarse: &PartialInput) -> bool {
    coarse
        .iter()
        .zip(fine.iter())
        .all(|(c, f)| c.is_none() || c == f)
}

/// Does complete input `mask` refine `f`? Typed [`TooManyInputs`] error
/// beyond 32 inputs instead of shifting out of range; the wide-input
/// counterpart is [`crate::mask::BitMask::refines`].
pub fn mask_refines(mask: u32, f: &PartialInput) -> std::result::Result<bool, TooManyInputs> {
    if f.len() > 32 {
        return Err(TooManyInputs {
            len: f.len(),
            limit: 32,
        });
    }
    Ok(f.iter()
        .enumerate()
        .all(|(i, v)| v.is_none_or(|b| (mask >> i & 1 == 1) == b)))
}

/// Lazy iterator over all complete inputs refining `f` — exactly the
/// `2^unset` subcube members, produced without materializing or
/// filtering the full `2^r` cube.
pub fn refinement_masks(f: &PartialInput) -> std::result::Result<RefinementMasks, TooManyInputs> {
    RefinementMasks::over(f)
}

/// An input distribution over `{0,1}^r`, queried through the conditionals
/// RANDOMSET needs.
pub trait InputDistribution {
    /// Number of inputs `r`.
    fn num_inputs(&self) -> usize;
    /// `P(x_i = 1 | the assignments already fixed in f)`.
    fn conditional_p_one(&self, i: usize, f: &PartialInput) -> f64;
}

/// Independent fair bits — the Parity/LAC adversary distribution.
#[derive(Debug, Clone, Copy)]
pub struct UniformBits(pub usize);

impl InputDistribution for UniformBits {
    fn num_inputs(&self) -> usize {
        self.0
    }
    fn conditional_p_one(&self, _i: usize, _f: &PartialInput) -> f64 {
        0.5
    }
}

/// Independent biased bits (each 1 with probability `p`) — the `H_i`
/// building blocks of the Section 7 OR distribution.
#[derive(Debug, Clone, Copy)]
pub struct BiasedBits {
    /// Number of inputs.
    pub n: usize,
    /// Per-bit probability of a 1.
    pub p: f64,
}

impl InputDistribution for BiasedBits {
    fn num_inputs(&self) -> usize {
        self.n
    }
    fn conditional_p_one(&self, _i: usize, _f: &PartialInput) -> f64 {
        self.p
    }
}

/// RANDOMSET: fixes every input of `s` that is still `*` in `f`, one at a
/// time, by the conditional distribution.
pub fn random_set<D: InputDistribution, R: Rng>(
    dist: &D,
    f: &mut PartialInput,
    s: &[usize],
    rng: &mut R,
) {
    for &i in s {
        if f[i].is_none() {
            let p = dist.conditional_p_one(i, f);
            f[i] = Some(rng.gen_bool(p.clamp(0.0, 1.0)));
        }
    }
}

/// A REFINE procedure (Section 4.3): inspects the algorithm at step `t`
/// under partial input `f`, refines `f` (only via RANDOMSET), and returns a
/// lower bound `x ≥ 1` on the cost of the step.
pub trait Refine<D: InputDistribution> {
    /// One REFINE call.
    fn refine<R: Rng>(&mut self, t: u64, f: &mut PartialInput, dist: &D, rng: &mut R) -> u64;
}

/// GENERATE (Section 4.3): drives REFINE until the accumulated step bound
/// reaches `t_limit`, then completes the map with RANDOMSET. Returns the
/// trajectory of `(t, f_t)` snapshots and the final complete input.
pub fn generate<D: InputDistribution, RF: Refine<D>, R: Rng>(
    refiner: &mut RF,
    dist: &D,
    t_limit: u64,
    rng: &mut R,
) -> (Vec<(u64, PartialInput)>, u32) {
    let r = dist.num_inputs();
    let mut f = f_star(r);
    let mut t = 0u64;
    let mut trajectory = vec![(0, f.clone())];
    while t <= t_limit {
        let x = refiner.refine(t, &mut f, dist, rng).max(1);
        t += x;
        trajectory.push((t, f.clone()));
    }
    let unset: Vec<usize> = (0..r).filter(|&i| f[i].is_none()).collect();
    random_set(dist, &mut f, &unset, rng);
    let mask = f
        .iter()
        .enumerate()
        .fold(0u32, |m, (i, v)| m | (u32::from(v.unwrap()) << i));
    (trajectory, mask)
}

/// The Section 5 REFINE instantiated against a concrete small GSM program.
///
/// Per-phase request tables for every complete input are precomputed by
/// exhaustive traced runs, so `MaxProc`, `MaxRWP`, `MaxCell` and `MaxRWC`
/// are *exact* maxima over the refinements of the current partial map, and
/// the certificates pinning them come from the trace ensemble.
pub struct GsmRefine {
    r: usize,
    alpha: u64,
    beta: u64,
    /// `rw[mask][phase][pid]` = max(#reads, #writes) of `pid` in `phase`.
    rw: Vec<Vec<Vec<u32>>>,
    /// `contention[mask][phase]` = (cell, count) with the max contention.
    contention: Vec<Vec<(usize, u32)>>,
    /// Trace ensemble for certificates.
    ensemble: TraceEnsemble,
    /// Inputs fixed by this refiner across all calls (for budget checks).
    pub inputs_fixed: usize,
}

impl GsmRefine {
    /// Precomputes the exhaustive tables for `make_program` on `machine`.
    pub fn build<P, F>(machine: &GsmMachine, make_program: F, r: usize) -> Result<Self>
    where
        P: GsmProgram + Sync,
        P::Proc: Send,
        F: Fn() -> P,
    {
        assert!(r <= 10, "exhaustive REFINE limited to r <= 10");
        let ensemble = TraceEnsemble::build(machine, &make_program, r)?;
        let mut rw = Vec::with_capacity(1 << r);
        let mut contention = Vec::with_capacity(1 << r);
        for mask in 0..1u32 << r {
            let input: Vec<Word> = (0..r).map(|i| Word::from(mask >> i & 1 == 1)).collect();
            let (_, trace) = machine.run_traced(&make_program(), &input)?;
            let mut per_phase_rw = Vec::with_capacity(trace.phases.len());
            let mut per_phase_cont = Vec::with_capacity(trace.phases.len());
            for phase in &trace.phases {
                let procs = phase.reads.len();
                let mut v = Vec::with_capacity(procs);
                let mut counts: std::collections::HashMap<usize, u32> = Default::default();
                for pid in 0..procs {
                    v.push(phase.reads[pid].len().max(phase.writes[pid].len()) as u32);
                    for &(a, _) in &phase.reads[pid] {
                        *counts.entry(a).or_insert(0) += 1;
                    }
                    for &(a, _) in &phase.writes[pid] {
                        *counts.entry(a).or_insert(0) += 1;
                    }
                }
                let max = counts.into_iter().max_by_key(|&(_, c)| c).unwrap_or((0, 0));
                per_phase_rw.push(v);
                per_phase_cont.push((max.0, max.1));
            }
            rw.push(per_phase_rw);
            contention.push(per_phase_cont);
        }
        Ok(GsmRefine {
            r,
            alpha: machine.alpha(),
            beta: machine.beta(),
            rw,
            contention,
            ensemble,
            inputs_fixed: 0,
        })
    }

    fn max_rw_at(&self, mask: u32, phase: usize) -> (usize, u32) {
        self.rw[mask as usize]
            .get(phase)
            .map(|v| {
                v.iter()
                    .enumerate()
                    .max_by_key(|&(_, &c)| c)
                    .map(|(pid, &c)| (pid, c))
                    .unwrap_or((0, 0))
            })
            .unwrap_or((0, 0))
    }

    fn contention_at(&self, mask: u32, phase: usize) -> (usize, u32) {
        self.contention[mask as usize]
            .get(phase)
            .copied()
            .unwrap_or((0, 0))
    }
}

impl<D: InputDistribution> Refine<D> for GsmRefine {
    fn refine<R: Rng>(&mut self, t: u64, f: &mut PartialInput, dist: &D, rng: &mut R) -> u64 {
        let phase = t as usize;
        // The exhaustive REFINE asserts r <= 10 at build time, so u32
        // mask enumeration cannot fail here.
        let masks = |f: &PartialInput| refinement_masks(f).expect("r <= 10 fits u32 masks");
        // Lines (4)-(10): force the max-traffic processor's behaviour.
        let max_count_rw;
        loop {
            let (h, pid, _count) = masks(f)
                .map(|m| {
                    let (pid, c) = self.max_rw_at(m, phase);
                    (m, pid, c)
                })
                .max_by_key(|&(_, _, c)| c)
                .expect("at least one refinement");
            // Certificate of the processor's trace through `phase` on h
            // (its phase-(t+1) behaviour is a function of that trace).
            let cert = self.ensemble.cert(Entity::Proc(pid), (phase + 1).max(1), h);
            let cert_vars: Vec<usize> = (0..self.r)
                .filter(|&i| cert >> i & 1 == 1 && f[i].is_none())
                .collect();
            self.inputs_fixed += cert_vars.len();
            random_set(dist, f, &cert_vars, rng);
            if mask_refines(h, f).expect("r <= 10 fits u32 masks") || cert_vars.is_empty() {
                max_count_rw = self.max_rw_at(h, phase).1 as u64;
                break;
            }
        }
        // Lines (12)-(21): force the max-contention cell's traffic.
        let max_contention;
        loop {
            let (h, cell, _count) = masks(f)
                .map(|m| {
                    let (cell, c) = self.contention_at(m, phase);
                    (m, cell, c)
                })
                .max_by_key(|&(_, _, c)| c)
                .expect("at least one refinement");
            let cert = self
                .ensemble
                .cert(Entity::Cell(cell), (phase + 1).max(1), h);
            let cert_vars: Vec<usize> = (0..self.r)
                .filter(|&i| cert >> i & 1 == 1 && f[i].is_none())
                .collect();
            self.inputs_fixed += cert_vars.len();
            random_set(dist, f, &cert_vars, rng);
            if mask_refines(h, f).expect("r <= 10 fits u32 masks") || cert_vars.is_empty() {
                max_contention = self.contention_at(h, phase).1 as u64;
                break;
            }
        }
        max_count_rw
            .div_ceil(self.alpha)
            .max(max_contention.div_ceil(self.beta))
            .max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parbounds_models::{GsmEnv, GsmFnProgram, Status};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn refinement_order_basics() {
        let coarse: PartialInput = vec![None, Some(true), None];
        let fine: PartialInput = vec![Some(false), Some(true), None];
        assert!(refines(&fine, &coarse));
        assert!(!refines(&coarse, &fine));
        assert!(refines(&coarse, &f_star(3)));
        assert!(mask_refines(0b010, &coarse).unwrap());
        assert!(!mask_refines(0b001, &coarse).unwrap());
        let it = refinement_masks(&coarse).unwrap();
        assert_eq!(it.num_masks(), 4);
        assert_eq!(it.count(), 4);
        // Beyond 32 inputs the u32 enumeration reports a typed error.
        assert!(mask_refines(0, &f_star(33)).is_err());
        assert!(refinement_masks(&f_star(33)).is_err());
    }

    /// Fact 4.1: any interleaving of RANDOMSET calls produces the target
    /// distribution. Fix inputs in two stages and chi-square-ish check
    /// uniformity of the final maps.
    #[test]
    fn randomset_preserves_the_distribution() {
        let dist = UniformBits(4);
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let trials = 16000;
        let mut counts = [0u32; 16];
        for _ in 0..trials {
            let mut f = f_star(4);
            random_set(&dist, &mut f, &[2, 0], &mut rng);
            random_set(&dist, &mut f, &[1, 3, 2], &mut rng); // 2 already set
            let mask = f
                .iter()
                .enumerate()
                .fold(0u32, |m, (i, v)| m | (u32::from(v.unwrap()) << i));
            counts[mask as usize] += 1;
        }
        let expect = trials as f64 / 16.0;
        for (mask, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expect).abs() < 5.0 * expect.sqrt(),
                "mask {mask:04b}: {c} vs {expect}"
            );
        }
    }

    #[test]
    fn biased_distribution_is_respected() {
        let dist = BiasedBits { n: 1, p: 0.125 };
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut ones = 0;
        for _ in 0..8000 {
            let mut f = f_star(1);
            random_set(&dist, &mut f, &[0], &mut rng);
            ones += u32::from(f[0].unwrap());
        }
        assert!((800..1200).contains(&ones), "ones = {ones}");
    }

    /// Parity tree on 4 bits as the target program for GsmRefine.
    fn parity4() -> impl GsmProgram<Proc = ()> {
        GsmFnProgram::new(
            3,
            |_| (),
            |pid, _, env: &mut GsmEnv<'_>| {
                // pids 0,1: level-1 nodes; pid 2: root.
                match (pid, env.phase()) {
                    (0 | 1, 0) => {
                        env.read(2 * pid);
                        env.read(2 * pid + 1);
                        Status::Active
                    }
                    (0 | 1, 1) => {
                        let x = env
                            .delivered()
                            .iter()
                            .map(|(_, c)| c.first().copied().unwrap_or(0))
                            .fold(0, |a, b| a ^ (b & 1));
                        env.write(4 + pid, x);
                        Status::Done
                    }
                    (2, 2) => {
                        env.read(4);
                        env.read(5);
                        Status::Active
                    }
                    (2, 3) => {
                        let x = env
                            .delivered()
                            .iter()
                            .map(|(_, c)| c.first().copied().unwrap_or(0))
                            .fold(0, |a, b| a ^ (b & 1));
                        env.write(6, x);
                        Status::Done
                    }
                    _ => Status::Active,
                }
            },
        )
    }

    #[test]
    fn gsm_refine_reports_true_phase_costs() {
        let m = GsmMachine::new(1, 1, 1);
        let mut refiner = GsmRefine::build(&m, parity4, 4).unwrap();
        let dist = UniformBits(4);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut f = f_star(4);
        // Phase 0: both level-1 nodes issue 2 reads; contention 1.
        let x0 = Refine::<UniformBits>::refine(&mut refiner, 0, &mut f, &dist, &mut rng);
        assert_eq!(x0, 2, "phase 0 has m_rw = 2");
        // The refinement never sets more inputs than exist.
        assert!(refiner.inputs_fixed <= 4);
        // All returned bounds are >= 1 and the trajectory stays refinable.
        let x1 = Refine::<UniformBits>::refine(&mut refiner, 1, &mut f, &dist, &mut rng);
        assert!(x1 >= 1);
        assert!(refinement_masks(&f).unwrap().num_masks() >= 1);
    }

    #[test]
    fn generate_drives_to_the_time_limit_and_completes_the_map() {
        let m = GsmMachine::new(1, 1, 1);
        let mut refiner = GsmRefine::build(&m, parity4, 4).unwrap();
        let dist = UniformBits(4);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let (trajectory, mask) = generate(&mut refiner, &dist, 3, &mut rng);
        assert!(trajectory.last().unwrap().0 > 3);
        assert!(mask < 16);
        // Trajectory is a refinement chain.
        for w in trajectory.windows(2) {
            assert!(refines(&w[1].1, &w[0].1));
        }
    }

    /// Lemma 4.1-flavoured check: the complete inputs produced by GENERATE
    /// (through this REFINE) are distributed by D — uniformly here.
    #[test]
    fn generate_output_distribution_is_unbiased() {
        let m = GsmMachine::new(1, 1, 1);
        let dist = UniformBits(4);
        let mut counts = [0u32; 16];
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let trials = 4000;
        let mut refiner = GsmRefine::build(&m, parity4, 4).unwrap();
        for _ in 0..trials {
            let (_, mask) = generate(&mut refiner, &dist, 2, &mut rng);
            counts[mask as usize] += 1;
        }
        let expect = trials as f64 / 16.0;
        for (mask, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expect).abs() < 6.0 * expect.sqrt(),
                "mask {mask:04b}: {c} vs {expect}"
            );
        }
    }
}
