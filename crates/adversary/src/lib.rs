//! # parbounds-adversary
//!
//! Executable lower-bound machinery for MacKenzie & Ramachandran
//! (SPAA 1998). Lower bounds cannot be "run", but their proof obligations
//! can be *checked* against real executions on the `parbounds-models`
//! simulators:
//!
//! * [`degree_audit`] — Theorems 3.1/7.2: the per-phase degree-growth
//!   recurrence `b_l = Π(3 + τ_j + 2τ'_j)` audited on traced GSM runs, with
//!   the chained inequality `r ≤ (6μ)^{T/μ}` checked for exhaustively
//!   verified Parity programs;
//! * [`traces`] — Section 5.1: `Trace`, `States`, `Know`, `AffProc`,
//!   `AffCell` and `Cert` computed exactly by exhaustive enumeration on
//!   small machines (degrees via the `parbounds-boolean` polynomial
//!   representation);
//! * [`random_adversary`] — Sections 4–5: partial input maps, RANDOMSET
//!   (Fact 4.1), the REFINE/GENERATE driver, and the Section 5 REFINE
//!   instantiated against concrete GSM programs;
//! * [`or_adversary`] — Section 7: the `{all-zeros} ∪ {H_i}` mixture
//!   distribution and an empirical harness showing bounded-information OR
//!   algorithms collapse to success ≈ 1/2 (Theorem 7.1's content);
//! * [`or_refine`] — the Section 7.1 *modified* adversary itself:
//!   RANDOMRESTRICT/RANDOMFIX over explicit map sets and the §7 REFINE
//!   driven against concrete GSM programs;
//! * [`yao`] — Theorem 2.1 (Yao's principle) verified numerically on
//!   enumerable probe games;
//! * [`goodness`] — the Section 5.2 *t-goodness* conditions evaluated
//!   exactly against trace ensembles, with the paper's `d_t/k_t/r_t`
//!   growth sequences;
//! * [`mask`] — bitset-backed wide input masks and the lazy
//!   refinement-subcube iterator the exact checkers walk;
//! * [`symbolic`] — the memoized, closed-form `Know`/`AffProc`/`AffCell`
//!   analysis along the REFINE/GENERATE trajectory, the large-`n`
//!   lower-bound audits with `SymExpr` growth budgets, and the seeded
//!   Monte-Carlo adversary mode.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod degree_audit;
pub mod goodness;
pub mod mask;
pub mod or_adversary;
pub mod or_refine;
pub mod random_adversary;
pub mod symbolic;
pub mod traces;
pub mod yao;

pub use degree_audit::{audit_parity_program, DegreeAudit, ParityAuditReport};
pub use goodness::{worst_certificate_size, GrowthSequences, TGoodness};
pub use mask::{BitMask, RefinementMasks, TooManyInputs};
pub use or_adversary::{or_success_rate, probe_k_or, OrDistribution};
pub use or_refine::{
    materialize_distribution, random_fix, random_restrict, MapSet, OrRefine, OrRefineStep,
};
pub use random_adversary::{
    f_star, generate, mask_refines, random_set, refinement_masks, refines, BiasedBits, GsmRefine,
    InputDistribution, PartialInput, Refine, UniformBits,
};
pub use symbolic::{
    audit_all, audit_differential, audit_family, audit_registration, lint_audit_gap, mc_audit,
    mc_trace_sensitivity, paper_horizon, wilson, AuditFamily, AuditMismatch, AuditOutcome,
    AuditScope, AuditStyle, AuditVerdict, FanRule, FoldOp, FoldTree, McAuditOutcome, McEstimate,
    MemoGoodness, SymBudgets, AUDIT_FAMILIES,
};
pub use traces::{Entity, TraceEnsemble};
pub use yao::{check_yao_sampled, parity_probe_game, Game};
