//! The **modified** Random Adversary of Section 7.1, executable: instead of
//! fixing inputs one by one, the adversary restricts a *set of input maps*
//! phase by phase (RANDOMRESTRICT), and only fully fixes the input
//! (RANDOMFIX) when the algorithm's possible behaviour already forces a
//! large step — the structure of the Section 7 REFINE (lines (1)–(20)).
//!
//! On machines small enough for exhaustive enumeration the set of input
//! maps is explicit (`Vec<mask>`), the mixture distribution `D` of
//! Section 7.3 assigns each mask a weight, and every `Max…(t, F)` quantity
//! is computed exactly from precomputed per-mask request tables — the same
//! material [`crate::random_adversary::GsmRefine`] uses for the Section 5
//! adversary.

use rand::Rng;

use parbounds_models::{GsmMachine, GsmProgram, Result, Word};

use crate::or_adversary::OrDistribution;

/// A set of still-possible input maps with the §7 mixture weights.
#[derive(Debug, Clone)]
pub struct MapSet {
    /// The masks still possible.
    pub masks: Vec<u32>,
    /// `weights[i]` = `P_D(masks[i])` (unnormalized within the set).
    pub weights: Vec<f64>,
}

impl MapSet {
    /// Total probability mass of the set under `D`.
    pub fn mass(&self) -> f64 {
        self.weights.iter().sum()
    }

    /// Splits into `(in_subset, rest)` by a predicate.
    fn split(&self, pred: impl Fn(u32) -> bool) -> (MapSet, MapSet) {
        let mut yes = MapSet {
            masks: vec![],
            weights: vec![],
        };
        let mut no = MapSet {
            masks: vec![],
            weights: vec![],
        };
        for (&m, &w) in self.masks.iter().zip(&self.weights) {
            let side = if pred(m) { &mut yes } else { &mut no };
            side.masks.push(m);
            side.weights.push(w);
        }
        (yes, no)
    }
}

/// The §7.3 mixture `D` over `r`-bit masks, materialized: the all-zeros
/// atom carries mass 1/2; each `H_i` contributes `1/(2·#components)` spread
/// binomially by its density.
pub fn materialize_distribution(dist: &OrDistribution, r: usize) -> MapSet {
    assert!(r <= 16, "materialization limited to r <= 16");
    let comps = dist.densities.len() as f64;
    let mut weights = vec![0.0; 1 << r];
    weights[0] += 0.5;
    for &p in &dist.densities {
        for (mask, w) in weights.iter_mut().enumerate() {
            let ones = (mask as u32).count_ones() as i32;
            *w += (0.5 / comps) * p.powi(ones) * (1.0 - p).powi(r as i32 - ones);
        }
    }
    MapSet {
        masks: (0..1u32 << r).collect(),
        weights,
    }
}

/// RANDOMFIX: draws one complete input map from `D` restricted to the set.
pub fn random_fix<R: Rng>(set: &MapSet, rng: &mut R) -> u32 {
    let total = set.mass();
    assert!(total > 0.0, "empty or null set");
    let mut x = rng.gen::<f64>() * total;
    for (&m, &w) in set.masks.iter().zip(&set.weights) {
        x -= w;
        if x <= 0.0 {
            return m;
        }
    }
    *set.masks.last().unwrap()
}

/// RANDOMRESTRICT: returns either `subset` (with probability
/// `mass(subset)/mass(set)`) or its complement within `set`.
pub fn random_restrict<R: Rng>(
    set: &MapSet,
    subset_pred: impl Fn(u32) -> bool,
    rng: &mut R,
) -> (MapSet, bool) {
    let (yes, no) = set.split(subset_pred);
    let p = if set.mass() > 0.0 {
        yes.mass() / set.mass()
    } else {
        0.0
    };
    if rng.gen::<f64>() < p {
        (yes, true)
    } else {
        (no, false)
    }
}

/// The outcome of one §7 REFINE call.
#[derive(Debug)]
pub struct OrRefineStep {
    /// Lower bound on the phase's big-steps.
    pub x: u64,
    /// TRUE once the input map is fully defined (lines (4)/(10)/(17)).
    pub done: bool,
    /// The fixed mask, if `done`.
    pub fixed: Option<u32>,
}

/// The Section 7 REFINE against a concrete small GSM program.
pub struct OrRefine {
    r: usize,
    threshold: u64,
    /// `rw[mask][phase]` = max per-processor requests.
    rw: Vec<Vec<u64>>,
    /// `contention[mask][phase]` = max per-cell contention.
    contention: Vec<Vec<u64>>,
    /// Current set of possible maps.
    pub set: MapSet,
    /// Which mixture component index the H_t tested at step t refers to.
    next_h: usize,
    densities: Vec<f64>,
}

impl OrRefine {
    /// Precomputes the request tables and materializes `D`.
    pub fn build<P, F>(
        machine: &GsmMachine,
        make_program: F,
        r: usize,
        dist: &OrDistribution,
        threshold: u64,
    ) -> Result<Self>
    where
        P: GsmProgram + Sync,
        P::Proc: Send,
        F: Fn() -> P,
    {
        assert!(r <= 12);
        let mut rw = Vec::with_capacity(1 << r);
        let mut contention = Vec::with_capacity(1 << r);
        for mask in 0..1u32 << r {
            let input: Vec<Word> = (0..r).map(|i| Word::from(mask >> i & 1 == 1)).collect();
            let (_, trace) = machine.run_traced(&make_program(), &input)?;
            let mut per_rw = Vec::with_capacity(trace.phases.len());
            let mut per_cont = Vec::with_capacity(trace.phases.len());
            for phase in &trace.phases {
                per_rw.push(
                    phase
                        .reads
                        .iter()
                        .zip(&phase.writes)
                        .map(|(r, w)| r.len().max(w.len()) as u64)
                        .max()
                        .unwrap_or(0),
                );
                let mut counts = std::collections::HashMap::new();
                for rs in &phase.reads {
                    for &(a, _) in rs {
                        *counts.entry(a).or_insert(0u64) += 1;
                    }
                }
                for ws in &phase.writes {
                    for &(a, _) in ws {
                        *counts.entry(a).or_insert(0u64) += 1;
                    }
                }
                per_cont.push(counts.values().copied().max().unwrap_or(0));
            }
            rw.push(per_rw);
            contention.push(per_cont);
        }
        Ok(OrRefine {
            r,
            threshold,
            rw,
            contention,
            set: materialize_distribution(dist, r),
            next_h: 0,
            densities: dist.densities.clone(),
        })
    }

    fn max_rw(&self, phase: usize) -> u64 {
        self.set
            .masks
            .iter()
            .map(|&m| self.rw[m as usize].get(phase).copied().unwrap_or(0))
            .max()
            .unwrap_or(0)
    }

    fn max_contention(&self, phase: usize) -> u64 {
        self.set
            .masks
            .iter()
            .map(|&m| self.contention[m as usize].get(phase).copied().unwrap_or(0))
            .max()
            .unwrap_or(0)
    }

    /// One REFINE call at phase `t` (the §7 procedure):
    /// * if the maximum possible per-processor traffic or per-cell
    ///   contention over the surviving maps reaches the threshold, the
    ///   adversary RANDOMFIXes the input (lines (3)–(13)) — the algorithm
    ///   has committed to an expensive step;
    /// * otherwise it RANDOMRESTRICTs against the next `H_t`-flavoured
    ///   subset (here: "has at least one group of ones at density `d_t`" ≈
    ///   the maps `H_t` is likeliest to produce); drawing the subset ends
    ///   the game with a fixed map (line (17)), drawing the complement
    ///   continues with `x = 1`.
    pub fn refine<R: Rng>(&mut self, t: usize, rng: &mut R) -> OrRefineStep {
        let rw = self.max_rw(t);
        let kappa = self.max_contention(t);
        if rw >= self.threshold || kappa >= self.threshold {
            // Force the expensive behaviour: fix toward the maximizing map.
            let target: u32 = *self
                .set
                .masks
                .iter()
                .max_by_key(|&&m| {
                    self.rw[m as usize]
                        .get(t)
                        .copied()
                        .unwrap_or(0)
                        .max(self.contention[m as usize].get(t).copied().unwrap_or(0))
                })
                .unwrap();
            let fixed = if self.set.masks.contains(&target) {
                target
            } else {
                random_fix(&self.set, rng)
            };
            let x = self.rw[fixed as usize]
                .get(t)
                .copied()
                .unwrap_or(1)
                .max(self.contention[fixed as usize].get(t).copied().unwrap_or(1))
                .max(1);
            self.set = MapSet {
                masks: vec![fixed],
                weights: vec![1.0],
            };
            return OrRefineStep {
                x,
                done: true,
                fixed: Some(fixed),
            };
        }
        // RANDOMRESTRICT against the H_t-typical subset: masks whose
        // population matches density d_t within a factor of 2 (nonzero).
        let d = self.densities.get(self.next_h).copied().unwrap_or(1e-9);
        self.next_h = (self.next_h + 1).min(self.densities.len().saturating_sub(1));
        let r = self.r as f64;
        let expect = (d * r).max(1.0);
        let (set, took_subset) = random_restrict(
            &self.set,
            |m| {
                let ones = m.count_ones() as f64;
                ones >= 1.0 && ones <= 2.0 * expect
            },
            rng,
        );
        if set.masks.is_empty() {
            // Degenerate split; keep the old set.
            return OrRefineStep {
                x: 1,
                done: false,
                fixed: None,
            };
        }
        self.set = set;
        if took_subset {
            let fixed = random_fix(&self.set.clone(), rng);
            self.set = MapSet {
                masks: vec![fixed],
                weights: vec![1.0],
            };
            OrRefineStep {
                x: 1,
                done: true,
                fixed: Some(fixed),
            }
        } else {
            OrRefineStep {
                x: 1,
                done: false,
                fixed: None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parbounds_models::{GsmEnv, GsmFnProgram, Status};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn or_tree(r: usize) -> impl GsmProgram<Proc = ()> + use<> {
        // Fan-in-2 OR tree on the GSM.
        let mut nodes = Vec::new();
        let mut bases = vec![0usize];
        let (mut width, mut next, mut level) = (r, r, 1usize);
        while width > 1 {
            let w2 = width.div_ceil(2);
            bases.push(next);
            for j in 0..w2 {
                nodes.push((level, j, width));
            }
            next += w2;
            width = w2;
            level += 1;
        }
        GsmFnProgram::new(
            nodes.len().max(1),
            move |_| (),
            move |pid, _, env: &mut GsmEnv<'_>| {
                let (level, j, prev_width) = nodes[pid];
                let read_phase = 2 * (level - 1);
                match env.phase() {
                    t if t < read_phase => Status::Active,
                    t if t == read_phase => {
                        env.read(bases[level - 1] + 2 * j);
                        if 2 * j + 1 < prev_width {
                            env.read(bases[level - 1] + 2 * j + 1);
                        }
                        Status::Active
                    }
                    _ => {
                        let x = Word::from(
                            env.delivered()
                                .iter()
                                .any(|(_, c)| c.iter().any(|&b| b != 0)),
                        );
                        env.write(bases[level] + j, x);
                        Status::Done
                    }
                }
            },
        )
    }

    #[test]
    fn materialized_distribution_is_a_probability() {
        let d = OrDistribution::new(256, 2, 1);
        let set = materialize_distribution(&d, 8);
        assert!((set.mass() - 1.0).abs() < 1e-9, "mass {}", set.mass());
        // The zero mask holds at least half the mass.
        assert!(set.weights[0] >= 0.5);
    }

    #[test]
    fn random_fix_respects_the_weights() {
        let d = OrDistribution::new(256, 2, 1);
        let set = materialize_distribution(&d, 8);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let zeros = (0..4000)
            .filter(|_| random_fix(&set, &mut rng) == 0)
            .count();
        assert!(zeros >= 1800, "zeros {zeros}"); // ~>= the 1/2 atom
    }

    #[test]
    fn random_restrict_partitions_mass() {
        let d = OrDistribution::new(256, 2, 1);
        let set = materialize_distribution(&d, 8);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut took = 0;
        let trials = 3000;
        for _ in 0..trials {
            let (_, yes) = random_restrict(&set, |m| m == 0, &mut rng);
            took += usize::from(yes);
        }
        // P(subset) = weight of the zero mask: the 1/2 atom plus the
        // all-zero mass of the sparse H_i components (~0.79 here).
        let rate = took as f64 / trials as f64;
        assert!((0.5..0.95).contains(&rate), "rate {rate}");
        assert!(
            (rate - set.weights[0]).abs() < 0.05,
            "rate {rate} vs weight {}",
            set.weights[0]
        );
    }

    #[test]
    fn refine_drives_the_or_tree_without_breaking() {
        let r = 8;
        let machine = GsmMachine::new(1, 1, 1);
        let dist = OrDistribution::new(r, machine.mu(), 1);
        let mut refine = OrRefine::build(&machine, || or_tree(r), r, &dist, 64).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut total = 0u64;
        for t in 0..32 {
            let step = refine.refine(t, &mut rng);
            total += step.x;
            if step.done {
                assert_eq!(refine.set.masks.len(), 1);
                break;
            }
            assert!(!refine.set.masks.is_empty());
        }
        assert!(total >= 1);
    }

    #[test]
    fn low_threshold_triggers_randomfix_immediately() {
        // The tree's first phase has m_rw = 2: threshold 2 fires line (4).
        let r = 8;
        let machine = GsmMachine::new(1, 1, 1);
        let dist = OrDistribution::new(r, 1, 1);
        let mut refine = OrRefine::build(&machine, || or_tree(r), r, &dist, 2).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let step = refine.refine(0, &mut rng);
        assert!(step.done);
        assert!(step.x >= 2);
    }

    #[test]
    fn generated_inputs_follow_d_through_the_adversary() {
        // Lemma 4.1 analogue for the modified adversary: run REFINE to
        // completion many times; the all-zeros rate must match the atom.
        let r = 6;
        let machine = GsmMachine::new(1, 1, 1);
        let dist = OrDistribution::new(r, 1, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut zeros = 0;
        let trials = 1500;
        for _ in 0..trials {
            let mut refine = OrRefine::build(&machine, || or_tree(r), r, &dist, u64::MAX).unwrap();
            let mut t = 0;
            let fixed = loop {
                let step = refine.refine(t, &mut rng);
                t += 1;
                if let Some(m) = step.fixed {
                    break m;
                }
                if t > 64 {
                    break random_fix(&refine.set, &mut rng);
                }
            };
            zeros += usize::from(fixed == 0);
        }
        let rate = zeros as f64 / trials as f64;
        assert!((0.40..0.85).contains(&rate), "all-zeros rate {rate}");
    }
}
