//! Exhaustive trace analysis: the `Trace`, `States`, `Know`, `AffProc`,
//! `AffCell` and `Cert` machinery of Section 5.1, computed *exactly* on
//! small GSM machines by running the program on every input map.
//!
//! The Random Adversary proofs quantify over these sets; on machines with
//! `r ≤ ~12` boolean inputs we can enumerate all `2^r` input maps, record
//! the full `Trace(v, t, f)` of every processor and cell, and compute the
//! sets by definition. The unit and integration tests then check the
//! *invariants the proofs assert* — e.g. that `|Know|` grows at most as the
//! Lemma 5.1 recurrences allow, and that `deg(States)` obeys the degree
//! bounds — against real executions.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use parbounds_boolean::{certificate_set_at, BoolFn, IntPoly};
use parbounds_models::{GsmMachine, GsmProgram, GsmTrace, Result, Word};

/// A processor or cell, the `v` of `Trace(v, t, f)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Entity {
    /// Processor `pid`.
    Proc(usize),
    /// Shared-memory cell `addr`.
    Cell(usize),
}

/// Exhaustive ensemble of traces of one program over all `2^r` input maps.
pub struct TraceEnsemble {
    r: usize,
    phases: usize,
    num_procs: usize,
    cells: Vec<usize>,
    /// `trace_key[input][entity]` = hash of `Trace(entity, t, input)` per
    /// prefix length `t` — `keys[input][entity_index][t]`.
    keys: Vec<HashMap<Entity, Vec<u64>>>,
}

fn hash_one(x: impl Hash) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    x.hash(&mut h);
    h.finish()
}

impl TraceEnsemble {
    /// Runs `make_program()` on every `r`-bit input and records all traces.
    /// `r ≤ 12` keeps this exhaustive step tractable.
    pub fn build<P, F>(machine: &GsmMachine, make_program: F, r: usize) -> Result<Self>
    where
        P: GsmProgram + Sync,
        P::Proc: Send,
        F: Fn() -> P,
    {
        assert!(r <= 12, "exhaustive ensemble limited to r <= 12");
        let mut keys = Vec::with_capacity(1 << r);
        let mut phases = 0;
        let mut num_procs = 0;
        let mut cells: Vec<usize> = Vec::new();
        for mask in 0..1u32 << r {
            let input: Vec<Word> = (0..r).map(|i| Word::from(mask >> i & 1 == 1)).collect();
            let prog = make_program();
            num_procs = prog.num_procs();
            let (_, trace) = machine.run_traced(&prog, &input)?;
            phases = phases.max(trace.phases.len());
            let per_entity = Self::keys_of(&trace, num_procs, &mut cells, machine, &input);
            keys.push(per_entity);
        }
        cells.sort_unstable();
        cells.dedup();
        Ok(TraceEnsemble {
            r,
            phases,
            num_procs,
            cells,
            keys,
        })
    }

    /// Computes incremental trace hashes per entity for one execution.
    fn keys_of(
        trace: &GsmTrace,
        num_procs: usize,
        cells_acc: &mut Vec<usize>,
        machine: &GsmMachine,
        input: &[Word],
    ) -> HashMap<Entity, Vec<u64>> {
        let mut out: HashMap<Entity, Vec<u64>> = HashMap::new();
        // Processor traces: the sequence of (cell, contents) read sets.
        for pid in 0..num_procs {
            let mut acc: u64 = hash_one(pid);
            let mut v = Vec::with_capacity(trace.phases.len());
            for phase in &trace.phases {
                let reads = phase.reads.get(pid).map(|r| r.as_slice()).unwrap_or(&[]);
                acc = hash_one((acc, reads));
                v.push(acc);
            }
            out.insert(Entity::Proc(pid), v);
        }
        // Cell traces: contents at the end of each phase. Reconstruct by
        // replaying writes onto the initial placement.
        let mut contents: HashMap<usize, Vec<Word>> = HashMap::new();
        for (i, &b) in input.iter().enumerate() {
            contents
                .entry(i / machine.gamma() as usize)
                .or_default()
                .push(b);
        }
        let mut touched: Vec<usize> = contents.keys().copied().collect();
        for phase in &trace.phases {
            for w in &phase.writes {
                for &(addr, _) in w {
                    touched.push(addr);
                }
            }
        }
        touched.sort_unstable();
        touched.dedup();
        for &addr in &touched {
            if !cells_acc.contains(&addr) {
                cells_acc.push(addr);
            }
        }
        let mut cell_keys: HashMap<usize, Vec<u64>> =
            touched.iter().map(|&a| (a, Vec::new())).collect();
        for phase in &trace.phases {
            for w in &phase.writes {
                for &(addr, value) in w {
                    contents.entry(addr).or_default().push(value);
                }
            }
            for &addr in &touched {
                let c = contents.get(&addr).map(|v| v.as_slice()).unwrap_or(&[]);
                let v = cell_keys.get_mut(&addr).unwrap();
                let prev = v.last().copied().unwrap_or_else(|| hash_one(addr));
                v.push(hash_one((prev, c)));
            }
        }
        for (addr, v) in cell_keys {
            out.insert(Entity::Cell(addr), v);
        }
        out
    }

    /// Number of boolean inputs.
    pub fn num_inputs(&self) -> usize {
        self.r
    }

    /// Maximum number of phases across inputs.
    pub fn num_phases(&self) -> usize {
        self.phases
    }

    /// All processors and touched cells.
    pub fn entities(&self) -> Vec<Entity> {
        let mut v: Vec<Entity> = (0..self.num_procs).map(Entity::Proc).collect();
        v.extend(self.cells.iter().map(|&a| Entity::Cell(a)));
        v
    }

    /// Trace key of `v` after phase `t` on input `mask` (0 = before any
    /// phase is not represented; `t` counts completed phases, 1-based).
    /// Two inputs share a key iff `Trace(v, t, ·)` is identical on them —
    /// the public handle the t-goodness checker groups states by.
    pub fn trace_key(&self, v: Entity, t: usize, mask: u32) -> u64 {
        self.key(v, t, mask)
    }

    fn key(&self, v: Entity, t: usize, mask: u32) -> u64 {
        debug_assert!(t >= 1);
        self.keys[mask as usize]
            .get(&v)
            .map(|ks| {
                ks.get(t - 1)
                    .copied()
                    .unwrap_or_else(|| *ks.last().unwrap())
            })
            .unwrap_or_else(|| hash_one(v))
    }

    /// `|States(v, t, f*)|`: distinct traces of `v` after `t` phases.
    pub fn num_states(&self, v: Entity, t: usize) -> usize {
        let mut set = std::collections::HashSet::new();
        for mask in 0..1u32 << self.r {
            set.insert(self.key(v, t, mask));
        }
        set.len()
    }

    /// `Know(v, t, f*)`: the set of inputs the trace of `v` depends on,
    /// as a bitmask. For total functions over the cube this is exactly the
    /// junta support of the trace map.
    pub fn know(&self, v: Entity, t: usize) -> u32 {
        let mut support = 0u32;
        for i in 0..self.r {
            let bit = 1u32 << i;
            for mask in 0..1u32 << self.r {
                if mask & bit == 0 && self.key(v, t, mask) != self.key(v, t, mask | bit) {
                    support |= bit;
                    break;
                }
            }
        }
        support
    }

    /// `AffProc(i, t, f*)`: processors whose trace depends on input `i`.
    pub fn aff_proc(&self, i: usize, t: usize) -> Vec<usize> {
        (0..self.num_procs)
            .filter(|&pid| self.know(Entity::Proc(pid), t) & (1 << i) != 0)
            .collect()
    }

    /// `AffCell(i, t, f*)`: cells whose trace depends on input `i`.
    pub fn aff_cell(&self, i: usize, t: usize) -> Vec<usize> {
        self.cells
            .iter()
            .copied()
            .filter(|&a| self.know(Entity::Cell(a), t) & (1 << i) != 0)
            .collect()
    }

    /// `deg(States(v, t, f*))`: the maximum degree of the characteristic
    /// function of any trace class of `v` at `t` (Section 5.2's quantity),
    /// computed exactly via the integer polynomial representation.
    pub fn states_degree(&self, v: Entity, t: usize) -> usize {
        let mut classes: HashMap<u64, Vec<u32>> = HashMap::new();
        for mask in 0..1u32 << self.r {
            classes.entry(self.key(v, t, mask)).or_default().push(mask);
        }
        classes
            .values()
            .map(|members| {
                let set: std::collections::HashSet<u32> = members.iter().copied().collect();
                let f = BoolFn::from_fn(self.r, |a| set.contains(&a));
                IntPoly::of(&f).degree()
            })
            .max()
            .unwrap_or(0)
    }

    /// Trace keys of ONE execution of `prog` on `input` — the same
    /// per-entity incremental `Trace(v, t, ·)` hash chain the exhaustive
    /// ensemble records, but computed for a single concrete input, so it
    /// works at any `n`. The Monte-Carlo adversary samples refinements and
    /// compares these keys across bit flips to estimate trace sensitivity
    /// at sizes where the `2^r` ensemble is unbuildable. Index a returned
    /// vector at `t - 1` for the key after `t` completed phases (vectors
    /// may be shorter than the run for entities that stop changing; the
    /// last entry is the stable key, matching [`TraceEnsemble::trace_key`]).
    pub fn single_run_keys<P>(
        machine: &GsmMachine,
        prog: &P,
        input: &[Word],
    ) -> Result<HashMap<Entity, Vec<u64>>>
    where
        P: GsmProgram + Sync,
        P::Proc: Send,
    {
        let (_, trace) = machine.run_traced(prog, input)?;
        let mut cells = Vec::new();
        Ok(Self::keys_of(
            &trace,
            prog.num_procs(),
            &mut cells,
            machine,
            input,
        ))
    }

    /// `Cert(v, t, f)`-style certificate: the lexicographically smallest
    /// minimum input set that pins `v`'s trace on input `mask`, via the
    /// certificate machinery of `parbounds-boolean` applied to the
    /// trace-class indicator.
    pub fn cert(&self, v: Entity, t: usize, mask: u32) -> u32 {
        let target = self.key(v, t, mask);
        let f = BoolFn::from_fn(self.r, |a| self.key(v, t, a) == target);
        certificate_set_at(&f, mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parbounds_models::{GsmEnv, GsmFnProgram, Status};

    /// Two processors: proc 0 reads input cell 0; proc 1 reads cell 1 and
    /// then, iff its bit is 1, reads cell 0 too.
    fn two_proc_program() -> impl GsmProgram<Proc = Option<Word>> {
        GsmFnProgram::new(
            2,
            |_| None,
            |pid, st: &mut Option<Word>, env: &mut GsmEnv<'_>| match env.phase() {
                0 => {
                    env.read(pid);
                    Status::Active
                }
                1 => {
                    let bit = env.delivered()[0].1.first().copied().unwrap_or(0);
                    *st = Some(bit);
                    if pid == 1 && bit == 1 {
                        env.read(0);
                        Status::Active
                    } else {
                        Status::Done
                    }
                }
                _ => Status::Done,
            },
        )
    }

    #[test]
    fn know_sets_are_exact() {
        let m = GsmMachine::new(1, 1, 1);
        let ens = TraceEnsemble::build(&m, two_proc_program, 2).unwrap();
        // After phase 1 (reads delivered at phase 2's view, but the trace
        // records the read contents at the read phase itself): proc 0 knows
        // x0, proc 1 knows x1.
        assert_eq!(ens.know(Entity::Proc(0), 1), 0b01);
        assert_eq!(ens.know(Entity::Proc(1), 1), 0b10);
        // After phase 2, proc 1's trace depends on x0 as well (it read cell
        // 0 when x1 = 1).
        assert_eq!(ens.know(Entity::Proc(1), 2), 0b11);
        assert_eq!(ens.know(Entity::Proc(0), 2), 0b01);
    }

    #[test]
    fn aff_sets_mirror_know() {
        let m = GsmMachine::new(1, 1, 1);
        let ens = TraceEnsemble::build(&m, two_proc_program, 2).unwrap();
        assert_eq!(ens.aff_proc(0, 2), vec![0, 1]);
        assert_eq!(ens.aff_proc(1, 2), vec![1]);
    }

    #[test]
    fn single_run_keys_agree_with_the_ensemble() {
        let m = GsmMachine::new(1, 1, 1);
        let ens = TraceEnsemble::build(&m, two_proc_program, 2).unwrap();
        for mask in 0..4u32 {
            let input: Vec<Word> = (0..2).map(|i| Word::from(mask >> i & 1 == 1)).collect();
            let prog = two_proc_program();
            let keys = TraceEnsemble::single_run_keys(&m, &prog, &input).unwrap();
            for (v, ks) in &keys {
                for t in 1..=ks.len() {
                    assert_eq!(ks[t - 1], ens.trace_key(*v, t, mask), "{v:?} t={t}");
                }
            }
        }
    }

    #[test]
    fn states_count_matches_information() {
        let m = GsmMachine::new(1, 1, 1);
        let ens = TraceEnsemble::build(&m, two_proc_program, 2).unwrap();
        // Proc 0 has 2 states after phase 1 (x0 = 0 or 1).
        assert_eq!(ens.num_states(Entity::Proc(0), 1), 2);
        // Proc 1 after phase 2: x1=0 (one state), x1=1 with x0 in {0,1}
        // (two states) = 3.
        assert_eq!(ens.num_states(Entity::Proc(1), 2), 3);
    }

    #[test]
    fn states_degree_is_bounded_by_know_size() {
        let m = GsmMachine::new(1, 1, 1);
        let ens = TraceEnsemble::build(&m, two_proc_program, 2).unwrap();
        for v in ens.entities() {
            for t in 1..=ens.num_phases() {
                let deg = ens.states_degree(v, t);
                let know = ens.know(v, t).count_ones() as usize;
                assert!(deg <= know, "{v:?} t={t}: deg {deg} > know {know}");
            }
        }
    }

    #[test]
    fn cert_is_within_know_and_pins_trace() {
        let m = GsmMachine::new(1, 1, 1);
        let ens = TraceEnsemble::build(&m, two_proc_program, 2).unwrap();
        // For proc 1 at t=2 on input x=00: certificate is {x1} (x1=0 alone
        // pins the trace: no second read happens).
        let c = ens.cert(Entity::Proc(1), 2, 0b00);
        assert_eq!(c, 0b10);
        // On input x=11 the certificate must include both variables.
        let c = ens.cert(Entity::Proc(1), 2, 0b11);
        assert_eq!(c, 0b11);
        for mask in 0..4 {
            let know = ens.know(Entity::Proc(1), 2);
            assert_eq!(ens.cert(Entity::Proc(1), 2, mask) & !know, 0);
        }
    }

    #[test]
    fn input_cells_know_their_inputs() {
        let m = GsmMachine::new(1, 1, 2); // gamma = 2: both bits in cell 0
        let prog = || {
            GsmFnProgram::new(
                1,
                |_| (),
                |_, _, env: &mut GsmEnv<'_>| {
                    if env.phase() == 0 {
                        env.read(0);
                        Status::Active
                    } else {
                        Status::Done
                    }
                },
            )
        };
        let ens = TraceEnsemble::build(&m, prog, 2).unwrap();
        // Cell 0 initially holds both inputs: it "knows" x0 and x1.
        assert_eq!(ens.know(Entity::Cell(0), 1), 0b11);
        // The single processor learns both bits by reading the cell.
        assert_eq!(ens.know(Entity::Proc(0), 1), 0b11);
    }
}
