//! Yao's theorem (Theorem 2.1), checked numerically on enumerable games.
//!
//! The theorem: the best worst-case success probability `S₁` of a
//! randomized algorithm is at most the best distributional success `S₂` of
//! a deterministic algorithm against any fixed input distribution. We model
//! a "T-step algorithm class" as an explicit finite set of deterministic
//! algorithms, build the 0/1 success matrix `M[alg][input]`, and verify
//! `S₁ ≤ S₂` — exactly for small games (S₁ via iterated best-response /
//! direct bound), and for arbitrary sampled mixtures.

use rand::Rng;

/// A finite decision game: `success[a][x] = 1` iff deterministic algorithm
/// `a` answers input `x` correctly.
#[derive(Debug, Clone)]
pub struct Game {
    /// `success[a][x]`.
    pub success: Vec<Vec<bool>>,
}

impl Game {
    /// Number of deterministic algorithms.
    pub fn num_algs(&self) -> usize {
        self.success.len()
    }

    /// Number of inputs.
    pub fn num_inputs(&self) -> usize {
        self.success.first().map(|r| r.len()).unwrap_or(0)
    }

    /// `S₂(D)`: best deterministic success against input distribution `d`.
    pub fn best_det_against(&self, d: &[f64]) -> f64 {
        assert_eq!(d.len(), self.num_inputs());
        self.success
            .iter()
            .map(|row| {
                row.iter()
                    .zip(d.iter())
                    .map(|(&ok, &p)| if ok { p } else { 0.0 })
                    .sum::<f64>()
            })
            .fold(0.0, f64::max)
    }

    /// Worst-case success of a mixed strategy `q` over algorithms:
    /// `min_x Σ_a q_a · success[a][x]` — the `S₁` of that strategy.
    pub fn worst_case_of_mix(&self, q: &[f64]) -> f64 {
        assert_eq!(q.len(), self.num_algs());
        (0..self.num_inputs())
            .map(|x| {
                self.success
                    .iter()
                    .zip(q.iter())
                    .map(|(row, &w)| if row[x] { w } else { 0.0 })
                    .sum::<f64>()
            })
            .fold(f64::INFINITY, f64::min)
    }

    /// Checks Yao's inequality for a specific `(mix, distribution)` pair:
    /// `worst_case(mix) ≤ best_det(distribution)`.
    pub fn yao_holds(&self, mix: &[f64], dist: &[f64]) -> bool {
        self.worst_case_of_mix(mix) <= self.best_det_against(dist) + 1e-12
    }
}

/// The "probe-T-then-answer parity" game on `r` bits: a deterministic
/// algorithm fixes a set of `t` positions to probe and an answer function
/// from the probed values; we enumerate all position sets and, for
/// tractability, the two natural answer families (parity-of-probes and its
/// complement).
pub fn parity_probe_game(r: usize, t: usize) -> Game {
    assert!(r <= 12 && t <= r);
    let positions: Vec<u32> = (0..1u32 << r)
        .filter(|m| m.count_ones() as usize == t)
        .collect();
    let mut success = Vec::new();
    for &s in &positions {
        for flip in [false, true] {
            let row: Vec<bool> = (0..1u32 << r)
                .map(|x| {
                    let guess = ((x & s).count_ones() % 2 == 1) ^ flip;
                    let truth = x.count_ones() % 2 == 1;
                    guess == truth
                })
                .collect();
            success.push(row);
        }
    }
    Game { success }
}

/// Verifies Yao's inequality on `game` for `samples` random mixed
/// strategies against the uniform input distribution. Returns the largest
/// observed `S₁` and the uniform-distribution `S₂`.
pub fn check_yao_sampled<R: Rng>(game: &Game, samples: usize, rng: &mut R) -> (f64, f64) {
    let uniform = vec![1.0 / game.num_inputs() as f64; game.num_inputs()];
    let s2 = game.best_det_against(&uniform);
    let mut best_s1: f64 = 0.0;
    for _ in 0..samples {
        let mut q: Vec<f64> = (0..game.num_algs()).map(|_| rng.gen::<f64>()).collect();
        let sum: f64 = q.iter().sum();
        for w in q.iter_mut() {
            *w /= sum;
        }
        let s1 = game.worst_case_of_mix(&q);
        assert!(s1 <= s2 + 1e-9, "Yao violated: S1={s1} > S2={s2}");
        best_s1 = best_s1.max(s1);
    }
    (best_s1, s2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn partial_probes_cannot_beat_half_on_parity() {
        // Probing t < r bits: any deterministic algorithm succeeds on
        // exactly half the inputs, so S2 = 1/2 — the distributional side of
        // the parity lower bounds.
        for r in [3usize, 5] {
            for t in 0..r {
                let game = parity_probe_game(r, t);
                let uniform = vec![1.0 / game.num_inputs() as f64; game.num_inputs()];
                let s2 = game.best_det_against(&uniform);
                assert!((s2 - 0.5).abs() < 1e-12, "r={r} t={t}: S2={s2}");
            }
        }
    }

    #[test]
    fn full_probe_solves_parity() {
        let game = parity_probe_game(4, 4);
        let uniform = vec![1.0 / 16.0; 16];
        assert_eq!(game.best_det_against(&uniform), 1.0);
    }

    #[test]
    fn yao_inequality_holds_over_sampled_mixtures() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        for (r, t) in [(4usize, 2usize), (4, 3), (5, 2)] {
            let game = parity_probe_game(r, t);
            let (s1, s2) = check_yao_sampled(&game, 200, &mut rng);
            assert!(s1 <= s2 + 1e-9, "r={r} t={t}");
        }
    }

    #[test]
    fn worst_case_of_pure_strategy_matches_matrix() {
        let game = Game {
            success: vec![vec![true, false], vec![false, true]],
        };
        assert_eq!(game.worst_case_of_mix(&[1.0, 0.0]), 0.0);
        assert_eq!(game.worst_case_of_mix(&[0.5, 0.5]), 0.5);
        assert_eq!(game.best_det_against(&[0.9, 0.1]), 0.9);
        assert!(game.yao_holds(&[0.5, 0.5], &[0.5, 0.5]));
    }

    #[test]
    fn point_mass_distribution_is_useless_for_lower_bounds() {
        // The Section 2.6 caveat: against a point mass, some deterministic
        // algorithm wins with probability 1, so S2 = 1 and the bound says
        // nothing.
        let game = parity_probe_game(4, 0);
        let mut point = vec![0.0; 16];
        point[11] = 1.0;
        assert_eq!(game.best_det_against(&point), 1.0);
    }
}
