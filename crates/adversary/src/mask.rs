//! Wide input masks and lazy refinement enumeration.
//!
//! The Random Adversary machinery quantifies over the complete inputs
//! refining a partial map `f`. The original implementation materialized
//! all `2^r` candidate masks into a `Vec<u32>` and filtered — an
//! exponential allocation — and silently assumed `r ≤ 32` (shifting out
//! of range beyond that). This module provides:
//!
//! * [`BitMask`] — a bitset-backed complete-input mask over arbitrarily
//!   many boolean inputs, for the large-`n` symbolic/Monte-Carlo paths
//!   where `u32` masks cannot represent an input at all;
//! * [`RefinementMasks`] — a lazy iterator over exactly the refinements
//!   of a partial map, produced by scattering a counter over the unset
//!   positions only (no allocation proportional to `2^r`, no filtering);
//! * [`TooManyInputs`] — the typed error returned instead of shifting
//!   out of range when a `u32`-mask operation is asked to handle more
//!   than 32 inputs.

use std::fmt;

/// A partial input map over `r` boolean inputs. `None` is the paper's `*`.
/// (Re-declared here to keep this module dependency-free; the canonical
/// alias lives in [`crate::random_adversary`].)
type Partial = [Option<bool>];

/// Typed error: an operation restricted to `u32` masks was asked to
/// handle more inputs than a `u32` can index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TooManyInputs {
    /// Number of inputs requested.
    pub len: usize,
    /// The operation's hard limit (32 for `u32`-mask enumeration).
    pub limit: usize,
}

impl fmt::Display for TooManyInputs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} inputs exceed the {}-input limit of u32 mask enumeration \
             (use BitMask for wide inputs)",
            self.len, self.limit
        )
    }
}

impl std::error::Error for TooManyInputs {}

/// A complete input assignment over arbitrarily many boolean inputs,
/// stored as a bitset (64 inputs per block). Bit `i` is the value of
/// input `x_i` — the same convention as the `u32` masks used on small
/// machines, without the 32-input cap.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BitMask {
    len: usize,
    blocks: Vec<u64>,
}

impl BitMask {
    /// The all-zeros assignment over `len` inputs.
    pub fn zeros(len: usize) -> Self {
        BitMask {
            len,
            blocks: vec![0; len.div_ceil(64)],
        }
    }

    /// Widens a `u32` mask over `len ≤ 32` inputs. Bits at positions
    /// `≥ 32` are zero by construction, so this is exact.
    pub fn from_u32(len: usize, mask: u32) -> Result<Self, TooManyInputs> {
        if len > 32 {
            return Err(TooManyInputs { len, limit: 32 });
        }
        let mut m = BitMask::zeros(len);
        if !m.blocks.is_empty() {
            m.blocks[0] = u64::from(mask);
        }
        Ok(m)
    }

    /// Number of inputs.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when there are no inputs at all.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Value of input `i`.
    pub fn get(&self, i: usize) -> bool {
        assert!(
            i < self.len,
            "input {i} out of range for {} inputs",
            self.len
        );
        self.blocks[i / 64] >> (i % 64) & 1 == 1
    }

    /// Sets input `i` to `v`.
    pub fn set(&mut self, i: usize, v: bool) {
        assert!(
            i < self.len,
            "input {i} out of range for {} inputs",
            self.len
        );
        let (b, o) = (i / 64, i % 64);
        if v {
            self.blocks[b] |= 1 << o;
        } else {
            self.blocks[b] &= !(1 << o);
        }
    }

    /// Number of inputs set to 1.
    pub fn count_ones(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Narrows to a `u32` mask; typed error if the mask has more than 32
    /// inputs (narrowing would silently drop assignments).
    pub fn to_u32(&self) -> Result<u32, TooManyInputs> {
        if self.len > 32 {
            return Err(TooManyInputs {
                len: self.len,
                limit: 32,
            });
        }
        Ok(self.blocks.first().copied().unwrap_or(0) as u32)
    }

    /// Does this complete input refine the partial map `f`? Wide
    /// counterpart of [`crate::random_adversary::mask_refines`], with no
    /// input-count cap. Panics if lengths differ.
    pub fn refines(&self, f: &Partial) -> bool {
        assert_eq!(self.len, f.len(), "mask/partial length mismatch");
        f.iter()
            .enumerate()
            .all(|(i, v)| v.is_none_or(|b| self.get(i) == b))
    }
}

/// Lazy iterator over exactly the complete `u32` inputs refining a
/// partial map: the fixed bits form a constant base and a counter is
/// scattered over the unset positions. Yields `2^unset` masks without
/// ever materializing them.
#[derive(Debug, Clone)]
pub struct RefinementMasks {
    base: u32,
    unset: Vec<u32>,
    next: u64,
    count: u64,
}

impl RefinementMasks {
    /// Builds the iterator for `f`; typed error beyond 32 inputs (the
    /// masks would not fit a `u32`).
    pub fn over(f: &Partial) -> Result<Self, TooManyInputs> {
        if f.len() > 32 {
            return Err(TooManyInputs {
                len: f.len(),
                limit: 32,
            });
        }
        let mut base = 0u32;
        let mut unset = Vec::new();
        for (i, v) in f.iter().enumerate() {
            match v {
                Some(true) => base |= 1 << i,
                Some(false) => {}
                None => unset.push(i as u32),
            }
        }
        let count = 1u64 << unset.len();
        Ok(RefinementMasks {
            base,
            unset,
            next: 0,
            count,
        })
    }

    /// Total number of refinements, `2^unset` (up to `2^32`, hence `u64`).
    pub fn num_masks(&self) -> u64 {
        self.count
    }
}

impl Iterator for RefinementMasks {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        if self.next == self.count {
            return None;
        }
        let mut m = self.base;
        for (idx, &pos) in self.unset.iter().enumerate() {
            if self.next >> idx & 1 == 1 {
                m |= 1 << pos;
            }
        }
        self.next += 1;
        Some(m)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = (self.count - self.next) as usize;
        (rem, Some(rem))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmask_roundtrips_u32() {
        let m = BitMask::from_u32(12, 0b1010_1100_0011).unwrap();
        assert_eq!(m.to_u32().unwrap(), 0b1010_1100_0011);
        assert_eq!(m.count_ones(), 6);
        assert!(m.get(0) && m.get(1) && !m.get(2));
    }

    #[test]
    fn bitmask_handles_wide_inputs() {
        let mut m = BitMask::zeros(4096);
        m.set(0, true);
        m.set(4095, true);
        m.set(100, true);
        m.set(100, false);
        assert_eq!(m.count_ones(), 2);
        assert!(m.get(4095) && !m.get(100));
        assert_eq!(
            m.to_u32(),
            Err(TooManyInputs {
                len: 4096,
                limit: 32
            })
        );
    }

    #[test]
    fn wide_refinement_check() {
        let mut f = vec![None; 100];
        f[7] = Some(true);
        f[63] = Some(false);
        let mut m = BitMask::zeros(100);
        m.set(7, true);
        assert!(m.refines(&f));
        m.set(63, true);
        assert!(!m.refines(&f));
    }

    #[test]
    fn refinement_masks_enumerate_the_subcube_without_filtering() {
        let f = vec![None, Some(true), None, Some(false)];
        let it = RefinementMasks::over(&f).unwrap();
        assert_eq!(it.num_masks(), 4);
        let got: Vec<u32> = it.collect();
        assert_eq!(got, vec![0b0010, 0b0011, 0b0110, 0b0111]);
    }

    #[test]
    fn refinement_masks_reject_wide_inputs() {
        let f = vec![None; 33];
        assert!(RefinementMasks::over(&f).is_err());
    }

    #[test]
    fn size_hint_is_exact() {
        let f = vec![None; 5];
        let mut it = RefinementMasks::over(&f).unwrap();
        assert_eq!(it.size_hint(), (32, Some(32)));
        it.next();
        assert_eq!(it.size_hint(), (31, Some(31)));
    }

    #[test]
    fn error_message_names_the_limit() {
        let e = TooManyInputs { len: 40, limit: 32 };
        let s = e.to_string();
        assert!(s.contains("40") && s.contains("32"));
    }
}
